"""Figure 12 — verification time per case and system (E4).

The paper's headline numbers: going from 10(2) to 300(6) rows, CLX's
verification time grows 1.3× while FlashFill's grows 11.4×.  The
reproduction checks the same *shape*: CLX stays nearly flat, FlashFill
grows by roughly an order of magnitude.
"""

from __future__ import annotations

from repro.util.text import format_table

SYSTEMS = ("RegexReplace", "FlashFill", "CLX")
CASES = ("10(2)", "100(4)", "300(6)")


def test_fig12_verification_time(scalability_traces, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    traces = scalability_traces

    rows = [
        [case] + [round(traces[case][system].verification_seconds, 1) for system in SYSTEMS]
        for case in CASES
    ]
    print("\nFigure 12 — verification time (s)")
    print(format_table(["case", *SYSTEMS], rows))

    clx_growth = (
        traces["300(6)"]["CLX"].verification_seconds
        / traces["10(2)"]["CLX"].verification_seconds
    )
    ff_growth = (
        traces["300(6)"]["FlashFill"].verification_seconds
        / traces["10(2)"]["FlashFill"].verification_seconds
    )
    print(f"verification growth 10(2)->300(6): CLX {clx_growth:.1f}x (paper 1.3x), "
          f"FlashFill {ff_growth:.1f}x (paper 11.4x)")

    assert clx_growth < 3.0, "CLX verification should stay nearly flat"
    assert ff_growth > 8.0, "FlashFill verification should grow by ~an order of magnitude"
    assert clx_growth < ff_growth
