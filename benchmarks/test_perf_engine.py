"""Performance A5 — compiled batch apply vs. per-value interpretation.

The engine split exists so that a program synthesized once (the Fig. 11
phone user study, case 300(6)) can be applied to production-sized data at
regex speed.  This benchmark synthesizes the 300(6) program once, scales
the same workload up to a large column, and compares:

* the seed path — per-value :func:`repro.dsl.interpreter.apply_program`
  plus a target pass-through check per value (what ``transform_column``
  did before the engine existed), and
* the engine path — :meth:`repro.engine.compiled.CompiledProgram.run`.

The acceptance bar for the engine PR: the compiled batch apply must be at
least 2x faster than per-value interpretation on this workload.
"""

from __future__ import annotations

import os
import time

from repro.bench.phone import phone_dataset
from repro.core.session import CLXSession
from repro.dsl.interpreter import apply_program
from repro.engine.compiled import CompiledProgram
from repro.patterns.matching import matches
from repro.util.text import format_table

#: Rows in the scaled apply workload (the 300(6) study column, repeated).
#: CLX_PERF_ROWS (capped at the default) scales it down for smoke runs,
#: where the wall-clock assertions are skipped — contended CI runners
#: only check semantics, not speed.
FULL_APPLY_ROWS = 30_000
APPLY_ROWS = min(int(os.environ.get("CLX_PERF_ROWS", str(FULL_APPLY_ROWS))), FULL_APPLY_ROWS)
SMOKE = APPLY_ROWS < FULL_APPLY_ROWS


def _interpret_column(program, values, target):
    """The pre-engine apply loop: cached-regex lookups per value."""
    outputs = []
    for value in values:
        if matches(value, target):
            outputs.append(value)
        else:
            outputs.append(apply_program(program, value).output)
    return outputs


def test_perf_engine_vs_interpreter(benchmark):
    # Synthesize once on the Fig. 11 300(6) study column.
    raw, _expected = phone_dataset(count=300, format_count=6, seed=331)
    session = CLXSession(raw)
    session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
    compiled = session.compile()
    program, target = session.program, session.target

    # Scale the same format mix up to the apply workload.
    values, _ = phone_dataset(count=APPLY_ROWS, format_count=6, seed=97)

    benchmark.pedantic(compiled.run, args=(values,), rounds=1, iterations=1)

    start = time.perf_counter()
    interpreted = _interpret_column(program, values, target)
    interpreter_seconds = time.perf_counter() - start

    start = time.perf_counter()
    report = compiled.run(values)
    engine_seconds = time.perf_counter() - start

    assert report.outputs == interpreted  # same semantics before comparing speed

    speedup = interpreter_seconds / engine_seconds
    rows = [
        ("per-value apply_program", f"{interpreter_seconds * 1000:.1f} ms", "1.0x"),
        ("CompiledProgram.run", f"{engine_seconds * 1000:.1f} ms", f"{speedup:.1f}x"),
    ]
    print(f"\nFig. 11 workload scaled to {APPLY_ROWS} rows, {len(program)} branches")
    print(format_table(["apply path", "latency", "speedup"], rows))

    if not SMOKE:
        assert speedup >= 2.0, (
            f"compiled apply only {speedup:.2f}x faster than interpretation "
            f"({engine_seconds * 1000:.1f} ms vs {interpreter_seconds * 1000:.1f} ms)"
        )


def test_perf_engine_streaming_overhead(benchmark):
    """run_iter's chunked streaming should stay close to batch run."""
    raw, _expected = phone_dataset(count=300, format_count=6, seed=331)
    session = CLXSession(raw)
    session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
    engine = session.engine()
    values, _ = phone_dataset(count=APPLY_ROWS, format_count=6, seed=53)

    benchmark.pedantic(lambda: sum(1 for _ in engine.run_iter(values)), rounds=1, iterations=1)

    start = time.perf_counter()
    batch = engine.run(values)
    batch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    streamed = [outcome.output for outcome in engine.run_iter(iter(values), chunk_size=4096)]
    stream_seconds = time.perf_counter() - start

    assert streamed == batch.outputs
    print(
        f"\nbatch {batch_seconds * 1000:.1f} ms vs streamed {stream_seconds * 1000:.1f} ms "
        f"({APPLY_ROWS} rows)"
    )
    # Streaming yields TransformOutcome objects per value, so allow slack,
    # but it must stay the same order of magnitude as batch apply.
    if not SMOKE:
        assert stream_seconds < batch_seconds * 6


def test_perf_memo_on_repeated_values(benchmark):
    """The value memo must make repeated values nearly free.

    The 300(6) program applied to a stream where every distinct value
    appears many times (the heavy-hitter shape of real columns): the
    default memoized hot loop has to beat the same program reloaded
    with the memo and merged regex disabled.
    """
    raw, _expected = phone_dataset(count=300, format_count=6, seed=331)
    session = CLXSession(raw)
    session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
    artifact = session.compile().dumps()

    fast = CompiledProgram.loads(artifact)
    naive = CompiledProgram.loads(artifact, memo_size=0, merged_dispatch=False)

    # 300 distinct values repeated to the apply size, deterministic order.
    distinct, _ = phone_dataset(count=300, format_count=6, seed=97)
    values = (distinct * (APPLY_ROWS // len(distinct) + 1))[:APPLY_ROWS]

    benchmark.pedantic(fast.run, args=(values,), rounds=1, iterations=1)

    start = time.perf_counter()
    naive_report = naive.run(values)
    naive_seconds = time.perf_counter() - start

    fast.clear_memo()
    start = time.perf_counter()
    fast_report = fast.run(values)
    fast_seconds = time.perf_counter() - start

    assert fast_report.outputs == naive_report.outputs
    stats = fast.memo_stats()
    hit_rate = stats["hits"] / (stats["hits"] + stats["misses"])
    speedup = naive_seconds / fast_seconds if fast_seconds else float("inf")
    print(
        f"\nmemoized {fast_seconds * 1000:.1f} ms vs naive {naive_seconds * 1000:.1f} ms "
        f"({APPLY_ROWS} rows, {len(distinct)} distinct, hit rate {hit_rate:.3f}, "
        f"{speedup:.1f}x)"
    )
    assert hit_rate > 0.9
    if not SMOKE:
        assert speedup >= 2.0, (
            f"memoized run only {speedup:.2f}x faster than the naive loop "
            f"({fast_seconds * 1000:.1f} ms vs {naive_seconds * 1000:.1f} ms)"
        )
