"""Table 7 and Figure 15 — user-effort simulation over the 47 tasks (E11).

For every benchmark task the three simulated lazy users are run and the
Step counts compared:

* Table 7 — how often CLX needs fewer / equal / more Steps than each
  baseline (paper: vs FlashFill 17/17/13, vs RegexReplace 33/12/2);
* Figure 15 — the per-task Step ratio (speedup) of CLX over each baseline.

The reproduction checks the paper's qualitative claims: CLX requires less
or equal effort than FlashFill for a clear majority of tasks, and almost
always no more effort than RegexReplace.
"""

from __future__ import annotations

from repro.util.text import format_table

SYSTEMS = ("CLX", "FlashFill", "RegexReplace")


def _compare(suite_runs, left, right):
    wins = ties = losses = 0
    for runs in suite_runs.values():
        a, b = runs[left].steps.total, runs[right].steps.total
        if a < b:
            wins += 1
        elif a == b:
            ties += 1
        else:
            losses += 1
    return wins, ties, losses


def test_table7_user_effort_comparison(suite_runs, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    vs_ff = _compare(suite_runs, "CLX", "FlashFill")
    vs_rr = _compare(suite_runs, "CLX", "RegexReplace")

    print("\nTable 7 — user effort simulation comparison")
    print(
        format_table(
            ["Baseline", "CLX Wins", "Tie", "CLX Loses"],
            [
                ("vs. FlashFill   (paper 17/17/13)", *vs_ff),
                ("vs. RegexReplace (paper 33/12/2)", *vs_rr),
            ],
        )
    )

    total = len(suite_runs)
    # CLX needs <= effort than FlashFill on a clear majority of tasks.
    assert (vs_ff[0] + vs_ff[1]) / total >= 0.6
    # CLX almost always needs <= effort than RegexReplace.
    assert (vs_rr[0] + vs_rr[1]) / total >= 0.85
    assert vs_rr[2] <= 6


def test_fig15_step_speedups(suite_runs, benchmark):
    """Figure 15: per-task Step ratio of the baselines over CLX."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    for task_id, runs in suite_runs.items():
        clx = max(1, runs["CLX"].steps.total)
        rows.append(
            (
                task_id,
                runs["CLX"].steps.total,
                runs["FlashFill"].steps.total,
                runs["RegexReplace"].steps.total,
                round(runs["FlashFill"].steps.total / clx, 2),
                round(runs["RegexReplace"].steps.total / clx, 2),
            )
        )
    print("\nFigure 15 — Steps per task and speedup of CLX over the baselines")
    print(
        format_table(
            ["task", "CLX", "FlashFill", "RegexReplace", "FF/CLX", "RR/CLX"], rows
        )
    )

    ff_speedups = [row[4] for row in rows]
    rr_speedups = [row[5] for row in rows]
    # Median speedups are >= 1 (CLX no worse than the baselines overall).
    assert sorted(ff_speedups)[len(ff_speedups) // 2] >= 1.0
    assert sorted(rr_speedups)[len(rr_speedups) // 2] >= 1.0
