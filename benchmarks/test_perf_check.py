"""Performance of the artifact linter's release gate.

``repro-clx check --fail-on error`` over every artifact the synthesizer
produces for the 47-task suite is the admission-control sweep CI runs
before artifacts ship; it has to stay interactive.  This benchmark
compiles the whole suite, runs one ``check`` invocation over all
artifacts (static passes + ReDoS probe), asserts the gate passes, and
records synthesis/check wall-time into ``benchmarks/BENCH_pipeline.json``
alongside the profile/apply trajectories.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.session import CLXSession
from repro.util.errors import SynthesisError
from repro.util.text import format_table

#: Where the check wall-time trajectory is recorded.
BENCH_PATH = Path(__file__).resolve().parent / "BENCH_pipeline.json"

#: Runs kept in the trajectory file.
TRAJECTORY_LIMIT = 20

#: The full sweep (47 artifacts, exact NFA passes + probes) must stay
#: well inside interactive latency even on contended CI runners.
CHECK_BUDGET_SECONDS = 30.0


@pytest.fixture(scope="module")
def recorder():
    """Collects the sweep's timings and appends to the trajectory file."""
    record = {
        "cpu_count": os.cpu_count(),
        "timestamp": time.time(),
    }
    yield record
    try:
        history = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
        runs = history.get("runs", [])
    except (OSError, ValueError):
        runs = []
    runs.append(record)
    BENCH_PATH.write_text(
        json.dumps({"runs": runs[-TRAJECTORY_LIMIT:]}, indent=2) + "\n",
        encoding="utf-8",
    )


def test_perf_check_suite_sweep(suite_tasks, tmp_path, recorder, capsys):
    start = time.perf_counter()
    paths = []
    for task in suite_tasks:
        session = CLXSession(task.inputs)
        session.label_target(task.target_pattern())
        try:
            compiled = session.compile(metadata={"task": task.task_id})
        except SynthesisError:
            continue
        path = tmp_path / f"{task.task_id}.clx.json"
        path.write_text(compiled.dumps(), encoding="utf-8")
        paths.append(str(path))
    synth_seconds = time.perf_counter() - start
    assert paths, "no suite task compiled an artifact"

    start = time.perf_counter()
    exit_code = main(["check", *paths, "--fail-on", "error"])
    check_seconds = time.perf_counter() - start
    captured = capsys.readouterr()
    assert exit_code == 0, captured.out

    recorder["check"] = {
        "artifacts": len(paths),
        "synth_seconds": synth_seconds,
        "check_seconds": check_seconds,
        "artifacts_per_sec": len(paths) / check_seconds if check_seconds else float("inf"),
    }
    print(f"\nartifact lint sweep over {len(paths)} artifacts")
    rows_table = [
        ("compile suite", f"{synth_seconds:.2f} s", f"{len(paths) / synth_seconds:,.1f} artifacts/s"),
        ("check --fail-on error", f"{check_seconds:.2f} s", f"{len(paths) / check_seconds:,.1f} artifacts/s"),
    ]
    print(format_table(["stage", "latency", "throughput"], rows_table))

    assert check_seconds < CHECK_BUDGET_SECONDS, (
        f"lint sweep took {check_seconds:.1f} s over {len(paths)} artifacts "
        f"(budget {CHECK_BUDGET_SECONDS:.0f} s)"
    )
