"""Performance A4 — end-to-end synthesis latency per benchmark task.

Measures how long the full CLX pipeline (profile, synthesize, transform)
takes per task of the 47-task suite.  The paper positions CLX as an
interactive tool, so the latency per task should stay well under a second
on laptop-class hardware for the benchmark-sized inputs.
"""

from __future__ import annotations

import time

from repro.clustering.profiler import PatternProfiler
from repro.core.transformer import transform_column
from repro.synthesis.synthesizer import Synthesizer
from repro.util.text import format_table


def _run_task(task):
    hierarchy = PatternProfiler().profile(task.inputs)
    result = Synthesizer().synthesize(hierarchy, task.target_pattern())
    transform_column(result.program, task.inputs, result.target)


def test_perf_synthesis_latency(suite_tasks, benchmark):
    # Official timing sample: one representative mid-sized task.
    representative = next(t for t in suite_tasks if t.task_id == "sygus-phone-2")
    benchmark.pedantic(_run_task, args=(representative,), rounds=1, iterations=1)

    timings = []
    for task in suite_tasks:
        start = time.perf_counter()
        _run_task(task)
        timings.append((task.task_id, time.perf_counter() - start))

    slowest = sorted(timings, key=lambda item: -item[1])[:5]
    rows = [(task_id, f"{seconds * 1000:.1f} ms") for task_id, seconds in slowest]
    print("\nSlowest five tasks (profile + synthesize + transform)")
    print(format_table(["task", "latency"], rows))
    total = sum(seconds for _tid, seconds in timings)
    print(f"total for 47 tasks: {total:.2f}s, mean {total / len(timings) * 1000:.1f} ms")

    assert max(seconds for _tid, seconds in timings) < 5.0
    assert total / len(timings) < 1.0
