"""Performance A7 — parallel profiling and pipelined table apply.

PR 2 gave both halves of the loop their constant-memory/sharded shapes;
this benchmark guards the all-cores layer on top of them:

* **Parallel profile** — :class:`repro.clustering.parallel.ParallelProfiler`
  must produce the exact leaf patterns and counts of the serial
  streaming pass while splitting the CSV into byte-range shards that
  workers parse and profile themselves;
* **Pipelined table apply** — :class:`repro.engine.parallel.ShardedTableExecutor`
  must emit byte-identical sink chunks with and without a worker pool,
  with all CSV codec work off the parent's hot path.

Serial-vs-parallel rows/sec for both paths are recorded into
``benchmarks/BENCH_pipeline.json`` (a bounded trajectory of recent
runs).  ``CLX_PERF_ROWS`` scales the workload down for smoke runs;
speedup assertions only apply at full size on hosts with ≥4 cores
(CI matrix runners are contended and run the smoke size), correctness
assertions always apply.
"""

from __future__ import annotations

import csv
import io
import json
import os
import time
from pathlib import Path

import pytest

from repro.bench.generators import phone_number_stream
from repro.bench.phone import phone_dataset
from repro.clustering.parallel import ParallelProfiler
from repro.core.session import CLXSession
from repro.util.text import format_table

#: Rows in the scale workloads; override with CLX_PERF_ROWS for smoke runs.
FULL_ROWS = 200_000
ROWS = int(os.environ.get("CLX_PERF_ROWS", str(FULL_ROWS)))
SMOKE = ROWS < FULL_ROWS

#: Worker count used by the parallel runs (the speedup target is 2x at 4).
WORKERS = min(4, os.cpu_count() or 1)

#: Where the serial/parallel rows-per-second trajectory is recorded.
BENCH_PATH = Path(__file__).resolve().parent / "BENCH_pipeline.json"

#: Runs kept in the trajectory file.
TRAJECTORY_LIMIT = 20


def _speedup_assertable() -> bool:
    return not SMOKE and (os.cpu_count() or 1) >= 4


@pytest.fixture(scope="module")
def recorder():
    """Collects each test's timings and writes the trajectory file."""
    record = {
        "rows": ROWS,
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "smoke": SMOKE,
        "timestamp": time.time(),
    }
    yield record
    try:
        history = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
        runs = history.get("runs", [])
    except (OSError, ValueError):
        runs = []
    runs.append(record)
    BENCH_PATH.write_text(
        json.dumps({"runs": runs[-TRAJECTORY_LIMIT:]}, indent=2) + "\n",
        encoding="utf-8",
    )


@pytest.fixture(scope="module")
def phone_csv(tmp_path_factory):
    """A ROWS-row (id, phone) CSV on disk, written once per module."""
    path = tmp_path_factory.mktemp("perf_table") / "phones.csv"
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "phone"])
        for index, value in enumerate(phone_number_stream(ROWS, seed=77)):
            writer.writerow([index, value])
    return path


def test_perf_parallel_profile_speedup(phone_csv, recorder):
    # Same workload both sides: byte parse + profile of the file, with
    # one worker (in-process, no pool) vs the full fan-out.
    start = time.perf_counter()
    serial = ParallelProfiler(workers=1).profile_file(phone_csv, "phone")
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = ParallelProfiler(workers=WORKERS).profile_file(phone_csv, "phone")
    parallel_seconds = time.perf_counter() - start

    # Sharding must never change semantics: identical patterns + counts,
    # hence an identical lowered hierarchy.
    assert parallel.row_count == serial.row_count == ROWS
    serial_leaves = [
        (node.pattern.notation(), node.size) for node in serial.to_hierarchy().leaf_nodes
    ]
    parallel_leaves = [
        (node.pattern.notation(), node.size) for node in parallel.to_hierarchy().leaf_nodes
    ]
    assert parallel_leaves == serial_leaves

    speedup = serial_seconds / parallel_seconds if parallel_seconds else float("inf")
    recorder["profile"] = {
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "serial_rows_per_sec": ROWS / serial_seconds,
        "parallel_rows_per_sec": ROWS / parallel_seconds,
        "speedup": speedup,
    }
    print(f"\nparallel profile over {ROWS} rows on {os.cpu_count()} CPU(s)")
    rows_table = [
        ("profile_file(workers=1)", f"{serial_seconds:.2f} s", f"{ROWS / serial_seconds:,.0f} rows/s", "1.0x"),
        (
            f"profile_file(workers={WORKERS})",
            f"{parallel_seconds:.2f} s",
            f"{ROWS / parallel_seconds:,.0f} rows/s",
            f"{speedup:.2f}x",
        ),
    ]
    print(format_table(["profile path", "latency", "throughput", "speedup"], rows_table))

    if _speedup_assertable():
        assert speedup >= 2.0, (
            f"parallel profile ({parallel_seconds:.2f} s) not >=2x faster than "
            f"serial ({serial_seconds:.2f} s) with {WORKERS} workers on "
            f"{os.cpu_count()} CPUs"
        )


@pytest.fixture(scope="module")
def phone_parts(tmp_path_factory):
    """The same ROWS-row column partitioned into 8 part files."""
    directory = tmp_path_factory.mktemp("perf_dataset")
    part_rows = max(1, ROWS // 8)
    writer = None
    handle = None
    part_index = -1
    for index, value in enumerate(phone_number_stream(ROWS, seed=77)):
        if index % part_rows == 0 and index // part_rows > part_index:
            if handle is not None:
                handle.close()
            part_index = index // part_rows
            handle = (directory / f"part-{part_index:03d}.csv").open(
                "w", newline="", encoding="utf-8"
            )
            writer = csv.writer(handle)
            writer.writerow(["id", "phone"])
        writer.writerow([index, value])
    if handle is not None:
        handle.close()
    return directory


def test_perf_partitioned_dataset_profile(phone_csv, phone_parts, recorder):
    # Dataset mode: the same column split across part files must profile
    # to the identical hierarchy, and fan out across workers by part.
    from repro.dataset import Dataset

    dataset = Dataset.resolve(str(phone_parts / "part-*.csv"))

    start = time.perf_counter()
    serial = ParallelProfiler(workers=1).profile_dataset(dataset, "phone")
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = ParallelProfiler(workers=WORKERS).profile_dataset(dataset, "phone")
    parallel_seconds = time.perf_counter() - start

    whole_file = ParallelProfiler(workers=1).profile_file(phone_csv, "phone")
    assert parallel.row_count == serial.row_count == ROWS
    whole_leaves = [
        (node.pattern.notation(), node.size)
        for node in whole_file.to_hierarchy().leaf_nodes
    ]
    for profile in (serial, parallel):
        leaves = [
            (node.pattern.notation(), node.size)
            for node in profile.to_hierarchy().leaf_nodes
        ]
        assert leaves == whole_leaves

    speedup = serial_seconds / parallel_seconds if parallel_seconds else float("inf")
    recorder["dataset_profile"] = {
        "parts": len(dataset),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "serial_rows_per_sec": ROWS / serial_seconds,
        "parallel_rows_per_sec": ROWS / parallel_seconds,
        "speedup": speedup,
    }
    print(
        f"\npartitioned dataset profile over {ROWS} rows in {len(dataset)} parts "
        f"on {os.cpu_count()} CPU(s)"
    )
    rows_table = [
        (
            "profile_dataset(workers=1)",
            f"{serial_seconds:.2f} s",
            f"{ROWS / serial_seconds:,.0f} rows/s",
            "1.0x",
        ),
        (
            f"profile_dataset(workers={WORKERS})",
            f"{parallel_seconds:.2f} s",
            f"{ROWS / parallel_seconds:,.0f} rows/s",
            f"{speedup:.2f}x",
        ),
    ]
    print(format_table(["profile path", "latency", "throughput", "speedup"], rows_table))

    if _speedup_assertable():
        assert speedup >= 1.5, (
            f"partitioned dataset profile ({parallel_seconds:.2f} s) not >=1.5x "
            f"faster than serial ({serial_seconds:.2f} s) with {WORKERS} workers "
            f"on {os.cpu_count()} CPUs"
        )


@pytest.fixture(scope="module")
def mixed_apply_parts(tmp_path_factory):
    """The ROWS-row column as 32 small partitions, CSV and JSONL mixed.

    Many small parts is the cross-partition dispatcher's home turf:
    streaming them one executor-drain at a time barriers the pool at
    every boundary, while ``run_dataset`` keeps shards of different
    parts in flight together.
    """
    import json as jsonlib

    directory = tmp_path_factory.mktemp("perf_apply_parts")
    part_count = 32
    part_rows = max(1, ROWS // part_count)
    handle = None
    writer = None
    part_index = -1
    for index, value in enumerate(phone_number_stream(ROWS, seed=97)):
        if index // part_rows > part_index:
            if handle is not None:
                handle.close()
            part_index = index // part_rows
            if part_index % 2:
                handle = (directory / f"part-{part_index:03d}.jsonl").open(
                    "w", encoding="utf-8"
                )
                writer = None
            else:
                handle = (directory / f"part-{part_index:03d}.csv").open(
                    "w", newline="", encoding="utf-8"
                )
                writer = csv.writer(handle)
                writer.writerow(["id", "phone"])
        if writer is None:
            handle.write(jsonlib.dumps({"id": str(index), "phone": value}) + "\n")
        else:
            writer.writerow([index, value])
    if handle is not None:
        handle.close()
    return directory


def test_perf_cross_partition_apply_speedup(mixed_apply_parts, recorder):
    from repro.dataset import Dataset
    from repro.engine.parallel import ShardedTableExecutor

    raw, _expected = phone_dataset(count=300, format_count=6, seed=331)
    session = CLXSession(raw)
    session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
    engine = session.engine()
    dataset = Dataset.resolve(str(mixed_apply_parts / "part-*"))

    def build(workers):
        return ShardedTableExecutor(
            {"phone": engine}, ["id", "phone"], workers=workers
        )

    def run_sequential(workers):
        # The pre-dispatch shape: drain one partition at a time through
        # the shared pool — a barrier at every part boundary.
        with build(workers) as executor:
            start = time.perf_counter()
            encoded = "".join(
                chunk
                for part in dataset
                for chunk, _, _, _ in executor.run_part(part)
            )
            return encoded, time.perf_counter() - start

    def run_cross(workers):
        with build(workers) as executor:
            start = time.perf_counter()
            encoded = "".join(
                chunk for _, (chunk, _, _, _) in executor.run_dataset(dataset)
            )
            return encoded, time.perf_counter() - start

    serial_output, serial_seconds = run_cross(1)
    sequential_output, sequential_seconds = run_sequential(WORKERS)
    cross_output, cross_seconds = run_cross(WORKERS)

    # Dispatch shape must never change the sink bytes.
    assert sequential_output == serial_output
    assert cross_output == serial_output

    speedup_serial = serial_seconds / cross_seconds if cross_seconds else float("inf")
    speedup_sequential = (
        sequential_seconds / cross_seconds if cross_seconds else float("inf")
    )
    recorder["dataset_apply"] = {
        "parts": len(dataset),
        "serial_seconds": serial_seconds,
        "sequential_seconds": sequential_seconds,
        "cross_seconds": cross_seconds,
        "serial_rows_per_sec": ROWS / serial_seconds,
        "sequential_rows_per_sec": ROWS / sequential_seconds,
        "cross_rows_per_sec": ROWS / cross_seconds,
        "speedup_vs_serial": speedup_serial,
        "speedup_vs_sequential": speedup_sequential,
    }
    print(
        f"\ncross-partition apply over {ROWS} rows in {len(dataset)} mixed parts "
        f"on {os.cpu_count()} CPU(s)"
    )
    rows_table = [
        ("run_dataset(workers=1)", f"{serial_seconds:.2f} s", f"{ROWS / serial_seconds:,.0f} rows/s", "1.0x"),
        (
            f"sequential parts (workers={WORKERS})",
            f"{sequential_seconds:.2f} s",
            f"{ROWS / sequential_seconds:,.0f} rows/s",
            f"{serial_seconds / sequential_seconds:.2f}x",
        ),
        (
            f"run_dataset(workers={WORKERS})",
            f"{cross_seconds:.2f} s",
            f"{ROWS / cross_seconds:,.0f} rows/s",
            f"{speedup_serial:.2f}x",
        ),
    ]
    print(format_table(["apply path", "latency", "throughput", "speedup"], rows_table))

    if _speedup_assertable():
        assert speedup_serial >= 2.0, (
            f"cross-partition apply ({cross_seconds:.2f} s) not >=2x faster than "
            f"serial ({serial_seconds:.2f} s) with {WORKERS} workers on "
            f"{os.cpu_count()} CPUs"
        )
        assert speedup_sequential >= 1.0, (
            f"cross-partition apply ({cross_seconds:.2f} s) slower than "
            f"sequential partition streaming ({sequential_seconds:.2f} s) with "
            f"{WORKERS} workers on {os.cpu_count()} CPUs"
        )


def test_perf_pipelined_table_apply_speedup(recorder):
    from repro.engine.parallel import ShardedTableExecutor

    # Synthesize once on the study column, then scale the apply workload.
    raw, _expected = phone_dataset(count=300, format_count=6, seed=331)
    session = CLXSession(raw)
    session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
    engine = session.engine()

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    for index, value in enumerate(phone_number_stream(ROWS, seed=97)):
        writer.writerow([index, value])
    lines = buffer.getvalue().splitlines(keepends=True)

    def run(workers):
        with ShardedTableExecutor(
            {"phone": engine}, ["id", "phone"], workers=workers
        ) as executor:
            start = time.perf_counter()
            encoded = "".join(chunk for chunk, _, _, _ in executor.run_chunks(iter(lines)))
            return encoded, time.perf_counter() - start

    serial_output, serial_seconds = run(1)
    parallel_output, parallel_seconds = run(WORKERS)

    # Pipelining must never change the sink bytes.
    assert parallel_output == serial_output

    speedup = serial_seconds / parallel_seconds if parallel_seconds else float("inf")
    recorder["table_apply"] = {
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "serial_rows_per_sec": ROWS / serial_seconds,
        "parallel_rows_per_sec": ROWS / parallel_seconds,
        "speedup": speedup,
    }
    print(f"\npipelined table apply over {ROWS} rows on {os.cpu_count()} CPU(s)")
    rows_table = [
        ("table apply (workers=1)", f"{serial_seconds:.2f} s", f"{ROWS / serial_seconds:,.0f} rows/s", "1.0x"),
        (
            f"table apply (workers={WORKERS})",
            f"{parallel_seconds:.2f} s",
            f"{ROWS / parallel_seconds:,.0f} rows/s",
            f"{speedup:.2f}x",
        ),
    ]
    print(format_table(["apply path", "latency", "throughput", "speedup"], rows_table))

    if _speedup_assertable():
        assert speedup >= 2.0, (
            f"pipelined table apply ({parallel_seconds:.2f} s) not >=2x faster "
            f"than serial ({serial_seconds:.2f} s) with {WORKERS} workers on "
            f"{os.cpu_count()} CPUs"
        )


def test_perf_quarantine_mode_overhead(phone_csv, recorder):
    # Robustness must be close to free on clean data: quarantine mode's
    # only happy-path cost is the strict-first try/except around each
    # chunk (salvage replays run only after a failure), so its
    # throughput has to stay within 10% of abort mode's.
    from repro.dataset import Dataset
    from repro.engine.parallel import ShardedTableExecutor

    raw, _expected = phone_dataset(count=300, format_count=6, seed=331)
    session = CLXSession(raw)
    session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
    engine = session.engine()
    dataset = Dataset.resolve(str(phone_csv))

    def run(on_error):
        with ShardedTableExecutor(
            {"phone": engine}, ["id", "phone"], workers=WORKERS, on_error=on_error
        ) as executor:
            start = time.perf_counter()
            encoded = "".join(
                chunk for _, (chunk, _, _, _) in executor.run_dataset(dataset)
            )
            return encoded, time.perf_counter() - start

    abort_output, abort_seconds = run("abort")
    quarantine_output, quarantine_seconds = run("quarantine")

    # On clean data the error mode must never change the sink bytes.
    assert quarantine_output == abort_output

    abort_rate = ROWS / abort_seconds
    quarantine_rate = ROWS / quarantine_seconds
    ratio = quarantine_rate / abort_rate if abort_rate else float("inf")
    recorder["quarantine_overhead"] = {
        "abort_seconds": abort_seconds,
        "quarantine_seconds": quarantine_seconds,
        "abort_rows_per_sec": abort_rate,
        "quarantine_rows_per_sec": quarantine_rate,
        "quarantine_vs_abort": ratio,
    }
    print(f"\nquarantine-mode overhead over {ROWS} rows on {os.cpu_count()} CPU(s)")
    rows_table = [
        ("apply --on-error abort", f"{abort_seconds:.2f} s", f"{abort_rate:,.0f} rows/s", "1.00x"),
        (
            "apply --on-error quarantine",
            f"{quarantine_seconds:.2f} s",
            f"{quarantine_rate:,.0f} rows/s",
            f"{ratio:.2f}x",
        ),
    ]
    print(format_table(["error mode", "latency", "throughput", "relative"], rows_table))

    if _speedup_assertable():
        assert ratio >= 0.9, (
            f"quarantine mode ({quarantine_rate:,.0f} rows/s) more than 10% "
            f"slower than abort mode ({abort_rate:,.0f} rows/s) on clean data"
        )


def test_perf_hot_loop_dispatch_speedup(recorder):
    # The memoized, merged-regex hot loop vs the naive sequential branch
    # loop, single core, on a heavy-hitter workload: production columns
    # repeat a small set of distinct values (area codes, vendor phone
    # strings), which is exactly what the value memo exists for.  The
    # merged-dispatch row isolates the one-scan alternation win with the
    # memo off; the dispatch-memo row is the full default path.
    from repro.engine.compiled import CompiledProgram
    from repro.util.rand import make_rng

    raw, _expected = phone_dataset(count=300, format_count=6, seed=331)
    session = CLXSession(raw)
    session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
    artifact = session.compile().dumps()

    naive = CompiledProgram.loads(artifact, memo_size=0, merged_dispatch=False)
    merged = CompiledProgram.loads(artifact, memo_size=0, merged_dispatch=True)
    fast = CompiledProgram.loads(artifact)  # memo + merged, the default
    assert fast.merged_dispatch  # the bench must exercise the merged regex

    # Zipf-ish heavy hitters: ROWS draws from a 512-value pool, rank-
    # weighted so a handful of values dominate the stream.
    pool = list(phone_number_stream(512, seed=41))
    weights = [1.0 / (rank + 1) for rank in range(len(pool))]
    stream = make_rng(53).choices(pool, weights=weights, k=ROWS)

    def run(program):
        start = time.perf_counter()
        report = program.run(stream)
        return report, time.perf_counter() - start

    naive_report, naive_seconds = run(naive)
    merged_report, merged_seconds = run(merged)
    fast_report, fast_seconds = run(fast)

    # Dispatch strategy must never change semantics.
    assert merged_report.outputs == naive_report.outputs
    assert fast_report.outputs == naive_report.outputs
    assert fast_report.matched_pattern == naive_report.matched_pattern

    stats = fast.memo_stats()
    hit_rate = stats["hits"] / (stats["hits"] + stats["misses"])
    merged_speedup = naive_seconds / merged_seconds if merged_seconds else float("inf")
    memo_speedup = naive_seconds / fast_seconds if fast_seconds else float("inf")
    recorder["hot_loop_dispatch"] = {
        "distinct_values": len(set(stream)),
        "naive_rows_per_sec": ROWS / naive_seconds,
        "merged_dispatch": {
            "rows_per_sec": ROWS / merged_seconds,
            "speedup": merged_speedup,
        },
        "dispatch_memo": {
            "rows_per_sec": ROWS / fast_seconds,
            "speedup": memo_speedup,
            "memo_hit_rate": hit_rate,
        },
    }
    print(
        f"\nhot-loop dispatch over {ROWS} rows "
        f"({len(set(stream))} distinct values, memo hit rate {hit_rate:.3f})"
    )
    rows_table = [
        ("naive branch loop", f"{naive_seconds:.2f} s", f"{ROWS / naive_seconds:,.0f} rows/s", "1.0x"),
        (
            "merged dispatch (memo off)",
            f"{merged_seconds:.2f} s",
            f"{ROWS / merged_seconds:,.0f} rows/s",
            f"{merged_speedup:.2f}x",
        ),
        (
            "memo + merged (default)",
            f"{fast_seconds:.2f} s",
            f"{ROWS / fast_seconds:,.0f} rows/s",
            f"{memo_speedup:.2f}x",
        ),
    ]
    print(format_table(["dispatch path", "latency", "throughput", "speedup"], rows_table))

    assert hit_rate > 0.9  # heavy hitters must actually hit the memo
    if not SMOKE:
        # Single-core bar from the issue: the default hot loop must be at
        # least 2x the naive sequential loop on the heavy-hitter bench.
        assert memo_speedup >= 2.0, (
            f"memoized dispatch ({fast_seconds:.2f} s) not >=2x faster than the "
            f"naive branch loop ({naive_seconds:.2f} s) over {ROWS} rows"
        )


@pytest.fixture(scope="module")
def phone_parquet(tmp_path_factory):
    """The ROWS-row (id, phone) column as one multi-row-group parquet part."""
    from repro.dataset.backends import pyarrow_available

    if not pyarrow_available():
        pytest.skip("pyarrow not installed (arrow extra)")
    import pyarrow as pa
    import pyarrow.parquet as pq

    path = tmp_path_factory.mktemp("perf_parquet") / "phones.parquet"
    ids, phones = [], []
    for index, value in enumerate(phone_number_stream(ROWS, seed=77)):
        ids.append(str(index))
        phones.append(value)
    pq.write_table(
        pa.table({"id": ids, "phone": phones}), path, row_group_size=8192
    )
    return path


def test_perf_parquet_apply(phone_parquet, recorder):
    # Columnar in/out through the backend registry: row-group shards fan
    # out like byte ranges and the parent re-encodes the wire into one
    # parquet sink.  Records the parquet_apply rows/sec trajectory row.
    from repro.dataset import Dataset
    from repro.engine.parallel import ShardedTableExecutor, apply_dataset

    raw, _expected = phone_dataset(count=300, format_count=6, seed=331)
    session = CLXSession(raw)
    session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
    engine = session.engine()
    dataset = Dataset.resolve(str(phone_parquet))
    target = phone_parquet.parent / "out.parquet"

    start = time.perf_counter()
    with ShardedTableExecutor(
        {"phone": engine}, ["id", "phone"], workers=WORKERS, out_format="parquet"
    ) as executor:
        result = apply_dataset(executor, dataset, output=target)
    seconds = time.perf_counter() - start

    assert result.rows == ROWS
    rate = ROWS / seconds if seconds else float("inf")
    recorder["parquet_apply"] = {
        "seconds": seconds,
        "rows_per_sec": rate,
        "workers": WORKERS,
    }
    print(f"\nparquet apply over {ROWS} rows on {os.cpu_count()} CPU(s)")
    print(
        format_table(
            ["apply path", "latency", "throughput"],
            [(f"parquet apply (workers={WORKERS})", f"{seconds:.2f} s", f"{rate:,.0f} rows/s")],
        )
    )
