"""Ablation A1 — does MDL ranking actually pick better default plans?

DESIGN.md calls out the MDL ranking (plus the order-preserving tiebreak)
as the design choice that makes the *default* plan usually correct, which
in turn is what keeps the repair count low.  This ablation compares three
plan-selection policies over every (source pattern, task) pair of the
47-task suite:

* ``mdl``    — the ranked default (what CLX ships);
* ``first``  — an arbitrary enumerated plan (no ranking at all);
* ``longest``— the plan with the *most* expressions (anti-MDL).

and reports how many source patterns each policy gets right without any
repair.
"""

from __future__ import annotations

from repro.clustering.profiler import PatternProfiler
from repro.dsl.interpreter import apply_plan
from repro.patterns.matching import match_pattern
from repro.synthesis.alignment import align_tokens
from repro.synthesis.plans import enumerate_plans, rank_plans
from repro.synthesis.synthesizer import Synthesizer
from repro.util.text import format_table


def _policy_correctness(tasks):
    counts = {"mdl": 0, "first": 0, "longest": 0}
    total = 0
    for task in tasks:
        hierarchy = PatternProfiler().profile(task.inputs)
        target = task.target_pattern()
        result = Synthesizer().synthesize(hierarchy, target)
        for source in result.source_patterns:
            examples = [
                (match_pattern(raw, source), task.desired_output(raw))
                for raw in task.inputs
                if match_pattern(raw, source) is not None
            ]
            if not examples:
                continue
            dag = align_tokens(source, target)
            plans = enumerate_plans(dag, max_plans=2000)
            if not plans:
                continue
            total += 1
            choices = {
                "mdl": rank_plans(plans, source)[0],
                "first": plans[0],
                "longest": max(plans, key=len),
            }
            for name, plan in choices.items():
                try:
                    if all(apply_plan(plan, tokens) == desired for tokens, desired in examples):
                        counts[name] += 1
                except Exception:
                    continue
    return counts, total


def test_ablation_mdl_ranking(suite_tasks, benchmark):
    # A third of the suite keeps the ablation fast while still covering
    # every scenario family (the suite interleaves them).
    sample = suite_tasks[::3]
    counts, total = benchmark.pedantic(
        _policy_correctness, args=(sample,), rounds=1, iterations=1
    )

    rows = [
        (name, f"{count}/{total}", f"{count / total:.0%}")
        for name, count in counts.items()
    ]
    print("\nAblation — default-plan correctness per selection policy")
    print(format_table(["policy", "correct sources", "rate"], rows))

    assert total > 0
    # The ranked default should beat both the unranked and the anti-MDL
    # picks; the paper itself reports the default is right only about half
    # the time (Section 6.4), so the bar here is relative, not absolute.
    assert counts["mdl"] >= counts["first"]
    assert counts["mdl"] > counts["longest"]
    assert counts["mdl"] / total >= 0.4
