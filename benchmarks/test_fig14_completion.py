"""Figure 14 — completion time for the three explainability tasks (E6).

Paper observations reproduced as shape checks:

* CLX is much faster than FlashFill on task 3 (100 phone rows) because
  verification dominates there;
* task 2 (small, heterogeneous addresses) is the one place CLX can lose;
* RegexReplace costs the most overall because regexes are slow to write.
"""

from __future__ import annotations

from repro.util.text import format_table

SYSTEMS = ("RegexReplace", "FlashFill", "CLX")


def test_fig14_completion_time(explainability_traces, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    traces = explainability_traces

    rows = [
        [task_id] + [round(per_system[system].total_seconds, 1) for system in SYSTEMS]
        for task_id, per_system in traces.items()
    ]
    print("\nFigure 14 — completion time (s) per explainability task")
    print(format_table(["task", *SYSTEMS], rows))

    task_ids = list(traces)
    task1, task2, task3 = task_ids

    # Task 3 (100 phone rows): CLX beats FlashFill clearly.
    assert traces[task3]["CLX"].total_seconds < traces[task3]["FlashFill"].total_seconds

    # RegexReplace is the most expensive system on every task.
    for task_id in task_ids:
        assert traces[task_id]["RegexReplace"].total_seconds >= max(
            traces[task_id]["CLX"].total_seconds,
            traces[task_id]["FlashFill"].total_seconds,
        )

    # Averaged over the three tasks CLX does not cost more than FlashFill.
    clx_avg = sum(traces[t]["CLX"].total_seconds for t in task_ids) / 3
    ff_avg = sum(traces[t]["FlashFill"].total_seconds for t in task_ids) / 3
    print(f"average completion: CLX {clx_avg:.1f}s, FlashFill {ff_avg:.1f}s "
          "(paper: CLX ~30% lower)")
    assert clx_avg <= ff_avg * 1.1
