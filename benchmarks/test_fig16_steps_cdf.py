"""Figure 16 and Appendix E — breakdown of CLX user effort (E12, E14).

Figure 16 plots, for the 47 tasks, the fraction of test cases whose CLX
Step count (split into Selection and Adjust/Repair) stays below a given
budget.  The paper's observations:

* ~79% of tasks need at most two Steps in total,
* ~79% of tasks need exactly one target-pattern selection,
* ~50% of tasks need no repair at all and ~85% need at most one,
* when the initial program is imperfect, 75% of the time a single repair
  fixes it (Section 6.4).
"""

from __future__ import annotations

from repro.util.text import format_table


def test_fig16_clx_step_breakdown(suite_runs, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    clx_runs = [runs["CLX"] for runs in suite_runs.values()]
    total = len(clx_runs)

    def fraction(predicate):
        return sum(1 for run in clx_runs if predicate(run)) / total

    budgets = list(range(0, 6))
    rows = []
    for budget in budgets:
        rows.append(
            (
                budget,
                round(fraction(lambda r: r.steps.selections <= budget), 2),
                round(fraction(lambda r: r.steps.repairs <= budget), 2),
                round(fraction(lambda r: r.steps.total <= budget), 2),
            )
        )
    print("\nFigure 16 — fraction of tasks needing <= Y Steps")
    print(format_table(["steps", "Selection", "Adjust", "Total"], rows))

    one_selection = fraction(lambda r: r.steps.selections == 1)
    no_repair = fraction(lambda r: r.steps.repairs == 0)
    at_most_one_repair = fraction(lambda r: r.steps.repairs <= 1)
    within_two_steps = fraction(lambda r: r.steps.total <= 2)
    print(
        f"one selection: {one_selection:.2f} (paper ~0.79)   "
        f"no repair: {no_repair:.2f} (paper ~0.50)   "
        f"<=1 repair: {at_most_one_repair:.2f} (paper ~0.85)   "
        f"<=2 total steps: {within_two_steps:.2f} (paper ~0.79)"
    )

    assert one_selection >= 0.9          # a single labelled target almost always suffices
    assert no_repair >= 0.4
    assert at_most_one_repair >= 0.6
    assert within_two_steps >= 0.5

    # Appendix E / Section 6.4: among tasks whose initial program needed
    # fixing, a single repair usually sufficed in the paper (~75%).  Our
    # synthetic suite is heavier on multi-format name tasks where every
    # ambiguous source pattern needs its own repair, so the fraction is
    # lower; EXPERIMENTS.md discusses the deviation.
    imperfect_initially = [run for run in clx_runs if run.steps.repairs > 0]
    if imperfect_initially:
        single_repair = sum(1 for run in imperfect_initially if run.steps.repairs == 1)
        print(f"single repair among repaired tasks: {single_repair}/{len(imperfect_initially)} "
              "(paper ~75%)")
        assert single_repair / len(imperfect_initially) >= 0.15
