"""Table 6 — benchmark test case details (E10).

Prints the per-source statistics of the 47-task suite (number of tests,
average size, average/max string length, data types) next to the numbers
the paper reports.
"""

from __future__ import annotations

from repro.bench.suite import suite_statistics
from repro.util.text import format_table

#: Paper's Table 6 reference values: (tests, avg size, avg len, max len).
PAPER = {
    "SyGuS": (27, 63.3, 11.8, 63),
    "FlashFill": (10, 10.3, 15.8, 57),
    "BlinkFill": (4, 10.8, 14.9, 37),
    "PredProg": (3, 10.0, 12.7, 38),
    "PROSE": (3, 39.3, 10.2, 44),
    "Overall": (47, 43.6, 13.0, 63),
}


def test_table6_suite_statistics(suite_tasks, benchmark):
    stats = benchmark.pedantic(suite_statistics, args=(suite_tasks,), rounds=1, iterations=1)

    rows = []
    for row in stats:
        paper = PAPER[row.source]
        rows.append(
            (
                row.source,
                f"{row.test_count} (paper {paper[0]})",
                f"{row.average_size:.1f} (paper {paper[1]})",
                f"{row.average_length:.1f} (paper {paper[2]})",
                f"{row.max_length} (paper {paper[3]})",
                ", ".join(row.data_types),
            )
        )
    print("\nTable 6 — benchmark test cases")
    print(format_table(["Sources", "# tests", "AvgSize", "AvgLen", "MaxLen", "DataType"], rows))

    by_source = {row.source: row for row in stats}
    # Task counts per source match the paper exactly.
    for source, (tests, _size, _len, _max) in PAPER.items():
        assert by_source[source].test_count == tests
    # Sizes and lengths are in the same ballpark (synthetic regeneration).
    assert 30 <= by_source["Overall"].average_size <= 60
    assert 10 <= by_source["Overall"].average_length <= 25
