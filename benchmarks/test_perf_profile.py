"""Performance A6 — constant-memory profiling and sharded apply.

PR 1 made the *apply* half of CLX scale (compiled programs at regex
speed); this benchmark guards the scale layer of both halves added on
top of it:

* **Streaming profile** — :class:`repro.clustering.incremental.IncrementalProfiler`
  must profile a ≥200k-row synthetic phone column from a generator with
  memory bounded by the number of distinct patterns, not the number of
  rows (the batch profiler materializes every value), while producing
  the exact same leaf patterns and counts.
* **Sharded apply** — :meth:`TransformEngine.run_parallel` must match
  :meth:`TransformEngine.run` outcome-for-outcome, and beat it on
  wall-clock when real cores are available.

``CLX_PERF_ROWS`` scales the workload down for smoke runs (CI runs the
file with a small value so the scale path cannot rot); speed assertions
only apply at full size on multi-core hosts, correctness assertions
always apply.
"""

from __future__ import annotations

import os
import sys
import time
import tracemalloc

from repro.bench.generators import phone_number_stream
from repro.bench.phone import phone_dataset
from repro.clustering.incremental import IncrementalProfiler
from repro.clustering.profiler import PatternProfiler
from repro.core.session import CLXSession
from repro.util.text import format_table

#: Rows in the scale workloads; override with CLX_PERF_ROWS for smoke runs.
FULL_ROWS = 200_000
ROWS = int(os.environ.get("CLX_PERF_ROWS", str(FULL_ROWS)))
SMOKE = ROWS < FULL_ROWS

#: tracemalloc costs ~5x, so the memory bound is asserted on a capped
#: prefix of the workload — the whole point is that peak memory does not
#: depend on the row count, so the cap loses no generality.
TRACED_ROWS = min(ROWS, 50_000)


def _materialized_estimate(rows: int) -> float:
    """Approximate bytes needed just to hold ``rows`` values in a list."""
    sample = list(phone_number_stream(1_000, seed=77))
    per_value = sum(sys.getsizeof(value) for value in sample) / len(sample)
    return (per_value + 8) * rows  # +8 for the list slot


def test_perf_streaming_profile_bounded_memory():
    profiler = IncrementalProfiler()

    # Full-size pass, untraced: the end-to-end throughput number.
    start = time.perf_counter()
    profile = profiler.profile(phone_number_stream(ROWS, seed=77))
    seconds = time.perf_counter() - start
    assert profile.row_count == ROWS

    # Same leaf patterns/counts as materialize-everything batch profiling.
    check = list(phone_number_stream(min(ROWS, 20_000), seed=78))
    batch = PatternProfiler().profile(check)
    streamed = profiler.profile(iter(check)).to_hierarchy()
    assert [(node.pattern.notation(), node.size) for node in streamed.leaf_nodes] == [
        (node.pattern.notation(), node.size) for node in batch.leaf_nodes
    ]

    # Bounded-memory assertion, traced on a capped prefix.
    tracemalloc.start()
    traced_profile = profiler.profile(phone_number_stream(TRACED_ROWS, seed=77))
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert traced_profile.cluster_count == profile.cluster_count

    estimate = _materialized_estimate(TRACED_ROWS)
    rows_table = [
        ("rows profiled (untraced)", f"{ROWS}", f"{seconds:.2f} s"),
        ("distinct leaf patterns", f"{profile.cluster_count}", ""),
        ("traced peak memory", f"{peak / 1e6:.2f} MB", f"{TRACED_ROWS} rows"),
        ("materialized-column estimate", f"{estimate / 1e6:.2f} MB", f"{TRACED_ROWS} rows"),
    ]
    print("\n" + format_table(["streaming profile", "value", "detail"], rows_table))

    # The profile must cost a small fraction of what materializing the
    # column would — that is what "no full materialization" means.
    assert peak < estimate / 4, (
        f"streaming profile peaked at {peak / 1e6:.2f} MB, not clearly below the "
        f"{estimate / 1e6:.2f} MB a materialized column would need"
    )


def test_perf_sharded_apply_speedup():
    # Synthesize once on the study column, then scale the apply workload.
    raw, _expected = phone_dataset(count=300, format_count=6, seed=331)
    session = CLXSession(raw)
    session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
    engine = session.engine()
    values = list(phone_number_stream(ROWS, seed=97))

    start = time.perf_counter()
    single = engine.run(values)
    single_seconds = time.perf_counter() - start

    workers = min(4, os.cpu_count() or 1) if (os.cpu_count() or 1) > 1 else 2
    start = time.perf_counter()
    sharded = engine.run_parallel(values, workers=workers)
    sharded_seconds = time.perf_counter() - start

    # Sharding must never change semantics.
    assert sharded.outputs == single.outputs
    assert sharded.matched_pattern == single.matched_pattern

    speedup = single_seconds / sharded_seconds
    rows_table = [
        ("TransformEngine.run", f"{single_seconds * 1000:.1f} ms", "1.0x"),
        (
            f"run_parallel(workers={workers})",
            f"{sharded_seconds * 1000:.1f} ms",
            f"{speedup:.2f}x",
        ),
    ]
    print(f"\nsharded apply over {ROWS} rows on {os.cpu_count()} CPU(s)")
    print(format_table(["apply path", "latency", "speedup"], rows_table))

    # The speedup claim needs real cores and the full workload; smoke
    # runs and single-CPU hosts still verify equivalence above.
    if not SMOKE and (os.cpu_count() or 1) >= 2:
        assert speedup > 1.0, (
            f"sharded apply ({sharded_seconds * 1000:.1f} ms) not faster than "
            f"single-process run ({single_seconds * 1000:.1f} ms) on "
            f"{os.cpu_count()} CPUs"
        )
