"""Section 7.4 expressivity results (E13).

Counts for how many of the 47 benchmark tasks each system ends up with a
perfect transformation under the lazy-user simulation.  Paper numbers:
CLX 42/47 (~90%), FlashFill 45/47 (~96%), RegexReplace 46/47 (~98%).
"""

from __future__ import annotations

from repro.util.text import format_table


def test_expressivity_coverage(suite_runs, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    total = len(suite_runs)
    perfect = {
        system: sum(1 for runs in suite_runs.values() if runs[system].perfect)
        for system in ("CLX", "FlashFill", "RegexReplace")
    }

    print("\nExpressivity — perfect transformations out of 47 tasks")
    print(
        format_table(
            ["System", "Perfect", "Paper"],
            [
                ("CLX", f"{perfect['CLX']}/{total}", "42/47"),
                ("FlashFill", f"{perfect['FlashFill']}/{total}", "45/47"),
                ("RegexReplace", f"{perfect['RegexReplace']}/{total}", "46/47"),
            ],
        )
    )
    failures = [
        task_id for task_id, runs in suite_runs.items() if not runs["CLX"].perfect
    ]
    print("CLX imperfect tasks:", ", ".join(failures))

    # Shape checks: every system covers the vast majority of tasks, CLX's
    # coverage is close to (but at most a handful of tasks below) the
    # example-driven baselines, exactly as in the paper.
    assert perfect["CLX"] >= 0.80 * total
    assert perfect["FlashFill"] >= 0.90 * total
    assert perfect["RegexReplace"] >= 0.90 * total
    assert perfect["CLX"] <= perfect["FlashFill"]
