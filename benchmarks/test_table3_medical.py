"""Table 3 / Example 5 — normalizing messy medical billing codes (E7).

Regenerates the paper's Table 3: every raw CPT code is transformed into
``[CPT-XXXXX]`` by a three-branch UniFi program synthesized from the
pattern hierarchy and the generalized target ``'['<U>+'-'<D>+']'``.
"""

from __future__ import annotations

from repro import CLXSession
from repro.util.text import format_table

RAW = ["CPT-00350", "[CPT-00340", "[CPT-11536]", "CPT115"]
EXPECTED = ["[CPT-00350]", "[CPT-00340]", "[CPT-11536]", "[CPT-115]"]


def _run():
    session = CLXSession(RAW)
    session.label_target_from_string("[CPT-11536]", generalize=1)
    return session, session.transform()


def test_table3_medical_billing_codes(benchmark):
    session, report = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nTable 3 — normalizing messy medical billing codes")
    print(format_table(["Raw data", "Transformed data"], report.pairs()))
    print("\nSynthesized program (explained):")
    for operation in session.explain():
        print(f"  {operation}")

    assert [out for _raw, out in report.pairs()] == EXPECTED
    assert len(session.program) == 3  # same branch count as the paper's program
