"""Table 4 / Example 6 — normalizing messy employee names (E8).

Regenerates the paper's Table 4.  Name tasks are the canonical
semantic-ambiguity case (Section 6.4): the MDL-minimal default plan may
pick the wrong capitalized word, and the user fixes it by choosing an
alternative plan — so this harness runs the full repair loop and reports
how many repairs were needed.
"""

from __future__ import annotations

from repro import CLXSession
from repro.dsl.interpreter import apply_plan
from repro.patterns.matching import match_pattern
from repro.util.text import format_table

RAW = ["Dr. Eran Yahav", "Fisher, K.", "Bill Gates, Sr.", "Oege de Moor"]
DESIRED = {
    "Dr. Eran Yahav": "Yahav, E.",
    "Fisher, K.": "Fisher, K.",
    "Bill Gates, Sr.": "Gates, B.",
    "Oege de Moor": "Moor, O.",
}


def _run():
    session = CLXSession(RAW)
    session.label_target_from_string("Fisher, K.", generalize=1)
    repairs = 0
    for branch in list(session.program):
        rows = [r for r in RAW if match_pattern(r, branch.pattern) is not None]
        if all(
            apply_plan(branch.plan, match_pattern(r, branch.pattern)) == DESIRED[r]
            for r in rows
        ):
            continue
        for candidate in session.repair_candidates(branch.pattern).alternatives:
            if all(
                apply_plan(candidate, match_pattern(r, branch.pattern)) == DESIRED[r]
                for r in rows
            ):
                session.apply_repair(branch.pattern, candidate)
                repairs += 1
                break
    return session, session.transform(), repairs


def test_table4_employee_names(benchmark):
    session, report, repairs = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nTable 4 — normalizing messy employee names")
    print(format_table(["Raw data", "Transformed data"], report.pairs()))
    print(f"repairs performed: {repairs}")

    outputs = dict(report.pairs())
    assert outputs["Fisher, K."] == "Fisher, K."
    assert outputs["Dr. Eran Yahav"] == "Yahav, E."
    assert outputs["Bill Gates, Sr."] == "Gates, B."
    # "Oege de Moor" contains a lowercase particle with no analogue in the
    # target pattern; like the paper's hard cases it may stay unresolved.
    correct = sum(1 for raw, out in outputs.items() if out == DESIRED[raw])
    assert correct >= 3
