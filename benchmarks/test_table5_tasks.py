"""Table 5 — explainability test case details (E9).

Prints the size / average length / max length / data type of the three
Section 7.3 tasks, mirroring the paper's Table 5.
"""

from __future__ import annotations

from repro.bench.suite import explainability_tasks
from repro.util.text import format_table


def test_table5_explainability_task_statistics(benchmark):
    tasks = benchmark.pedantic(explainability_tasks, rounds=1, iterations=1)

    rows = [
        (
            f"Task{i + 1}",
            task.size,
            round(task.average_length, 1),
            task.max_length,
            task.data_type,
        )
        for i, task in enumerate(tasks)
    ]
    print("\nTable 5 — explainability test cases")
    print(format_table(["Task ID", "Size", "AvgLen", "MaxLen", "DataType"], rows))

    # Paper: sizes 10 / 10 / 100; data types name / address / phone.
    assert [task.size for task in tasks] == [10, 10, 100]
    assert [task.data_type for task in tasks] == ["human name", "address", "phone number"]
    # String lengths are in the same ballpark as the paper (11.8/20.3/16.6).
    for task, paper_avg in zip(tasks, (11.8, 20.3, 16.6)):
        assert 0.4 * paper_avg <= task.average_length <= 2.5 * paper_avg
