"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper's
evaluation section.  The expensive inputs — the 47-task effort simulation
and the user-study traces — are computed once per session here and shared
across modules.
"""

from __future__ import annotations

import pytest

from repro.bench.suite import benchmark_suite, explainability_quizzes, explainability_tasks
from repro.simulation.comprehension import run_comprehension_study
from repro.simulation.lazy_user import simulate_all
from repro.simulation.userstudy import run_explainability_study, run_scalability_study


@pytest.fixture(scope="session")
def suite_tasks():
    """The 47 benchmark tasks."""
    return benchmark_suite()


@pytest.fixture(scope="session")
def suite_runs(suite_tasks):
    """Effort-simulation results: {task_id: {system: SystemRun}}."""
    return {task.task_id: simulate_all(task) for task in suite_tasks}


@pytest.fixture(scope="session")
def scalability_traces():
    """User-study traces for the 10(2)/100(4)/300(6) phone cases."""
    return run_scalability_study()


@pytest.fixture(scope="session")
def explainability_traces():
    """Completion-time traces for the three explainability tasks."""
    return run_explainability_study(explainability_tasks())


@pytest.fixture(scope="session")
def comprehension_results():
    """Comprehension-model results for the three explainability quizzes."""
    return run_comprehension_study(explainability_quizzes())
