"""Figure 11 — scalability of system usability as data grows (E1–E3).

Regenerates the three panels of the paper's Figure 11 for the phone-number
user study (cases 10(2), 100(4), 300(6)):

* 11a — overall completion time per system,
* 11b — rounds of interaction per system,
* 11c — interaction timestamps for the 300(6) case.

The paper's claim being checked: CLX's completion time grows only
marginally (1.1×/1.2× in the paper) while FlashFill's grows by an order
of magnitude (2.4×/9.1×); RegexReplace costs the most on small data.
"""

from __future__ import annotations

from repro.simulation.userstudy import run_scalability_study
from repro.util.text import format_table

SYSTEMS = ("RegexReplace", "FlashFill", "CLX")
CASES = ("10(2)", "100(4)", "300(6)")


def test_fig11_overall_completion_time(benchmark, scalability_traces):
    """Figure 11a: overall completion time (seconds) per case and system."""
    benchmark.pedantic(run_scalability_study, rounds=1, iterations=1)
    traces = scalability_traces

    rows = [
        [case] + [round(traces[case][system].total_seconds, 1) for system in SYSTEMS]
        for case in CASES
    ]
    print("\nFigure 11a — overall completion time (s)")
    print(format_table(["case", *SYSTEMS], rows))

    clx_growth = traces["300(6)"]["CLX"].total_seconds / traces["10(2)"]["CLX"].total_seconds
    ff_growth = (
        traces["300(6)"]["FlashFill"].total_seconds
        / traces["10(2)"]["FlashFill"].total_seconds
    )
    print(f"growth 10(2)->300(6): CLX {clx_growth:.1f}x (paper 1.2x), "
          f"FlashFill {ff_growth:.1f}x (paper 9.1x)")
    assert clx_growth < 2.5
    assert ff_growth > 4.0
    assert clx_growth < ff_growth


def test_fig11_rounds_of_interaction(scalability_traces, benchmark):
    """Figure 11b: number of interactions per case and system."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [case] + [scalability_traces[case][system].interactions for system in SYSTEMS]
        for case in CASES
    ]
    print("\nFigure 11b — rounds of interaction")
    print(format_table(["case", *SYSTEMS], rows))
    for case in CASES:
        for system in SYSTEMS:
            assert 1 <= scalability_traces[case][system].interactions <= 10


def test_fig11_interaction_timestamps_300_6(scalability_traces, benchmark):
    """Figure 11c: cumulative timestamp of each interaction, 300(6) case."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\nFigure 11c — interaction timestamps for 300(6) (s)")
    for system in SYSTEMS:
        stamps = [round(t, 1) for t in scalability_traces["300(6)"][system].timestamps]
        print(f"  {system:13s} {stamps}")

    # FlashFill's gaps between interactions grow as the remaining failures
    # get rarer; CLX's stay roughly constant.
    ff = scalability_traces["300(6)"]["FlashFill"].timestamps
    ff_gaps = [b - a for a, b in zip(ff, ff[1:])]
    if len(ff_gaps) >= 2:
        assert ff_gaps[-1] >= ff_gaps[0]
    clx = scalability_traces["300(6)"]["CLX"].timestamps
    clx_gaps = [b - a for a, b in zip(clx, clx[1:])]
    if clx_gaps and ff_gaps:
        assert max(clx_gaps) <= max(ff_gaps)
