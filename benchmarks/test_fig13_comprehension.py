"""Figure 13 — user comprehension test (E5).

Per-task correct-answer rate of the "given input x, what is the output?"
quiz for each system.  Paper claim: CLX users answer almost perfectly,
FlashFill users get less than half right (CLX ≈ 2× FlashFill);
RegexReplace is comparable to CLX.
"""

from __future__ import annotations

from repro.util.text import format_table

SYSTEMS = ("RegexReplace", "FlashFill", "CLX")


def test_fig13_comprehension_correct_rate(comprehension_results, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = [
        [result.task_id]
        + [round(result.correct_rate[system], 2) for system in SYSTEMS]
        for result in comprehension_results
    ]
    print("\nFigure 13 — comprehension correct rate")
    print(format_table(["task", *SYSTEMS], rows))

    clx_avg = sum(r.correct_rate["CLX"] for r in comprehension_results) / len(comprehension_results)
    ff_avg = sum(r.correct_rate["FlashFill"] for r in comprehension_results) / len(
        comprehension_results
    )
    rr_avg = sum(r.correct_rate["RegexReplace"] for r in comprehension_results) / len(
        comprehension_results
    )
    print(f"averages: CLX {clx_avg:.2f}, FlashFill {ff_avg:.2f}, RegexReplace {rr_avg:.2f} "
          "(paper: ~0.95, ~0.45, ~0.9)")

    assert clx_avg >= 0.85
    assert clx_avg >= 1.5 * ff_avg, "CLX should roughly double FlashFill's success rate"
    assert rr_avg >= 0.75
