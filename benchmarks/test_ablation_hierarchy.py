"""Ablation A2 — how much does the pattern hierarchy buy?

Two effects of the agglomerative refinement (Section 4.2) are measured on
the 300(6) phone case and on a name-heavy task:

* *comprehension load*: how many patterns the user must read at each
  hierarchy level (leaves vs. after each refinement round);
* *program size*: how many Switch branches the synthesizer emits when it
  may use generalized parents versus when it is restricted to leaf
  patterns only.
"""

from __future__ import annotations

from repro.bench.generators import human_names
from repro.bench.phone import phone_dataset
from repro.clustering.profiler import PatternProfiler
from repro.patterns.generalize import GENERALIZATION_STRATEGIES
from repro.patterns.parse import parse_pattern
from repro.synthesis.synthesizer import Synthesizer
from repro.util.text import format_table


def _layer_sizes(values):
    hierarchy = PatternProfiler().profile(values)
    return [len(layer) for layer in hierarchy.layers]


def test_ablation_hierarchy_depth(benchmark):
    raw_phone, _ = phone_dataset(count=300, format_count=6, seed=331)
    raw_names, _ = human_names(120, seed=17)

    sizes_phone = benchmark.pedantic(_layer_sizes, args=(raw_phone,), rounds=1, iterations=1)
    sizes_names = _layer_sizes(raw_names)

    rows = [
        ("phone 300(6)", *sizes_phone),
        ("names 120", *sizes_names),
    ]
    print("\nAblation — number of pattern clusters per hierarchy layer")
    print(format_table(["dataset", "leaves", "round 1", "round 2", "round 3"], rows))

    # Refinement must never increase the number of clusters and should
    # shrink the name clusters substantially (widths differ per name).
    assert sizes_phone == sorted(sizes_phone, reverse=True)
    assert sizes_names == sorted(sizes_names, reverse=True)
    assert sizes_names[1] < sizes_names[0]

    # Program size: names with a generalized target need far fewer
    # branches than one-per-leaf because a single <U>+<L>+' '<U>+<L>+
    # parent covers every first-last width.
    target = parse_pattern("<U>+<L>+','' '<U>+'.'")
    hierarchy = PatternProfiler().profile(raw_names)
    with_hierarchy = Synthesizer().synthesize(hierarchy, target)
    leaf_only = PatternProfiler(strategies=[]).profile(raw_names)
    without_hierarchy = Synthesizer().synthesize(leaf_only, target)
    print(
        f"branches with hierarchy: {len(with_hierarchy.program)}, "
        f"leaf-only: {len(without_hierarchy.program)}"
    )
    assert len(with_hierarchy.program) <= len(without_hierarchy.program)
    assert len(with_hierarchy.program) < sizes_names[0]


def test_ablation_refinement_round_contribution(benchmark):
    """Per-round reduction in cluster count for the 300(6) phone case."""
    raw_phone, _ = phone_dataset(count=300, format_count=6, seed=331)

    def run():
        reductions = []
        for rounds in range(len(GENERALIZATION_STRATEGIES) + 1):
            profiler = PatternProfiler(strategies=GENERALIZATION_STRATEGIES[:rounds])
            hierarchy = profiler.profile(raw_phone)
            reductions.append(len(hierarchy.roots))
        return reductions

    reductions = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation — top-layer cluster count after 0..3 refinement rounds")
    print(format_table(["rounds", "clusters"], list(enumerate(reductions))))
    assert reductions == sorted(reductions, reverse=True)
