"""Performance A3 — clustering throughput versus data size.

Section 4 argues the profiler must be fast enough for interactive use.
This benchmark measures wall-clock profiling time for growing synthetic
phone columns and checks that scaling stays roughly linear in the row
count (the per-row work is tokenization plus a dictionary update).
"""

from __future__ import annotations

import time

from repro.bench.phone import phone_dataset
from repro.clustering.profiler import PatternProfiler
from repro.util.text import format_table

SIZES = (100, 1_000, 10_000)


def test_perf_clustering_scales_with_rows(benchmark):
    datasets = {size: phone_dataset(count=size, format_count=6, seed=331)[0] for size in SIZES}
    profiler = PatternProfiler()

    # The official timing sample (reported by pytest-benchmark) profiles
    # the largest column once.
    benchmark.pedantic(profiler.profile, args=(datasets[SIZES[-1]],), rounds=1, iterations=1)

    timings = {}
    for size, values in datasets.items():
        start = time.perf_counter()
        hierarchy = profiler.profile(values)
        timings[size] = time.perf_counter() - start
        assert hierarchy.total_rows == size

    rows = [
        (size, f"{timings[size] * 1000:.1f} ms", f"{size / max(timings[size], 1e-9):,.0f} rows/s")
        for size in SIZES
    ]
    print("\nClustering throughput")
    print(format_table(["rows", "time", "throughput"], rows))

    # 10k rows must stay comfortably interactive.
    assert timings[10_000] < 5.0
    # Scaling is sub-quadratic: 100x more rows costs well under 1000x time.
    assert timings[10_000] / max(timings[100], 1e-9) < 500
