"""Content guards — the "advanced conditionals" extension of UniFi.

The paper's expressivity study fails exactly one benchmark because the
transformation needs a conditional on *content* rather than on pattern
("Example 13 requires the inference of advanced conditionals (Contains
keyword 'picture') that UniFi cannot currently express, but adding
support for these conditionals in UniFi is straightforward", §7.4).

This module adds that support.  A :class:`ContainsGuard` refines a Switch
branch: the branch fires only when the input both matches the branch's
source pattern *and* satisfies the guard.  Guards are optional — every
program the core synthesizer produces is guard-free — and are typically
introduced during repair, when the user notices that rows of one pattern
need two different treatments (see
:meth:`repro.core.session.CLXSession.apply_conditional_repair`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass


@dataclass(frozen=True)
class ContainsGuard:
    """Requires the raw value to contain a literal keyword.

    Attributes:
        keyword: The literal text that must occur somewhere in the value.
        case_sensitive: Whether the containment check is case sensitive
            (default True, matching how wrangling tools treat keywords).
    """

    keyword: str
    case_sensitive: bool = True

    def __post_init__(self) -> None:
        if not self.keyword:
            raise ValueError("ContainsGuard requires a non-empty keyword")

    def holds(self, value: str) -> bool:
        """Whether the guard accepts ``value``."""
        if self.case_sensitive:
            return self.keyword in value
        return self.keyword.lower() in value.lower()

    def regex_prefix(self) -> str:
        """Lookahead fragment enforcing the guard inside an anchored regex."""
        escaped = re.escape(self.keyword)
        if self.case_sensitive:
            return f"(?=.*{escaped})"
        return f"(?=.*(?i:{escaped}))"

    def describe(self) -> str:
        """Human-readable rendering used when explaining a guarded branch."""
        sensitivity = "" if self.case_sensitive else " (ignoring case)"
        return f"contains '{self.keyword}'{sensitivity}"

    def to_dict(self) -> dict:
        """JSON-serializable form consumed by :mod:`repro.engine.serialize`."""
        return {
            "type": "contains",
            "keyword": self.keyword,
            "case_sensitive": self.case_sensitive,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ContainsGuard":
        """Rebuild a guard from its :meth:`to_dict` form."""
        return cls(
            keyword=payload["keyword"],
            case_sensitive=bool(payload.get("case_sensitive", True)),
        )

    def __str__(self) -> str:
        return f"Contains({self.keyword!r})"
