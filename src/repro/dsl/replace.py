"""Regexp ``Replace`` operations — the explained form of UniFi branches.

A :class:`ReplaceOperation` is what the user actually sees and verifies
(Figure 4 of the paper): a regular expression over the source pattern in
which extractable token runs are capture groups, plus a replacement
template using ``$1``, ``$2``, … back-references.  The operation is
executable, so tests can check that the explanation and the UniFi branch
it came from transform data identically.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class ReplaceOperation:
    """One regexp replace operation shown to the user.

    Attributes:
        regex: Anchored regular expression with capture groups around the
            extracted token runs.
        replacement: Replacement template using ``$1``-style references.
        description: Optional human-readable summary (Wrangler-style
            rendering of the source pattern), used for display only.
    """

    regex: str
    replacement: str
    description: str = ""

    def compiled(self) -> "re.Pattern[str]":
        """The compiled regular expression."""
        return re.compile(self.regex)

    def matches(self, value: str) -> bool:
        """Whether this operation applies to ``value``."""
        return self.compiled().match(value) is not None

    def apply(self, value: str) -> str:
        """Apply the replacement to ``value``.

        Returns ``value`` unchanged when the regex does not match, which
        mirrors how an ordered list of Replace operations behaves in a
        wrangling tool.
        """
        match = self.compiled().match(value)
        if match is None:
            return value
        return _substitute(self.replacement, match)

    def __str__(self) -> str:
        return f"Replace '{self.regex}' with '{self.replacement}'"


def _substitute(template: str, match: "re.Match[str]") -> str:
    """Expand ``$N`` references in ``template`` from ``match`` groups."""
    out: List[str] = []
    index = 0
    length = len(template)
    while index < length:
        char = template[index]
        if char == "$" and index + 1 < length and template[index + 1].isdigit():
            digits_start = index + 1
            cursor = digits_start
            while cursor < length and template[cursor].isdigit():
                cursor += 1
            group_number = int(template[digits_start:cursor])
            out.append(match.group(group_number) or "")
            index = cursor
            continue
        if char == "$" and index + 1 < length and template[index + 1] == "$":
            out.append("$")
            index += 2
            continue
        out.append(char)
        index += 1
    return "".join(out)


def apply_replace(operation: ReplaceOperation, value: str) -> str:
    """Apply a single replace operation (function form of :meth:`ReplaceOperation.apply`)."""
    return operation.apply(value)


def apply_replacements(operations: Sequence[ReplaceOperation], value: str) -> str:
    """Apply the *first matching* operation of an ordered list to ``value``.

    The explained form of a UniFi Switch is a list of Replace operations
    with mutually exclusive source patterns, so first-match semantics is
    equivalent to the Switch semantics.
    """
    for operation in operations:
        if operation.matches(value):
            return operation.apply(value)
    return value
