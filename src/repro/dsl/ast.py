"""Abstract syntax of UniFi programs (Figure 7 of the paper).

Grammar::

    Program L  := Switch((b1, E1), ..., (bn, En))
    Predicate b := Match(s, p)
    Expression E := Concat(f1, ..., fn)
    String Expression f := ConstStr(s) | Extract(ti, tj)

In this implementation a ``Branch`` pairs the match *pattern* with the
atomic transformation plan, and the ``Concat`` node is represented by
:class:`AtomicPlan` holding the ordered string expressions.  Token
indices in ``Extract`` are **1-based**, as in the paper's examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.patterns.pattern import Pattern


@dataclass(frozen=True)
class ConstStr:
    """A constant string contributed verbatim to the output.

    Attributes:
        text: The constant text (non-empty).
    """

    text: str

    def __post_init__(self) -> None:
        if not self.text:
            raise ValueError("ConstStr text must be non-empty")

    def __str__(self) -> str:
        return f"ConstStr({self.text!r})"


@dataclass(frozen=True)
class Extract:
    """Extract source tokens ``start`` through ``end`` (inclusive, 1-based).

    ``Extract(i)`` in the paper is shorthand for ``Extract(i, i)``.

    Attributes:
        start: 1-based index of the first extracted source token.
        end: 1-based index of the last extracted source token.
    """

    start: int
    end: int

    def __init__(self, start: int, end: int | None = None) -> None:
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "end", start if end is None else end)
        if self.start < 1 or self.end < self.start:
            raise ValueError(
                f"invalid Extract range ({self.start}, {self.end}); "
                "indices are 1-based and end must be >= start"
            )

    @property
    def width(self) -> int:
        """Number of source tokens extracted."""
        return self.end - self.start + 1

    def __str__(self) -> str:
        if self.start == self.end:
            return f"Extract({self.start})"
        return f"Extract({self.start},{self.end})"


StringExpression = Union[ConstStr, Extract]


@dataclass(frozen=True)
class AtomicPlan:
    """An atomic transformation plan: ``Concat(f1, ..., fn)``.

    Attributes:
        expressions: Ordered string expressions whose outputs concatenate
            into the transformed string.
    """

    expressions: Tuple[StringExpression, ...]

    def __init__(self, expressions) -> None:
        object.__setattr__(self, "expressions", tuple(expressions))
        for expression in self.expressions:
            if not isinstance(expression, (ConstStr, Extract)):
                raise TypeError(f"unsupported expression {expression!r}")

    def __len__(self) -> int:
        return len(self.expressions)

    def __iter__(self):
        return iter(self.expressions)

    @property
    def extract_count(self) -> int:
        """Number of Extract expressions in the plan."""
        return sum(1 for e in self.expressions if isinstance(e, Extract))

    @property
    def const_count(self) -> int:
        """Number of ConstStr expressions in the plan."""
        return sum(1 for e in self.expressions if isinstance(e, ConstStr))

    def __str__(self) -> str:
        inner = ", ".join(str(expression) for expression in self.expressions)
        return f"Concat({inner})"


@dataclass(frozen=True)
class Branch:
    """One ``(Match(pattern), plan)`` arm of a Switch.

    Attributes:
        pattern: Source pattern matched exactly against the input string.
        plan: Atomic transformation plan applied when the pattern matches.
        guard: Optional content guard (the "advanced conditionals"
            extension, see :mod:`repro.dsl.guards`); when present the
            branch fires only if the guard also holds for the raw value.
    """

    pattern: Pattern
    plan: AtomicPlan
    guard: "object | None" = None

    def accepts(self, value: str) -> bool:
        """Whether the guard (if any) accepts ``value``.

        The pattern match itself is checked by the interpreter; this only
        evaluates the content guard so unguarded branches stay zero-cost.
        """
        return self.guard is None or self.guard.holds(value)

    def __str__(self) -> str:
        if self.guard is None:
            return f"(Match({self.pattern.notation()}), {self.plan})"
        return f"(Match({self.pattern.notation()}) and {self.guard}, {self.plan})"


@dataclass(frozen=True)
class UniFiProgram:
    """A complete UniFi program: an ordered Switch of branches.

    Branch order matters only when patterns overlap; the synthesizer
    produces disjoint leaf-or-validated patterns so in practice at most
    one branch matches any given string.

    Attributes:
        branches: The Switch arms, evaluated first-match-wins.
    """

    branches: Tuple[Branch, ...]

    def __init__(self, branches) -> None:
        object.__setattr__(self, "branches", tuple(branches))

    def __len__(self) -> int:
        return len(self.branches)

    def __iter__(self):
        return iter(self.branches)

    @property
    def patterns(self) -> Tuple[Pattern, ...]:
        """Source patterns of every branch, in order."""
        return tuple(branch.pattern for branch in self.branches)

    def branch_for(self, pattern: Pattern) -> Branch | None:
        """Return the branch whose pattern equals ``pattern``, if any."""
        for branch in self.branches:
            if branch.pattern == pattern:
                return branch
        return None

    def replacing_branch(self, pattern: Pattern, plan: AtomicPlan) -> "UniFiProgram":
        """Return a new program with the plan for ``pattern`` replaced.

        Used by program repair (Section 6.4): the user swaps the default
        plan of one source pattern for another candidate.
        """
        new_branches = []
        replaced = False
        for branch in self.branches:
            if branch.pattern == pattern:
                new_branches.append(Branch(pattern=pattern, plan=plan))
                replaced = True
            else:
                new_branches.append(branch)
        if not replaced:
            new_branches.append(Branch(pattern=pattern, plan=plan))
        return UniFiProgram(new_branches)

    # ------------------------------------------------------------------
    # Serialization (delegates to repro.engine.serialize; imported
    # locally because the engine builds on this module)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable form of the program (see :mod:`repro.engine.serialize`)."""
        from repro.engine.serialize import program_to_dict

        return program_to_dict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "UniFiProgram":
        """Rebuild a program from its :meth:`to_dict` form."""
        from repro.engine.serialize import program_from_dict

        return program_from_dict(payload)

    def dumps(self, indent: "int | None" = None) -> str:
        """Serialize the program to a JSON string."""
        import json

        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "UniFiProgram":
        """Parse a JSON string produced by :meth:`dumps`."""
        import json

        from repro.util.errors import SerializationError

        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SerializationError(f"program is not valid JSON: {error}") from error
        return cls.from_dict(payload)

    def __str__(self) -> str:
        inner = ",\n  ".join(str(branch) for branch in self.branches)
        return f"Switch(\n  {inner}\n)"
