"""Minimum Description Length scoring of atomic plans (Section 6.3).

The paper ranks candidate atomic transformation plans by an MDL score::

    L(E, T) = L(E) + L(T | E)
    L(E)     = |E| * log(m)                       (m = number of operation types)
    L(T | E) = sum over expressions f of log L(f)

with per-expression costs ``L(Extract) = |Pcand| ** 2`` (an extract is a
choice of two indices into the candidate source pattern) and
``L(ConstStr(s)) = c ** |s|`` with ``c = 95`` printable characters.  All
logarithms are base 2; the base does not affect the ranking.
"""

from __future__ import annotations

import math

from repro.dsl.ast import AtomicPlan, ConstStr, Extract
from repro.util.text import PRINTABLE_SIZE

#: Number of distinct operation types in UniFi plans (Extract, ConstStr).
OPERATION_TYPES = 2


def expression_cost(expression, source_length: int) -> float:
    """``log L(f)`` for a single string expression.

    Args:
        expression: ``Extract`` or ``ConstStr``.
        source_length: Number of tokens in the candidate source pattern
            (``|Pcand|``); must be positive for Extract costs.
    """
    if isinstance(expression, Extract):
        if source_length < 1:
            raise ValueError("source_length must be positive for Extract costs")
        return 2.0 * math.log2(max(source_length, 2))
    if isinstance(expression, ConstStr):
        return len(expression.text) * math.log2(PRINTABLE_SIZE)
    raise TypeError(f"unsupported expression {expression!r}")


def plan_description_length(plan: AtomicPlan, source_length: int) -> float:
    """Full description length ``L(E) + L(T|E)`` of a plan.

    Args:
        plan: The atomic transformation plan.
        source_length: Number of tokens in the candidate source pattern.
    """
    model_cost = len(plan) * math.log2(OPERATION_TYPES)
    data_cost = sum(expression_cost(expression, source_length) for expression in plan)
    return model_cost + data_cost


# Alias used by the synthesis module and the public API.
description_length = plan_description_length
