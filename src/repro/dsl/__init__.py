"""UniFi — the data pattern transformation DSL (paper Section 5).

A UniFi program is a ``Switch`` over ``(Match(pattern), plan)`` branches
where each plan (an *atomic transformation plan*) is a concatenation of
``Extract`` and ``ConstStr`` string expressions.  Programs are executed
by :mod:`repro.dsl.interpreter` and explained to users as regexp
``Replace`` operations by :mod:`repro.dsl.explain`.
"""

from repro.dsl.ast import (
    AtomicPlan,
    Branch,
    ConstStr,
    Extract,
    StringExpression,
    UniFiProgram,
)
from repro.dsl.guards import ContainsGuard
from repro.dsl.interpreter import apply_plan, apply_program
from repro.dsl.mdl import description_length, plan_description_length
from repro.dsl.replace import ReplaceOperation, apply_replace, apply_replacements
from repro.dsl.explain import explain_branch, explain_program

__all__ = [
    "AtomicPlan",
    "Branch",
    "ConstStr",
    "ContainsGuard",
    "Extract",
    "ReplaceOperation",
    "StringExpression",
    "UniFiProgram",
    "apply_plan",
    "apply_program",
    "apply_replace",
    "apply_replacements",
    "description_length",
    "explain_branch",
    "explain_program",
    "plan_description_length",
]
