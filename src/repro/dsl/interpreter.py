"""Evaluation of UniFi programs on raw strings.

``apply_plan`` evaluates one atomic transformation plan against a string
that matches a given source pattern; ``apply_program`` evaluates a whole
Switch, returning the input unchanged (and flagging it) when no branch
matches — the paper leaves unmatched data "unchanged and flagged for
additional review" (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.dsl.ast import AtomicPlan, ConstStr, Extract, UniFiProgram
from repro.patterns.matching import match_pattern
from repro.patterns.pattern import Pattern
from repro.util.errors import TransformError


def apply_plan(plan: AtomicPlan, token_texts: Sequence[str]) -> str:
    """Evaluate ``plan`` against the per-token substrings of a source string.

    Args:
        plan: The atomic transformation plan.
        token_texts: Substring covered by each source-pattern token, as
            returned by :func:`repro.patterns.matching.match_pattern`.

    Returns:
        The transformed string.

    Raises:
        TransformError: If an Extract references token indices that do not
            exist in the source pattern.
    """
    pieces: List[str] = []
    for expression in plan.expressions:
        if isinstance(expression, ConstStr):
            pieces.append(expression.text)
            continue
        if isinstance(expression, Extract):
            if expression.end > len(token_texts):
                raise TransformError(
                    f"{expression} out of range for source with {len(token_texts)} tokens"
                )
            pieces.append("".join(token_texts[expression.start - 1 : expression.end]))
            continue
        raise TransformError(f"unsupported expression {expression!r}")
    return "".join(pieces)


@dataclass(frozen=True)
class TransformOutcome:
    """Result of applying a UniFi program to one string.

    Attributes:
        output: The transformed string (equal to the input when no branch
            matched).
        matched: Whether any branch matched.
        pattern: The source pattern of the branch that matched, if any.
    """

    output: str
    matched: bool
    pattern: Optional[Pattern] = None


def apply_program(program: UniFiProgram, value: str) -> TransformOutcome:
    """Apply ``program`` to ``value`` (first matching branch wins).

    Returns a :class:`TransformOutcome`; unmatched values come back
    unchanged with ``matched=False`` so callers can flag them for review.
    """
    for branch in program.branches:
        if not branch.accepts(value):
            continue
        token_texts = match_pattern(value, branch.pattern)
        if token_texts is None:
            continue
        output = apply_plan(branch.plan, token_texts)
        return TransformOutcome(output=output, matched=True, pattern=branch.pattern)
    return TransformOutcome(output=value, matched=False, pattern=None)


def transform_all(program: UniFiProgram, values: Sequence[str]) -> List[TransformOutcome]:
    """Apply ``program`` to every value, preserving order."""
    return [apply_program(program, value) for value in values]
