"""Program explanation: UniFi branches → regexp Replace operations (§5).

Every ``(Match(p), E)`` branch of a UniFi program is explained as one
:class:`~repro.dsl.replace.ReplaceOperation`:

* the source pattern ``p`` becomes an anchored regular expression in
  which every token is a capture group, so group ``k`` corresponds to
  source token ``k`` (1-based, as in the paper's ``$1``, ``$2`` …);
* the replacement string renders each ``ConstStr(s)`` as ``s`` and each
  ``Extract(i, j)`` as the back-references ``$i$i+1…$j``.

The resulting operation is executable and transforms matching strings
exactly as the original branch does — a property the test suite checks.
"""

from __future__ import annotations

from typing import List

from repro.dsl.ast import Branch, ConstStr, Extract, UniFiProgram
from repro.dsl.replace import ReplaceOperation
from repro.patterns.render import render_wrangler


def _grouped_source_regex(branch: Branch) -> str:
    """Anchored regex for the branch's source pattern, one group per token.

    A content guard (the conditional extension) is compiled into a
    leading lookahead so the explained operation still fires exactly when
    the branch does.
    """
    body = "".join(f"({token.to_regex()})" for token in branch.pattern.tokens)
    prefix = branch.guard.regex_prefix() if branch.guard is not None else ""
    return f"^{prefix}{body}$"


def _replacement_template(branch: Branch) -> str:
    """Replacement string with ``$N`` references for extracted tokens."""
    pieces: List[str] = []
    for expression in branch.plan.expressions:
        if isinstance(expression, ConstStr):
            pieces.append(expression.text.replace("$", "$$"))
        elif isinstance(expression, Extract):
            pieces.extend(f"${index}" for index in range(expression.start, expression.end + 1))
        else:  # pragma: no cover - AtomicPlan rejects other types
            raise TypeError(f"unsupported expression {expression!r}")
    return "".join(pieces)


def explain_branch(branch: Branch) -> ReplaceOperation:
    """Explain one UniFi branch as an executable Replace operation."""
    description = render_wrangler(branch.pattern)
    if branch.guard is not None:
        description = f"{description} [{branch.guard.describe()}]"
    return ReplaceOperation(
        regex=_grouped_source_regex(branch),
        replacement=_replacement_template(branch),
        description=description,
    )


def explain_program(program: UniFiProgram) -> List[ReplaceOperation]:
    """Explain every branch of ``program``, preserving branch order."""
    return [explain_branch(branch) for branch in program.branches]
