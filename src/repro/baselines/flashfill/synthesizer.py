"""Learning FlashFill-style programs from input→output examples.

The synthesizer groups examples by the leaf pattern of their inputs and
learns one conditional case per group:

1. build the token-alignment DAG between the input pattern and the
   output's leaf pattern (the same whole-token alignment CLX uses — this
   is the granularity at which FlashFill's substring expressions operate
   for the formatting workloads of the paper's benchmark);
2. enumerate candidate plans, keep those that reproduce *every* example
   of the group, and choose the simplest (minimum description length)
   consistent plan, breaking ties toward left-to-right extraction.

Groups with no consistent plan yield no case — the corresponding rows
stay untransformed and the simulated user has to keep providing examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.flashfill.language import ConditionalCase, FlashFillProgram, make_case
from repro.dsl.ast import AtomicPlan
from repro.dsl.interpreter import apply_plan
from repro.patterns.generalize import generalize_quantifier
from repro.patterns.matching import match_pattern, pattern_of_string
from repro.patterns.pattern import Pattern
from repro.synthesis.alignment import align_tokens
from repro.synthesis.plans import enumerate_plans, rank_plans
from repro.util.errors import TransformError


@dataclass
class FlashFillSynthesizer:
    """Example-driven synthesizer for the FlashFill baseline.

    Attributes:
        max_plans_per_case: Enumeration cap per example group.
    """

    max_plans_per_case: int = 5_000

    def learn(self, examples: Sequence[Tuple[str, str]]) -> FlashFillProgram:
        """Learn a program from ``examples`` (input, output) pairs.

        Examples are grouped by the *quantifier-generalized* pattern of
        their inputs — FlashFill/BlinkFill generalize over field widths,
        so "Mary Miller" and "Christopher Anderson" belong to the same
        conditional case, and a second example in the same group narrows
        the candidate plans exactly like the original systems'
        version-space intersection does.

        Args:
            examples: Input→output pairs provided by the user so far.

        Returns:
            The learned program; groups with no consistent plan simply
            contribute no case.
        """
        groups: Dict[Pattern, List[Tuple[str, str]]] = {}
        order: List[Pattern] = []
        for raw, desired in examples:
            pattern = generalize_quantifier(pattern_of_string(raw))
            if pattern not in groups:
                groups[pattern] = []
                order.append(pattern)
            groups[pattern].append((raw, desired))

        cases: List[ConditionalCase] = []
        for pattern in order:
            group = groups[pattern]
            case = self._learn_case(pattern, group)
            if case is not None:
                cases.append(case)
                continue
            # No single plan covers the whole generalized group (e.g. the
            # group mixes yyyy/mm/dd and mm/dd/yyyy rows, whose widths
            # differ).  Split it by exact leaf pattern, which is how the
            # original systems introduce conditionals on distinguishing
            # token features.
            exact_groups: Dict[Pattern, List[Tuple[str, str]]] = {}
            exact_order: List[Pattern] = []
            for raw, desired in group:
                exact = pattern_of_string(raw)
                if exact not in exact_groups:
                    exact_groups[exact] = []
                    exact_order.append(exact)
                exact_groups[exact].append((raw, desired))
            for exact in exact_order:
                case = self._learn_case(exact, exact_groups[exact])
                if case is not None:
                    cases.append(case)
        return FlashFillProgram(tuple(cases))

    # ------------------------------------------------------------------
    def _learn_case(
        self, source: Pattern, group: Sequence[Tuple[str, str]]
    ) -> Optional[ConditionalCase]:
        """Learn the plan for one input-pattern group, or ``None``.

        Plans are tried in MDL order and the first one consistent with
        every example of the group wins — the consistency check is the
        expensive part, so it runs lazily rather than over the whole
        enumeration.
        """
        target = generalize_quantifier(pattern_of_string(group[0][1]))
        dag = align_tokens(source, target)
        if not dag.has_path():
            return None
        plans = enumerate_plans(dag, max_plans=self.max_plans_per_case)
        for plan in rank_plans(plans, source):
            if self._consistent(plan, source, group):
                return make_case(source, plan)
        return None

    @staticmethod
    def _consistent(
        plan: AtomicPlan, source: Pattern, group: Sequence[Tuple[str, str]]
    ) -> bool:
        """Whether ``plan`` reproduces every example of the group."""
        for raw, desired in group:
            token_texts = match_pattern(raw, source)
            if token_texts is None:
                return False
            try:
                if apply_plan(plan, token_texts) != desired:
                    return False
            except TransformError:
                return False
        return True
