"""The FlashFill interaction loop: provide an example, re-synthesize, verify.

:class:`FlashFillSession` models how an end user drives FlashFill on one
column: every :meth:`~FlashFillSession.add_example` re-synthesizes the
program from all examples given so far and re-transforms the whole
column.  The crucial difference from CLX — and the source of the paper's
verification-cost gap — is that the only artefact the user can inspect is
the transformed column itself, so finding the rows that are still wrong
means reading rows (:meth:`~FlashFillSession.failing_rows` models the
oracle the *simulated* user has; a human has to scan).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.flashfill.language import FlashFillProgram
from repro.baselines.flashfill.synthesizer import FlashFillSynthesizer
from repro.patterns.matching import matches
from repro.patterns.pattern import Pattern
from repro.util.errors import ValidationError


class FlashFillSession:
    """One FlashFill run over a column of raw values.

    Args:
        values: The raw column (must be non-empty).
        synthesizer: Optional custom synthesizer.

    Raises:
        ValidationError: If ``values`` is empty.
    """

    def __init__(
        self,
        values: Sequence[str],
        synthesizer: Optional[FlashFillSynthesizer] = None,
    ) -> None:
        self._values: List[str] = [str(value) for value in values]
        if not self._values:
            raise ValidationError("FlashFillSession requires at least one value")
        self._synthesizer = synthesizer or FlashFillSynthesizer()
        self._examples: List[Tuple[str, str]] = []
        self._program: FlashFillProgram = FlashFillProgram(())

    # ------------------------------------------------------------------
    @property
    def values(self) -> List[str]:
        """The raw column values."""
        return list(self._values)

    @property
    def examples(self) -> List[Tuple[str, str]]:
        """Examples provided so far, in order."""
        return list(self._examples)

    @property
    def example_count(self) -> int:
        """Number of examples provided so far."""
        return len(self._examples)

    @property
    def program(self) -> FlashFillProgram:
        """The currently learned program."""
        return self._program

    # ------------------------------------------------------------------
    def add_example(self, raw: str, desired: str) -> FlashFillProgram:
        """Provide one input→output example and re-synthesize.

        Returns the updated program (also stored on the session).
        """
        self._examples.append((raw, desired))
        self._program = self._synthesizer.learn(self._examples)
        return self._program

    def outputs(self) -> List[Optional[str]]:
        """Transformed column under the current program.

        Rows the program cannot handle come back as ``None`` — in real
        FlashFill they would show up as blank or wrong cells the user has
        to spot.
        """
        return self._program.apply_all(self._values)

    def outputs_or_input(self) -> List[str]:
        """Transformed column with unhandled rows passed through unchanged."""
        return [
            output if output is not None else raw
            for raw, output in zip(self._values, self.outputs())
        ]

    # ------------------------------------------------------------------
    def failing_rows(self, expected: Dict[str, str]) -> List[str]:
        """Raw rows whose current output differs from ``expected``.

        Args:
            expected: Oracle mapping from raw value to the desired output
                (what a human user knows implicitly when scanning rows).
        """
        failing = []
        for raw, output in zip(self._values, self.outputs()):
            desired = expected.get(raw, raw)
            if output != desired:
                failing.append(raw)
        return failing

    def failing_rows_against_pattern(self, target: Pattern) -> List[str]:
        """Raw rows whose current output does not match ``target``."""
        failing = []
        for raw, output in zip(self._values, self.outputs()):
            if output is None or not matches(output, target):
                failing.append(raw)
        return failing

    def is_complete(self, expected: Dict[str, str]) -> bool:
        """Whether every row currently transforms to its expected output."""
        return not self.failing_rows(expected)
