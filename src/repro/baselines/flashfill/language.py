"""Program representation for the FlashFill-style baseline.

A :class:`FlashFillProgram` is a list of :class:`ConditionalCase`s.  Each
case guards an atomic transformation plan (the same ``Concat`` of
``Extract``/``ConstStr`` expressions UniFi uses — both FlashFill and
BlinkFill build their traces out of substring extractions and constants)
with the leaf pattern of the example inputs it was learned from.  A case
can optionally also match on the quantifier-generalized form of its
pattern, which is how FlashFill generalizes one example to inputs of the
same shape but different field widths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.dsl.ast import AtomicPlan
from repro.dsl.interpreter import apply_plan
from repro.patterns.generalize import generalize_quantifier
from repro.patterns.matching import match_pattern
from repro.patterns.pattern import Pattern
from repro.util.errors import TransformError


@dataclass(frozen=True)
class ConditionalCase:
    """One learned case: an input pattern guard and its transformation plan.

    Attributes:
        pattern: Exact leaf pattern of the inputs this case was learned
            from.
        plan: The transformation plan applied to matching inputs.
        generalized: The quantifier-generalized form of ``pattern``; used
            as a secondary guard so the case also fires on inputs of the
            same shape with different field widths.
    """

    pattern: Pattern
    plan: AtomicPlan
    generalized: Pattern

    def try_apply(self, value: str, allow_generalized: bool = True) -> Optional[str]:
        """Apply this case to ``value`` if it matches, else return ``None``."""
        token_texts = match_pattern(value, self.pattern)
        if token_texts is None and allow_generalized:
            token_texts = match_pattern(value, self.generalized)
            if token_texts is not None and len(self.generalized) != len(self.pattern):
                # Token indices in the plan refer to the exact pattern; a
                # generalized pattern with merged tokens would misalign
                # them, so only use it when the token count is unchanged.
                token_texts = None
        if token_texts is None:
            return None
        try:
            return apply_plan(self.plan, token_texts)
        except TransformError:
            return None


@dataclass(frozen=True)
class FlashFillProgram:
    """An ordered list of conditional cases (first match wins).

    Attributes:
        cases: Learned cases, most recently learned formats last.
    """

    cases: Tuple[ConditionalCase, ...]

    def __len__(self) -> int:
        return len(self.cases)

    def __iter__(self):
        return iter(self.cases)

    def apply(self, value: str) -> Optional[str]:
        """Transform ``value``; ``None`` when no case applies.

        Exact-pattern matches are preferred over generalized matches so a
        precisely learned format never loses to a looser case.
        """
        for case in self.cases:
            result = case.try_apply(value, allow_generalized=False)
            if result is not None:
                return result
        for case in self.cases:
            result = case.try_apply(value, allow_generalized=True)
            if result is not None:
                return result
        return None

    def apply_all(self, values: Sequence[str]) -> List[Optional[str]]:
        """Transform every value of a column."""
        return [self.apply(value) for value in values]


def make_case(pattern: Pattern, plan: AtomicPlan) -> ConditionalCase:
    """Build a :class:`ConditionalCase` computing its generalized guard."""
    return ConditionalCase(
        pattern=pattern,
        plan=plan,
        generalized=generalize_quantifier(pattern),
    )
