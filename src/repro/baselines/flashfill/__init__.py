"""A FlashFill-style Programming-By-Example baseline.

This is a from-scratch re-implementation of the *interaction model and
synthesis granularity* of FlashFill/BlinkFill as needed by the paper's
comparison: the user supplies input→output examples, the system learns a
program made of conditional cases (one per input format) whose
transformation is a concatenation of token extractions and constants,
and applies it to the whole column.  Crucially — and this is the property
the CLX paper contrasts against — the program is *not* surfaced to the
user: verification happens by reading the transformed rows one by one.
"""

from repro.baselines.flashfill.language import ConditionalCase, FlashFillProgram
from repro.baselines.flashfill.synthesizer import FlashFillSynthesizer
from repro.baselines.flashfill.session import FlashFillSession

__all__ = [
    "ConditionalCase",
    "FlashFillProgram",
    "FlashFillSession",
    "FlashFillSynthesizer",
]
