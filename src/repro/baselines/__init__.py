"""Baseline systems used by the paper's evaluation (Section 7).

* :mod:`repro.baselines.flashfill` — a from-scratch example-driven
  string-transformation synthesizer in the FlashFill/BlinkFill family:
  the user provides input→output examples, the system generalizes them
  into a program conditional on input patterns, and verification happens
  at the *instance* level.
* :mod:`repro.baselines.regex_replace` — the non-PBE "RegexReplace"
  baseline (Trifacta Wrangler's manual regexp replace feature): the user
  writes ordered regexp replace operations by hand.
"""

from repro.baselines.flashfill import FlashFillProgram, FlashFillSession, FlashFillSynthesizer
from repro.baselines.regex_replace import RegexReplaceSession, RegexRule

__all__ = [
    "FlashFillProgram",
    "FlashFillSession",
    "FlashFillSynthesizer",
    "RegexReplaceSession",
    "RegexRule",
]
