"""The RegexReplace baseline (Trifacta Wrangler's manual replace feature).

The paper's third system is not PBE at all: the user hand-writes regexp
``Replace`` operations, one per ill-formatted source format, and the tool
applies them to the column.  :class:`RegexReplaceSession` models that
loop — each :meth:`~RegexReplaceSession.add_rule` is the user typing two
regular expressions (a match pattern and a replacement), which is why the
Step metric of Section 7.4 charges two steps per rule.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.dsl.replace import ReplaceOperation
from repro.patterns.matching import matches
from repro.patterns.pattern import Pattern
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class RegexRule:
    """One hand-written replace rule.

    Attributes:
        regex: Anchored regular expression with capture groups.
        replacement: Replacement template with ``$1``-style references.
    """

    regex: str
    replacement: str

    def as_operation(self) -> ReplaceOperation:
        """View the rule as an executable :class:`~repro.dsl.replace.ReplaceOperation`."""
        return ReplaceOperation(regex=self.regex, replacement=self.replacement)

    def matches(self, value: str) -> bool:
        """Whether this rule applies to ``value``."""
        return re.match(self.regex, value) is not None


class RegexReplaceSession:
    """One RegexReplace run over a column of raw values.

    Rules are applied in the order they were added; the first rule whose
    regex matches a value rewrites it, later rules see the already
    rewritten column state only through subsequent calls (each rule is an
    independent column transform, as in Wrangler).

    Args:
        values: The raw column (must be non-empty).

    Raises:
        ValidationError: If ``values`` is empty.
    """

    def __init__(self, values: Sequence[str]) -> None:
        self._values: List[str] = [str(value) for value in values]
        if not self._values:
            raise ValidationError("RegexReplaceSession requires at least one value")
        self._rules: List[RegexRule] = []

    # ------------------------------------------------------------------
    @property
    def values(self) -> List[str]:
        """The raw column values."""
        return list(self._values)

    @property
    def rules(self) -> List[RegexRule]:
        """Rules added so far, in application order."""
        return list(self._rules)

    @property
    def rule_count(self) -> int:
        """Number of rules added so far."""
        return len(self._rules)

    # ------------------------------------------------------------------
    def add_rule(self, regex: str, replacement: str) -> RegexRule:
        """Add a replace rule (the user typing two regular expressions).

        Raises:
            ValidationError: If the regular expression does not compile.
        """
        try:
            re.compile(regex)
        except re.error as exc:
            raise ValidationError(f"invalid regular expression {regex!r}: {exc}") from exc
        rule = RegexRule(regex=regex, replacement=replacement)
        self._rules.append(rule)
        return rule

    def add_operation(self, operation: ReplaceOperation) -> RegexRule:
        """Add a rule from an existing :class:`~repro.dsl.replace.ReplaceOperation`."""
        return self.add_rule(operation.regex, operation.replacement)

    def outputs(self) -> List[str]:
        """Column after applying every rule in order to each value."""
        results = []
        for value in self._values:
            current = value
            for rule in self._rules:
                operation = rule.as_operation()
                if operation.matches(current):
                    current = operation.apply(current)
            results.append(current)
        return results

    # ------------------------------------------------------------------
    def failing_rows(self, expected: Dict[str, str]) -> List[str]:
        """Raw rows whose current output differs from ``expected``."""
        failing = []
        for raw, output in zip(self._values, self.outputs()):
            if output != expected.get(raw, raw):
                failing.append(raw)
        return failing

    def failing_rows_against_pattern(self, target: Pattern) -> List[str]:
        """Raw rows whose current output does not match ``target``."""
        return [
            raw
            for raw, output in zip(self._values, self.outputs())
            if not matches(output, target)
        ]

    def is_complete(self, expected: Dict[str, str]) -> bool:
        """Whether every row currently transforms to its expected output."""
        return not self.failing_rows(expected)
