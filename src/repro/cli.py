"""Command-line interface for the CLX reproduction.

The CLI exposes the cluster–label–transform loop over CSV files so the
library can be used without writing Python:

``repro-clx profile data.csv --column phone``
    Print the pattern clusters of a column (the Figure 3 view).

``repro-clx transform data.csv --column phone --target-example "734-422-8073"``
    Synthesize a program for the column, print the explained Replace
    operations, and write the transformed CSV (stdout or ``--output``).

``repro-clx suite``
    Print the statistics of the bundled 47-task benchmark suite (Table 6).

Every command is also callable programmatically via :func:`main`, which
takes an ``argv`` list and returns a process exit code — that is how the
test suite drives it.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core.session import CLXSession
from repro.util.errors import CLXError
from repro.util.text import format_table


def _read_column(path: Path, column: str, delimiter: str) -> tuple[List[dict], List[str], str]:
    """Read a CSV file and return (rows, header, resolved column name)."""
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        if reader.fieldnames is None:
            raise CLXError(f"{path} has no header row")
        header = list(reader.fieldnames)
        rows = list(reader)
    if column in header:
        resolved = column
    elif column.isdigit() and int(column) < len(header):
        resolved = header[int(column)]
    else:
        raise CLXError(f"column {column!r} not found; available: {', '.join(header)}")
    return rows, header, resolved


def _command_profile(args: argparse.Namespace) -> int:
    rows, _header, column = _read_column(Path(args.csv), args.column, args.delimiter)
    values = [row[column] or "" for row in rows]
    session = CLXSession(values)
    table = [
        (summary.pattern.notation(), summary.count, ", ".join(summary.samples))
        for summary in session.pattern_summary(max_samples=args.samples)
    ]
    print(format_table(["pattern", "rows", "examples"], table))
    return 0


def _command_transform(args: argparse.Namespace) -> int:
    rows, header, column = _read_column(Path(args.csv), args.column, args.delimiter)
    values = [row[column] or "" for row in rows]
    session = CLXSession(values)

    if args.target_pattern:
        session.label_target_from_notation(args.target_pattern)
    elif args.target_example:
        session.label_target_from_string(args.target_example, generalize=args.generalize)
    else:
        print("error: provide --target-pattern or --target-example", file=sys.stderr)
        return 2

    report = session.transform()
    print("Synthesized Replace operations:", file=sys.stderr)
    for operation in session.explain():
        print(f"  {operation}", file=sys.stderr)
    print(
        f"{report.conforming_count}/{report.row_count} rows match the target; "
        f"{report.flagged_count} flagged for review",
        file=sys.stderr,
    )

    output_column = args.output_column or f"{column}_transformed"
    out_header = header + [output_column]
    destination = Path(args.output) if args.output else None
    handle = destination.open("w", newline="", encoding="utf-8") if destination else sys.stdout
    try:
        writer = csv.DictWriter(handle, fieldnames=out_header, delimiter=args.delimiter)
        writer.writeheader()
        for row, output in zip(rows, report.outputs):
            row = dict(row)
            row[output_column] = output
            writer.writerow(row)
    finally:
        if destination:
            handle.close()
    return 0 if report.flagged_count == 0 else 1


def _command_suite(args: argparse.Namespace) -> int:
    from repro.bench.suite import suite_statistics

    stats = suite_statistics()
    table = [
        (
            row.source,
            row.test_count,
            f"{row.average_size:.1f}",
            f"{row.average_length:.1f}",
            row.max_length,
            ", ".join(row.data_types) if args.verbose else f"{len(row.data_types)} types",
        )
        for row in stats
    ]
    print(format_table(["source", "# tests", "avg size", "avg len", "max len", "data types"], table))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-clx",
        description="CLX pattern profiling and verifiable data transformation",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    profile = subparsers.add_parser("profile", help="print the pattern clusters of a CSV column")
    profile.add_argument("csv", help="input CSV file (with a header row)")
    profile.add_argument("--column", required=True, help="column name or zero-based index")
    profile.add_argument("--delimiter", default=",", help="CSV delimiter (default ',')")
    profile.add_argument("--samples", type=int, default=3, help="sample values per pattern")
    profile.set_defaults(handler=_command_profile)

    transform = subparsers.add_parser("transform", help="normalize a CSV column to a target pattern")
    transform.add_argument("csv", help="input CSV file (with a header row)")
    transform.add_argument("--column", required=True, help="column name or zero-based index")
    transform.add_argument("--delimiter", default=",", help="CSV delimiter (default ',')")
    transform.add_argument("--target-example", help="a value already in the desired format")
    transform.add_argument(
        "--target-pattern", help="explicit target pattern notation, e.g. \"<D>3'-'<D>4\""
    )
    transform.add_argument(
        "--generalize",
        type=int,
        default=0,
        help="refinement rounds applied to the target example's pattern (0-3)",
    )
    transform.add_argument("--output", help="write the transformed CSV here instead of stdout")
    transform.add_argument("--output-column", help="name of the added column (default <column>_transformed)")
    transform.set_defaults(handler=_command_transform)

    suite = subparsers.add_parser("suite", help="print the 47-task benchmark suite statistics")
    suite.add_argument("--verbose", action="store_true", help="list every data type")
    suite.set_defaults(handler=_command_suite)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except CLXError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
