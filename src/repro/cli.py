"""Command-line interface for the CLX reproduction.

The CLI exposes the cluster–label–transform loop over CSV files so the
library can be used without writing Python:

``repro-clx profile data.csv --column phone``
    Print the pattern clusters of a column (the Figure 3 view).  The
    column is profiled in one streaming pass with bounded memory, so
    arbitrarily large CSVs work.

``repro-clx transform data.csv --column phone --target-example "734-422-8073"``
    Synthesize a program for the column, print the explained Replace
    operations, and write the transformed CSV (stdout or ``--output``).

``repro-clx compile data.csv --column phone --target-example "734-422-8073" --output phone.clx.json``
    Synthesize a program and save it as a serializable ``.clx.json``
    artifact instead of transforming anything — the compile-once half.

``repro-clx apply phone.clx.json other.csv --column phone``
    Stream any CSV through a saved artifact without re-profiling or
    re-synthesizing — the apply-anywhere half.  ``--workers N`` fans the
    rows across N processes with ordered results.

``repro-clx suite``
    Print the statistics of the bundled 47-task benchmark suite (Table 6).

Every command is also callable programmatically via :func:`main`, which
takes an ``argv`` list and returns a process exit code — that is how the
test suite drives it.
"""

from __future__ import annotations

import argparse
import csv
import os
import sys
from collections import deque
from pathlib import Path
from typing import Deque, Iterator, List, Optional, Sequence, Tuple

from repro.clustering.incremental import DEFAULT_EXEMPLAR_CAP, IncrementalProfiler
from repro.core.session import CLXSession
from repro.engine.executor import TransformEngine
from repro.util.errors import CLXError
from repro.util.text import format_table


def _resolve_column(header: List[str], column: str) -> str:
    """Resolve a column given by name or zero-based index against the header."""
    if column in header:
        return column
    if column.isdigit() and int(column) < len(header):
        return header[int(column)]
    raise CLXError(f"column {column!r} not found; available: {', '.join(header)}")


def _reject_ragged(row: dict, line_num: int, header: List[str], path: Path) -> None:
    """Refuse rows with more cells than the header (DictReader restkey).

    ``csv.DictReader`` parks surplus cells under the ``None`` restkey;
    left alone they later explode inside ``csv.DictWriter`` as an opaque
    ``ValueError: dict contains fields not in fieldnames``.  Fail fast
    and name the offending row instead.
    """
    extras = row.get(None)
    if extras:
        raise CLXError(
            f"{path} line {line_num}: row has {len(header) + len(extras)} cells "
            f"but the header has {len(header)} columns; fix the row or re-export "
            "the CSV"
        )


def _read_column(path: Path, column: str, delimiter: str) -> tuple[List[dict], List[str], str]:
    """Read a CSV file and return (rows, header, resolved column name)."""
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        if reader.fieldnames is None:
            raise CLXError(f"{path} has no header row")
        header = list(reader.fieldnames)
        rows = []
        for row in reader:
            _reject_ragged(row, reader.line_num, header, path)
            rows.append(row)
    return rows, header, _resolve_column(header, column)


def _stream_column(
    path: Path, column: str, delimiter: str
) -> Tuple[List[str], str, Iterator[str]]:
    """Open a CSV for one-pass reading of a single column.

    Returns ``(header, resolved column name, value iterator)``.  The
    iterator owns the file handle and closes it when exhausted (or
    garbage-collected), so callers can profile arbitrarily large files
    without ever materializing them.
    """
    handle = path.open(newline="", encoding="utf-8")
    try:
        reader = csv.DictReader(handle, delimiter=delimiter)
        if reader.fieldnames is None:
            raise CLXError(f"{path} has no header row")
        header = list(reader.fieldnames)
        resolved = _resolve_column(header, column)
    except Exception:
        handle.close()
        raise

    def values() -> Iterator[str]:
        with handle:
            for row in reader:
                yield row[resolved] or ""

    return header, resolved, values()


def _command_profile(args: argparse.Namespace) -> int:
    if args.samples < 0:
        raise CLXError(f"--samples must be >= 0, got {args.samples}")
    _header, _column, values = _stream_column(Path(args.csv), args.column, args.delimiter)
    profiler = IncrementalProfiler(exemplar_cap=max(args.samples, DEFAULT_EXEMPLAR_CAP))
    session = CLXSession.from_profile(profiler.profile(values))
    table = [
        (summary.pattern.notation(), summary.count, ", ".join(summary.samples))
        for summary in session.pattern_summary(max_samples=args.samples)
    ]
    print(format_table(["pattern", "rows", "examples"], table))
    return 0


def _resolve_output_column(header: List[str], column: str, requested: Optional[str]) -> str:
    """Pick the added column's name, refusing collisions with the header."""
    output_column = requested or f"{column}_transformed"
    if output_column in header:
        raise CLXError(
            f"output column {output_column!r} already exists in the CSV header; "
            "pick a different --output-column"
        )
    return output_column


def _label_session(session: CLXSession, args: argparse.Namespace) -> bool:
    """Label the session's target from the CLI flags (False = usage error)."""
    if args.target_pattern:
        session.label_target_from_notation(args.target_pattern)
    elif args.target_example:
        session.label_target_from_string(args.target_example, generalize=args.generalize)
    else:
        print("error: provide --target-pattern or --target-example", file=sys.stderr)
        return False
    return True


def _command_transform(args: argparse.Namespace) -> int:
    rows, header, column = _read_column(Path(args.csv), args.column, args.delimiter)
    output_column = _resolve_output_column(header, column, args.output_column)
    values = [row[column] or "" for row in rows]
    session = CLXSession(values)
    if not _label_session(session, args):
        return 2

    report = session.transform()
    print("Synthesized Replace operations:", file=sys.stderr)
    for operation in session.explain():
        print(f"  {operation}", file=sys.stderr)
    print(
        f"{report.conforming_count}/{report.row_count} rows match the target; "
        f"{report.flagged_count} flagged for review",
        file=sys.stderr,
    )

    out_header = header + [output_column]
    destination = Path(args.output) if args.output else None
    handle = destination.open("w", newline="", encoding="utf-8") if destination else sys.stdout
    try:
        writer = csv.DictWriter(handle, fieldnames=out_header, delimiter=args.delimiter)
        writer.writeheader()
        for row, output in zip(rows, report.outputs):
            row = dict(row)
            row[output_column] = output
            writer.writerow(row)
    finally:
        if destination:
            handle.close()
    return 0 if report.flagged_count == 0 else 1


def _command_compile(args: argparse.Namespace) -> int:
    # Streaming path: profile the column with bounded memory, then open
    # the session on the profile — the raw CSV is never materialized.
    _header, column, values = _stream_column(Path(args.csv), args.column, args.delimiter)
    profile = IncrementalProfiler().profile(values)
    session = CLXSession.from_profile(profile)
    if not _label_session(session, args):
        return 2

    compiled = session.compile(
        metadata={
            "column": column,
            "source_csv": Path(args.csv).name,
            "source_rows": profile.row_count,
        }
    )
    print("Synthesized Replace operations:", file=sys.stderr)
    for operation in session.explain():
        print(f"  {operation}", file=sys.stderr)

    text = compiled.dumps(indent=2)
    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
        print(
            f"wrote {len(compiled)}-branch program for target "
            f"{compiled.target.notation()} to {args.output}",
            file=sys.stderr,
        )
    else:
        print(text)
    return 0


def _command_apply(args: argparse.Namespace) -> int:
    if args.workers < 1:
        raise CLXError(f"--workers must be >= 1, got {args.workers}")
    engine = TransformEngine.loads(Path(args.program).read_text(encoding="utf-8"))
    column = args.column or engine.compiled.metadata.get("column")
    if not column:
        raise CLXError("the artifact records no source column; provide --column")

    source = Path(args.csv)
    destination = Path(args.output) if args.output else None
    flagged = 0
    total = 0
    with source.open(newline="", encoding="utf-8") as in_handle:
        reader = csv.DictReader(in_handle, delimiter=args.delimiter)
        if reader.fieldnames is None:
            raise CLXError(f"{source} has no header row")
        header = list(reader.fieldnames)
        column = _resolve_column(header, column)
        if args.in_place:
            output_column = column
            out_header = header
        else:
            output_column = _resolve_output_column(header, column, args.output_column)
            out_header = header + [output_column]

        out_handle = (
            destination.open("w", newline="", encoding="utf-8") if destination else sys.stdout
        )
        executor = None
        try:
            writer = csv.DictWriter(out_handle, fieldnames=out_header, delimiter=args.delimiter)
            writer.writeheader()
            # Stream row by row: tee the reader into (row, value) pairs and
            # let the executor pull values in chunks so only a bounded
            # number of rows are ever buffered.
            pending: Deque[dict] = deque()

            def _values() -> Iterator[str]:
                for row in reader:
                    _reject_ragged(row, reader.line_num, header, source)
                    pending.append(row)
                    yield row[column] or ""

            if args.workers > 1:
                from repro.engine.parallel import ShardedExecutor

                executor = ShardedExecutor(
                    engine, workers=args.workers, chunk_size=args.chunk_size
                )
                outcomes = executor.run_iter(_values())
            else:
                outcomes = engine.run_iter(_values(), chunk_size=args.chunk_size)

            for outcome in outcomes:
                row = pending.popleft()
                row[output_column] = outcome.output
                writer.writerow(row)
                total += 1
                if not outcome.matched:
                    flagged += 1
        finally:
            if executor is not None:
                executor.close()
            if destination:
                out_handle.close()

    print(
        f"applied {len(engine.compiled)}-branch program to {total} rows; "
        f"{flagged} flagged for review",
        file=sys.stderr,
    )
    return 0 if flagged == 0 else 1


def _command_suite(args: argparse.Namespace) -> int:
    from repro.bench.suite import suite_statistics

    stats = suite_statistics()
    table = [
        (
            row.source,
            row.test_count,
            f"{row.average_size:.1f}",
            f"{row.average_length:.1f}",
            row.max_length,
            ", ".join(row.data_types) if args.verbose else f"{len(row.data_types)} types",
        )
        for row in stats
    ]
    print(format_table(["source", "# tests", "avg size", "avg len", "max len", "data types"], table))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-clx",
        description="CLX pattern profiling and verifiable data transformation",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    profile = subparsers.add_parser("profile", help="print the pattern clusters of a CSV column")
    profile.add_argument("csv", help="input CSV file (with a header row)")
    profile.add_argument("--column", required=True, help="column name or zero-based index")
    profile.add_argument("--delimiter", default=",", help="CSV delimiter (default ',')")
    profile.add_argument(
        "--samples", type=int, default=3, help="sample values per pattern (>= 0)"
    )
    profile.set_defaults(handler=_command_profile)

    transform = subparsers.add_parser("transform", help="normalize a CSV column to a target pattern")
    transform.add_argument("csv", help="input CSV file (with a header row)")
    transform.add_argument("--column", required=True, help="column name or zero-based index")
    transform.add_argument("--delimiter", default=",", help="CSV delimiter (default ',')")
    transform.add_argument("--target-example", help="a value already in the desired format")
    transform.add_argument(
        "--target-pattern", help="explicit target pattern notation, e.g. \"<D>3'-'<D>4\""
    )
    transform.add_argument(
        "--generalize",
        type=int,
        default=0,
        choices=range(0, 4),
        help="refinement rounds applied to the target example's pattern (0-3)",
    )
    transform.add_argument("--output", help="write the transformed CSV here instead of stdout")
    transform.add_argument("--output-column", help="name of the added column (default <column>_transformed)")
    transform.set_defaults(handler=_command_transform)

    compile_cmd = subparsers.add_parser(
        "compile",
        help="synthesize a program and save it as a .clx.json artifact",
    )
    compile_cmd.add_argument("csv", help="input CSV file (with a header row)")
    compile_cmd.add_argument("--column", required=True, help="column name or zero-based index")
    compile_cmd.add_argument("--delimiter", default=",", help="CSV delimiter (default ',')")
    compile_cmd.add_argument("--target-example", help="a value already in the desired format")
    compile_cmd.add_argument(
        "--target-pattern", help="explicit target pattern notation, e.g. \"<D>3'-'<D>4\""
    )
    compile_cmd.add_argument(
        "--generalize",
        type=int,
        default=0,
        choices=range(0, 4),
        help="refinement rounds applied to the target example's pattern (0-3)",
    )
    compile_cmd.add_argument(
        "--output", help="write the .clx.json artifact here instead of stdout"
    )
    compile_cmd.set_defaults(handler=_command_compile)

    apply_cmd = subparsers.add_parser(
        "apply",
        help="stream a CSV through a saved .clx.json artifact (no re-profiling)",
    )
    apply_cmd.add_argument("program", help="a .clx.json artifact written by 'compile'")
    apply_cmd.add_argument("csv", help="input CSV file (with a header row)")
    apply_cmd.add_argument(
        "--column",
        help="column to transform (default: the column recorded in the artifact)",
    )
    apply_cmd.add_argument("--delimiter", default=",", help="CSV delimiter (default ',')")
    apply_cmd.add_argument("--output", help="write the transformed CSV here instead of stdout")
    destination_group = apply_cmd.add_mutually_exclusive_group()
    destination_group.add_argument(
        "--output-column", help="name of the added column (default <column>_transformed)"
    )
    destination_group.add_argument(
        "--in-place",
        action="store_true",
        help="overwrite the source column instead of adding a new one",
    )
    apply_cmd.add_argument(
        "--chunk-size",
        type=int,
        default=4096,
        help="rows buffered at a time while streaming (default 4096)",
    )
    apply_cmd.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan rows across this many worker processes (default 1, single-process)",
    )
    apply_cmd.set_defaults(handler=_command_apply)

    suite = subparsers.add_parser("suite", help="print the 47-task benchmark suite statistics")
    suite.add_argument("--verbose", action="store_true", help="list every data type")
    suite.set_defaults(handler=_command_suite)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except CLXError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # The reader went away (e.g. `repro-clx apply ... | head`).  Point
        # stdout at /dev/null so the interpreter's exit-time flush cannot
        # raise again, and exit with the conventional 128 + SIGPIPE code.
        try:
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
        except (OSError, ValueError, AttributeError):
            pass
        return 141


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
