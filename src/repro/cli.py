"""Command-line interface for the CLX reproduction.

The CLI exposes the cluster–label–transform loop over CSV files so the
library can be used without writing Python:

``repro-clx profile data.csv --column phone``
    Print the pattern clusters of a column (the Figure 3 view).  The
    column is profiled in one streaming pass with bounded memory, so
    arbitrarily large CSVs work.  Inputs may be several paths, globs
    (``'data/part-*.csv'``), or directories — a partitioned dataset
    profiles as one column, CSV and JSONL parts alike.

``repro-clx transform data.csv --column phone --target-example "734-422-8073"``
    Synthesize a program for the column, print the explained Replace
    operations, and write the transformed CSV (stdout or ``--output``).

``repro-clx compile data.csv --column phone --target-example "734-422-8073" --output phone.clx.json``
    Synthesize a program and save it as a serializable ``.clx.json``
    artifact instead of transforming anything — the compile-once half.

``repro-clx apply phone.clx.json other.csv --column phone``
    Stream any CSV through a saved artifact without re-profiling or
    re-synthesizing — the apply-anywhere half.  Several artifacts apply
    to several columns in the same single pass (``apply a.clx.json
    b.clx.json table.csv --column one --column two``); ``--workers N``
    fans raw CSV chunks across N processes that parse, transform, and
    re-encode worker-side, so the parent only splices ordered encoded
    chunks into the sink; ``--format jsonl`` emits JSON Lines through
    the same streaming writer.  The input may be a glob or directory
    (plus extra ``--input`` paths) mixing CSV and JSONL partitions
    freely — every part is parsed worker-side in its own format, and
    whole parts (byte-range shards of large ones) stream through the
    pool *concurrently*, so small-file latencies overlap.  Partitions
    either splice into one sink in stable order, or — with
    ``--output-dir`` — write one output per partition, preserving
    partition names (final extension follows the sink format).  File
    sinks are crash-safe (same-directory temp + atomic rename), and
    ``--output-dir`` runs keep a ``.clx-apply.json`` manifest so
    ``--resume`` skips already-complete partitions.  ``--on-error
    quarantine --quarantine-dir DIR`` diverts bad records (and, with
    ``--max-retries``/``--shard-timeout``, poison shards) to
    per-partition JSONL quarantine files instead of aborting; exit
    codes: 0 clean, 1 rows flagged for review, 2 error, 3 records
    quarantined.

``repro-clx check phone.clx.json [--json] [--fail-on warn]``
    Statically analyze saved artifacts *before* trusting them with a
    blind apply: dead dispatch arms (subsumed or shadowed branches),
    order-dependent overlaps, ReDoS-prone regexes (structural scan plus
    a bounded empirical probe), degenerate plans and guards, the
    output-language flow verdicts, and — with ``--profile data.csv
    --column C`` — profiled clusters no branch matches.  Several
    artifacts are also checked for cross-artifact conflicts and static
    pipeline composition.  Findings carry stable rule ids (``CLX001``…);
    the exit code is 1 when any finding reaches ``--fail-on`` (default
    ``error``), 0 otherwise.  With ``--cache-dir DIR`` an artifact may
    be named by its registry fingerprint prefix (the ``fingerprint``
    column of ``artifacts list``) instead of a file path.

``repro-clx verify phone.clx.json [--json] [--fail-on warn]``
    The flow verdicts alone, with one verdict line per artifact:
    ``verified`` means every live transforming branch provably emits
    only target-shaped values (rules CLX015/CLX016), so applying the
    artifact never produces a malformed value it didn't already
    receive.  Several artifacts are additionally checked as a pipeline
    (CLX019–CLX021: broken, leaky, or re-transforming chains).  Accepts
    registry fingerprint prefixes with ``--cache-dir`` like ``check``.

``repro-clx artifacts list --cache-dir DIR`` / ``artifacts gc``
    Inspect and garbage-collect a compile cache through its
    ``registry.json`` manifest: ``list`` shows every compiled artifact
    (column fingerprint, target, stats, lint summary, and the
    ``verified`` proof bit — ``stale`` when the row was stamped by an
    older analyzer ruleset; ``--json`` for machines), ``gc``
    prunes dangling manifest rows and unreferenced artifact files — and
    with ``--keep-days N`` also evicts artifacts whose last use (cache
    hits stamp ``last_used_at``) is older than N days, while
    ``--max-bytes N`` evicts least-recently-used artifacts until the
    survivors fit an N-byte budget.

``repro-clx suite``
    Print the statistics of the bundled 47-task benchmark suite (Table 6).

Every command is also callable programmatically via :func:`main`, which
takes an ``argv`` list and returns a process exit code — that is how the
test suite drives it.
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from repro.dataset.dataset import Dataset
    from repro.engine.cache import ArtifactCache
    from repro.engine.compiled import CompiledProgram

from repro.clustering.incremental import DEFAULT_EXEMPLAR_CAP, IncrementalProfiler
from repro.core.session import CLXSession
from repro.engine.compiled import DEFAULT_MEMO_SIZE
from repro.engine.executor import TransformEngine
from repro.util.csvio import resolve_column
from repro.util.errors import CLXError
from repro.util.text import format_table
from repro.util.validate import (
    validated_adaptive_target,
    validated_chunk_size,
    validated_memo_size,
    validated_workers,
)


# Column addressing (name or zero-based index) resolves through the
# shared helper so the CLI, profiler, and table executor agree.
_resolve_column = resolve_column


def _reject_ragged(row: dict, line_num: int, header: List[str], path: Path) -> None:
    """Refuse rows with more cells than the header (DictReader restkey).

    ``csv.DictReader`` parks surplus cells under the ``None`` restkey;
    left alone they later explode inside ``csv.DictWriter`` as an opaque
    ``ValueError: dict contains fields not in fieldnames``.  Fail fast
    and name the offending row instead.
    """
    extras = row.get(None)
    if extras:
        raise CLXError(
            f"{path} line {line_num}: row has {len(header) + len(extras)} cells "
            f"but the header has {len(header)} columns; fix the row or re-export "
            "the CSV"
        )


def _read_column(path: Path, column: str, delimiter: str) -> tuple[List[dict], List[str], str]:
    """Read a CSV file and return (rows, header, resolved column name)."""
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        if reader.fieldnames is None:
            raise CLXError(f"{path} has no header row")
        header = list(reader.fieldnames)
        rows = []
        for row in reader:
            _reject_ragged(row, reader.line_num, header, path)
            rows.append(row)
    return rows, header, _resolve_column(header, column)


def _dataset_column_name(dataset: "Dataset", column: str, delimiter: str) -> str:
    """The resolved column name recorded on artifacts, per the dataset.

    Resolved against the first part whose backend exposes column names
    (a CSV header, a parquet schema) so a zero-based index becomes a
    name; an all-JSONL dataset addresses keys by name already.
    """
    from repro.dataset.backends import backend_by_name

    for part in dataset.parts:
        names = backend_by_name(part.format).column_names(part, delimiter)
        if names is not None:
            return _resolve_column(names, column)
    return str(column)


def _command_profile(args: argparse.Namespace) -> int:
    if args.samples < 0:
        raise CLXError(f"--samples must be >= 0, got {args.samples}")
    workers = validated_workers(args.workers, "--workers")
    profiler = IncrementalProfiler(exemplar_cap=max(args.samples, DEFAULT_EXEMPLAR_CAP))
    # One shard source per partition (byte ranges within large parts),
    # merged via the associative profile reduce; with one worker the
    # same dataset streams serially in process, constant memory.
    from repro.clustering.parallel import ParallelProfiler
    from repro.dataset import Dataset

    dataset = Dataset.resolve(args.inputs, assume_csv=args.assume_csv)
    parallel = ParallelProfiler(profiler=profiler, workers=workers)
    profile = parallel.profile_dataset(dataset, args.column, delimiter=args.delimiter)
    session = CLXSession.from_profile(profile)
    table = [
        (summary.pattern.notation(), summary.count, ", ".join(summary.samples))
        for summary in session.pattern_summary(max_samples=args.samples)
    ]
    print(format_table(["pattern", "rows", "examples"], table))
    return 0


def _resolve_output_column(header: List[str], column: str, requested: Optional[str]) -> str:
    """Pick the added column's name, refusing collisions with the header."""
    output_column = requested or f"{column}_transformed"
    if output_column in header:
        raise CLXError(
            f"output column {output_column!r} already exists in the CSV header; "
            "pick a different --output-column"
        )
    return output_column


def _label_session(session: CLXSession, args: argparse.Namespace) -> bool:
    """Label the session's target from the CLI flags (False = usage error)."""
    if args.target_pattern:
        session.label_target_from_notation(args.target_pattern)
    elif args.target_example:
        session.label_target_from_string(args.target_example, generalize=args.generalize)
    else:
        print("error: provide --target-pattern or --target-example", file=sys.stderr)
        return False
    return True


def _command_transform(args: argparse.Namespace) -> int:
    rows, header, column = _read_column(Path(args.csv), args.column, args.delimiter)
    output_column = _resolve_output_column(header, column, args.output_column)
    values = [row[column] or "" for row in rows]
    session = CLXSession(values)
    if not _label_session(session, args):
        return 2

    report = session.transform()
    print("Synthesized Replace operations:", file=sys.stderr)
    for operation in session.explain():
        print(f"  {operation}", file=sys.stderr)
    print(
        f"{report.conforming_count}/{report.row_count} rows match the target; "
        f"{report.flagged_count} flagged for review",
        file=sys.stderr,
    )

    out_header = header + [output_column]
    destination = Path(args.output) if args.output else None
    handle = destination.open("w", newline="", encoding="utf-8") if destination else sys.stdout
    try:
        writer = csv.DictWriter(handle, fieldnames=out_header, delimiter=args.delimiter)
        writer.writeheader()
        for row, output in zip(rows, report.outputs):
            row = dict(row)
            row[output_column] = output
            writer.writerow(row)
    finally:
        if destination:
            handle.close()
    return 0 if report.flagged_count == 0 else 1


def _command_compile(args: argparse.Namespace) -> int:
    if not (args.target_pattern or args.target_example):
        print("error: provide --target-pattern or --target-example", file=sys.stderr)
        return 2
    # Streaming path: profile the column with bounded memory, then open
    # the session on the profile — the raw data is never materialized.
    # Inputs resolve as a dataset, so globs and partitioned columns
    # compile exactly like a single CSV.
    from repro.dataset import Dataset

    dataset = Dataset.resolve(args.inputs, assume_csv=args.assume_csv)
    dataset.check_column(args.column, args.delimiter)
    column = _dataset_column_name(dataset, args.column, args.delimiter)
    profile = IncrementalProfiler().profile(
        dataset.iter_values(args.column, args.delimiter)
    )

    # Content-addressed artifact cache: same column distribution + same
    # target + same flags = same program, so a hit skips synthesis.
    # Hits resolve through the registry manifest, so separate sessions
    # (and hosts sharing the directory) discover each other's programs.
    cache: Optional["ArtifactCache"] = None
    key: Optional[str] = None
    compiled: Optional["CompiledProgram"] = None
    target_spec = ""
    flags: Dict[str, Any] = {}
    if args.cache_dir:
        from repro.engine.cache import ArtifactCache, cache_key

        cache = ArtifactCache(args.cache_dir)
        if args.target_pattern:
            target_spec, flags = f"pattern:{args.target_pattern}", {}
        else:
            target_spec, flags = (
                f"example:{args.target_example}",
                {"generalize": args.generalize},
            )
        # The column name is part of the key: the artifact's metadata
        # records it, and a later `apply` resolves the column from that
        # metadata — a hit across identically-distributed but
        # differently-named columns would silently transform the wrong
        # column.
        flags["column"] = column
        key = cache_key(profile.fingerprint(), target_spec, flags)
        compiled = cache.load_registered(key)

    cache_hit = compiled is not None
    if compiled is None:
        session = CLXSession.from_profile(profile)
        if not _label_session(session, args):
            return 2
        compiled = session.compile(
            metadata={
                "column": column,
                "source_csv": dataset.describe(),
                "source_rows": profile.row_count,
            }
        )

    # Lint the artifact before it is cached or written: dead arms,
    # order-dependent overlaps, ReDoS-prone regexes, flow verdicts, and
    # clusters of this very profile the program does not cover.
    # Warnings go to stderr; --strict refuses to emit an artifact with
    # any of them — in particular an unverifiable one.
    from repro.analysis import RULESET_VERSION, Severity, analyze_program, is_verified

    artifact_name = Path(args.output).name if args.output else "<compile>"
    analysis = analyze_program(
        compiled, name=artifact_name, hierarchy=profile.to_hierarchy()
    )
    verified = is_verified(analysis.findings)
    flagged = analysis.at_least(Severity.WARN)
    if flagged:
        print("analysis findings:", file=sys.stderr)
        for item in flagged:
            print(f"  {item.render()}", file=sys.stderr)
    if args.strict and not verified:
        print(
            "error: --strict compile refused: the artifact is not verifiable — "
            "some live branch may emit a value outside the target (CLX015/"
            "CLX016, see above); no artifact written",
            file=sys.stderr,
        )
        return 1
    if args.strict and flagged:
        print(
            f"error: --strict compile refused: {len(flagged)} finding(s) at "
            "warn severity or above (see above); no artifact written",
            file=sys.stderr,
        )
        return 1

    if cache_hit:
        assert cache is not None and key is not None
        print(
            f"cache hit: reusing artifact {cache.path(key)} (no synthesis)",
            file=sys.stderr,
        )
    elif cache is not None:
        assert key is not None
        # The manifest row carries the severity counts plus the flow
        # verdict and the ruleset version that produced them, so
        # `artifacts list` can surface the proof — and flag summaries
        # stamped by an older analyzer as stale.
        analysis_summary = analysis.summary()
        analysis_summary["verified"] = int(verified)
        analysis_summary["rules"] = RULESET_VERSION
        stored = cache.store_registered(
            key,
            compiled,
            fingerprint=profile.fingerprint(),
            target=target_spec,
            flags=flags,
            source=dataset.describe(),
            stats={"rows": profile.row_count, "clusters": profile.cluster_count},
            analysis=analysis_summary,
        )
        print(f"cached artifact at {stored}", file=sys.stderr)

    from repro.dsl.explain import explain_program

    print("Synthesized Replace operations:", file=sys.stderr)
    for operation in explain_program(compiled.program):
        print(f"  {operation}", file=sys.stderr)

    text = compiled.dumps(indent=2)
    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
        print(
            f"wrote {len(compiled)}-branch program for target "
            f"{compiled.target.notation()} to {args.output}",
            file=sys.stderr,
        )
    else:
        print(text)
    return 0


def _paired_apply_columns(
    engines: List[TransformEngine], requested: List[str], header: List[str]
) -> List[str]:
    """Resolve one input column per artifact, by flag or artifact metadata."""
    if requested and len(requested) != len(engines):
        raise CLXError(
            f"{len(engines)} program(s) but {len(requested)} --column flag(s); "
            "give one --column per program (in order) or none to use the "
            "columns recorded in the artifacts"
        )
    columns: List[str] = []
    for position, engine in enumerate(engines):
        if requested:
            column = requested[position]
        else:
            column = engine.compiled.metadata.get("column")
            if not column:
                raise CLXError(
                    f"artifact #{position + 1} records no source column; provide --column"
                )
        column = _resolve_column(header, column)
        if column in columns:
            raise CLXError(f"column {column!r} is targeted by more than one program")
        columns.append(column)
    return columns


def _command_apply(args: argparse.Namespace) -> int:
    workers = validated_workers(args.workers, "--workers")
    chunk_size = validated_chunk_size(args.chunk_size, "--chunk-size")
    memo_size = validated_memo_size(args.memo_size, "--memo-size")
    adaptive_target_ms = validated_adaptive_target(
        args.adaptive_chunks, "--adaptive-chunks"
    )
    if args.output_column and len(args.program) > 1:
        raise CLXError(
            "--output-column is ambiguous with multiple programs; "
            "use --in-place or the default <column>_transformed names"
        )
    if args.output and args.output_dir:
        raise CLXError("--output and --output-dir are mutually exclusive")
    if args.on_error == "quarantine" and not args.quarantine_dir:
        raise CLXError("--on-error quarantine needs --quarantine-dir")
    if args.quarantine_dir and args.on_error != "quarantine":
        raise CLXError("--quarantine-dir is only meaningful with --on-error quarantine")
    if args.resume and not args.output_dir:
        raise CLXError("--resume needs --output-dir (it reads the run manifest there)")
    engines = [
        TransformEngine.loads(
            Path(program).read_text(encoding="utf-8"), memo_size=memo_size
        )
        for program in args.program
    ]

    # Cheap pre-flight lint: conflicting artifacts abort before any row
    # streams; dead dispatch arms are only a hint (the artifact still
    # works, it just carries baggage), so they go to stderr.  No regex
    # probes here — apply startup must stay fast.
    from repro.analysis import check_composition, check_conflicts, reachability_only

    if not args.column:
        # Explicit --column flags override artifact metadata, so the
        # metadata-level conflict and composition checks only apply
        # without them (the resolved-column duplicate check below still
        # guards both paths).
        named_programs = [
            (path, engine.compiled) for path, engine in zip(args.program, engines)
        ]
        preflight = check_conflicts(named_programs)
        conflicts = [item for item in preflight if item.rule_id == "CLX013"]
        if conflicts:
            raise CLXError(
                "; ".join(item.message for item in conflicts)
                + " (run 'repro-clx check' on these artifacts for details)"
            )
        for item in preflight:
            if item.rule_id != "CLX013":
                print(f"warning: {item.render()}", file=sys.stderr)
        if len(named_programs) > 1:
            # Static pipeline composition: an artifact reading another's
            # <col>_transformed output forms a chain.  A provably broken
            # chain (CLX019: nothing the producer emits can ever match)
            # aborts before any row streams; leaks and re-transforms are
            # warnings — data still flows, just not the way intended.
            composition = check_composition(named_programs)
            broken = [item for item in composition if item.rule_id == "CLX019"]
            if broken:
                raise CLXError(
                    "; ".join(item.message for item in broken)
                    + " (run 'repro-clx verify' on these artifacts for details)"
                )
            for item in composition:
                print(f"warning: {item.render()}", file=sys.stderr)
    for path, engine in zip(args.program, engines):
        for item in reachability_only(engine.compiled, path):
            print(f"warning: {item.render()}", file=sys.stderr)

    from repro.dataset import Dataset
    from repro.engine.parallel import ShardedTableExecutor, apply_dataset

    dataset = Dataset.resolve(
        [args.csv] + (args.input or []), assume_csv=args.assume_csv
    )

    # The first part defines the dataset field order (CSV header or the
    # keys of the first JSONL object); the executor reconciles every
    # further part against it, so drifted partitions fail loudly
    # instead of splicing mismatched columns into one sink.  Quarantine
    # mode relaxes the pre-flight key scan: a malformed JSONL line must
    # end up quarantined by the apply pass, not abort the run before it
    # starts.
    header = dataset.header(args.delimiter, strict=args.on_error != "quarantine")
    columns = _paired_apply_columns(engines, args.column or [], header)
    if args.in_place:
        output_columns = {column: column for column in columns}
    else:
        output_columns = {
            column: _resolve_output_column(
                header, column, args.output_column if len(columns) == 1 else None
            )
            for column in columns
        }

    from repro.util.pools import FaultPolicy

    fault_policy = FaultPolicy(
        max_retries=args.max_retries, shard_timeout=args.shard_timeout
    )
    with ShardedTableExecutor(
        dict(zip(columns, engines)),
        header,
        output_columns=output_columns,
        out_format=args.format,
        delimiter=args.delimiter,
        source=str(dataset.parts[0].path),
        workers=workers,
        chunk_size=chunk_size,
        on_error=args.on_error,
        fault_policy=fault_policy,
        adaptive_target_ms=adaptive_target_ms,
    ) as executor:
        shard_bytes = validated_chunk_size(args.shard_bytes, "--shard-bytes")
        if args.output_dir:
            result = apply_dataset(
                executor, dataset, output_dir=Path(args.output_dir),
                shard_bytes=shard_bytes,
                quarantine_dir=args.quarantine_dir,
                resume=args.resume,
            )
            if result.skipped_parts:
                print(
                    f"resume: skipped {result.skipped_parts} already-complete "
                    "partition(s) recorded in the run manifest",
                    file=sys.stderr,
                )
            print(
                f"wrote {len(result.outputs)} partition(s) to {args.output_dir}",
                file=sys.stderr,
            )
        elif args.output:
            result = apply_dataset(
                executor, dataset, output=Path(args.output), shard_bytes=shard_bytes,
                quarantine_dir=args.quarantine_dir,
            )
        else:
            result = apply_dataset(
                executor, dataset, stream=sys.stdout, shard_bytes=shard_bytes,
                quarantine_dir=args.quarantine_dir,
            )

    branches = sum(len(engine.compiled) for engine in engines)
    print(
        f"applied {branches}-branch program{'s' if len(engines) > 1 else ''} "
        f"to {result.rows} rows; {result.flagged} flagged for review",
        file=sys.stderr,
    )
    if result.quarantined:
        print(
            f"quarantined {result.quarantined} record(s) across "
            f"{len(result.quarantine_files)} partition(s) into {args.quarantine_dir}",
            file=sys.stderr,
        )
        if result.hint:
            print(f"hint: {result.hint}", file=sys.stderr)
        return 3
    return 0 if result.flagged == 0 else 1


def _load_artifact(path_str: str) -> "CompiledProgram":
    """Load one ``.clx.json`` artifact as a CompiledProgram."""
    from repro.engine.compiled import CompiledProgram

    return CompiledProgram.loads(Path(path_str).read_text(encoding="utf-8"))


def _resolve_artifacts(
    specs: Sequence[str], cache_dir: Optional[str]
) -> List[Tuple[str, "CompiledProgram"]]:
    """Resolve artifact specs — file paths or registry fingerprint prefixes.

    A spec naming an existing file loads as a ``.clx.json`` artifact.
    Anything else is treated (with ``--cache-dir``) as a prefix of a
    column fingerprint from the cache's registry manifest — the form
    ``artifacts list`` prints — and must match exactly one row; the
    resolved artifact is then named after the row's artifact file, so
    findings point at something that exists on disk.
    """
    named: List[Tuple[str, "CompiledProgram"]] = []
    registry = None
    for spec in specs:
        path = Path(spec)
        if path.is_file():
            named.append((spec, _load_artifact(spec)))
            continue
        if not cache_dir:
            raise CLXError(
                f"artifact {spec!r} is not a file; to address a cached artifact "
                "by registry fingerprint prefix, pass --cache-dir"
            )
        if registry is None:
            from repro.engine.cache import ArtifactRegistry

            registry = ArtifactRegistry(cache_dir)
        matches = registry.lookup_fingerprint_prefix(spec)
        if not matches:
            raise CLXError(
                f"no registry row in {cache_dir} matches fingerprint prefix "
                f"{spec!r} (see 'repro-clx artifacts list --cache-dir {cache_dir}')"
            )
        if len(matches) > 1:
            listing = ", ".join(
                f"{entry.fingerprint[:12]} -> {entry.artifact or '?'}"
                for entry in matches[:5]
            )
            raise CLXError(
                f"fingerprint prefix {spec!r} is ambiguous in {cache_dir} "
                f"({len(matches)} rows: {listing}); use a longer prefix or "
                "the artifact path"
            )
        entry = matches[0]
        if not entry.artifact:
            raise CLXError(
                f"registry row {entry.fingerprint[:12]} records no artifact file"
            )
        named.append((entry.artifact, _load_artifact(str(Path(cache_dir) / entry.artifact))))
    return named


def _command_check(args: argparse.Namespace) -> int:
    from repro.analysis import Severity, analyze_artifacts, render_json, render_text

    fail_on = Severity.parse(args.fail_on)
    if args.profile and not args.column:
        raise CLXError("--profile requires --column (the column to profile)")
    if args.column and not args.profile:
        raise CLXError("--column only applies together with --profile")

    named = _resolve_artifacts(args.artifact, args.cache_dir)

    hierarchies = None
    if args.profile:
        from repro.dataset import Dataset

        dataset = Dataset.resolve(args.profile)
        dataset.check_column(args.column, args.delimiter)
        profile = IncrementalProfiler().profile(
            dataset.iter_values(args.column, args.delimiter)
        )
        hierarchy = profile.to_hierarchy()
        hierarchies = {name: hierarchy for name, _ in named}

    report = analyze_artifacts(
        named, probe=not args.no_probe, hierarchies=hierarchies
    )
    if args.json:
        print(render_json(report))
    else:
        print(render_text(report))
    return report.exit_code(fail_on)


def _command_verify(args: argparse.Namespace) -> int:
    from repro.analysis import (
        Severity,
        render_verify_json,
        render_verify_text,
        verify_artifacts,
    )

    fail_on = Severity.parse(args.fail_on)
    named = _resolve_artifacts(args.artifact, args.cache_dir)
    report, verified = verify_artifacts(named)
    if args.json:
        print(render_verify_json(report, verified))
    else:
        print(render_verify_text(report, verified))
    return report.exit_code(fail_on)


def _analysis_cell(analysis: dict) -> str:
    """Compact lint status for the artifacts table, e.g. ``1E/2W``."""
    if not analysis:
        return "-"
    errors = analysis.get("error", 0)
    warns = analysis.get("warn", 0)
    infos = analysis.get("info", 0)
    if not (errors or warns or infos):
        return "clean"
    parts = [
        f"{count}{letter}"
        for count, letter in ((errors, "E"), (warns, "W"), (infos, "I"))
        if count
    ]
    return "/".join(parts)


def _verified_cell(analysis: dict) -> str:
    """Flow-verdict status for the artifacts table.

    ``-`` for pre-analyzer rows, ``stale`` when the summary was stamped
    by a different ruleset than the current analyzer (re-compile to
    refresh the proof), otherwise the recorded verdict.
    """
    from repro.analysis import RULESET_VERSION

    if not analysis:
        return "-"
    if analysis.get("rules") != RULESET_VERSION:
        return "stale"
    return "yes" if analysis.get("verified") else "no"


def _command_artifacts(args: argparse.Namespace) -> int:
    from repro.engine.cache import ArtifactRegistry

    registry = ArtifactRegistry(args.cache_dir)
    if args.action != "gc" and args.keep_days is not None:
        raise CLXError("--keep-days only applies to 'artifacts gc'")
    if args.action != "gc" and args.max_bytes is not None:
        raise CLXError("--max-bytes only applies to 'artifacts gc'")
    if args.action == "gc":
        if args.keep_days is not None and args.keep_days < 0:
            raise CLXError(f"--keep-days must be >= 0, got {args.keep_days}")
        if args.max_bytes is not None and args.max_bytes < 0:
            raise CLXError(f"--max-bytes must be >= 0, got {args.max_bytes}")
        report = registry.gc(keep_days=args.keep_days, max_bytes=args.max_bytes)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(
                f"removed {len(report['removed_entries'])} manifest row(s) and "
                f"{len(report['removed_files'])} unreferenced artifact file(s)"
            )
        return 0

    entries = registry.entries()
    if args.json:
        print(json.dumps([entry.to_dict() for entry in entries], indent=2, sort_keys=True))
        return 0
    table = [
        (
            entry.fingerprint[:12],
            entry.target,
            entry.flags.get("column", ""),
            entry.stats.get("rows", ""),
            _analysis_cell(entry.analysis),
            _verified_cell(entry.analysis),
            entry.source,
            entry.artifact,
        )
        for entry in entries
    ]
    print(
        format_table(
            [
                "fingerprint",
                "target",
                "column",
                "rows",
                "lint",
                "verified",
                "source",
                "artifact",
            ],
            table,
        )
    )
    return 0


def _command_suite(args: argparse.Namespace) -> int:
    from repro.bench.suite import suite_statistics

    stats = suite_statistics()
    table = [
        (
            row.source,
            row.test_count,
            f"{row.average_size:.1f}",
            f"{row.average_length:.1f}",
            row.max_length,
            ", ".join(row.data_types) if args.verbose else f"{len(row.data_types)} types",
        )
        for row in stats
    ]
    print(format_table(["source", "# tests", "avg size", "avg len", "max len", "data types"], table))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-clx",
        description="CLX pattern profiling and verifiable data transformation",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    profile = subparsers.add_parser("profile", help="print the pattern clusters of a CSV column")
    profile.add_argument(
        "inputs",
        nargs="+",
        metavar="input",
        help="input file(s): CSV/JSONL paths, globs (quote them), or "
        "directories — a partitioned dataset profiles as one column",
    )
    profile.add_argument("--column", required=True, help="column name or zero-based index")
    profile.add_argument("--delimiter", default=",", help="CSV delimiter (default ',')")
    profile.add_argument(
        "--samples", type=int, default=3, help="sample values per pattern (>= 0)"
    )
    profile.add_argument(
        "--workers",
        type=int,
        default=1,
        help="profile byte-range shards of the file across this many worker "
        "processes and merge (default 1, single-process streaming)",
    )
    profile.add_argument(
        "--assume-csv",
        action="store_true",
        help="treat extensionless input files as CSV instead of refusing "
        "them (files with a known extension keep their format)",
    )
    profile.set_defaults(handler=_command_profile)

    transform = subparsers.add_parser("transform", help="normalize a CSV column to a target pattern")
    transform.add_argument("csv", help="input CSV file (with a header row)")
    transform.add_argument("--column", required=True, help="column name or zero-based index")
    transform.add_argument("--delimiter", default=",", help="CSV delimiter (default ',')")
    transform.add_argument("--target-example", help="a value already in the desired format")
    transform.add_argument(
        "--target-pattern", help="explicit target pattern notation, e.g. \"<D>3'-'<D>4\""
    )
    transform.add_argument(
        "--generalize",
        type=int,
        default=0,
        choices=range(0, 4),
        help="refinement rounds applied to the target example's pattern (0-3)",
    )
    transform.add_argument("--output", help="write the transformed CSV here instead of stdout")
    transform.add_argument("--output-column", help="name of the added column (default <column>_transformed)")
    transform.set_defaults(handler=_command_transform)

    compile_cmd = subparsers.add_parser(
        "compile",
        help="synthesize a program and save it as a .clx.json artifact",
    )
    compile_cmd.add_argument(
        "inputs",
        nargs="+",
        metavar="input",
        help="input file(s): CSV/JSONL paths, globs (quote them), or "
        "directories — the column is profiled across every part",
    )
    compile_cmd.add_argument("--column", required=True, help="column name or zero-based index")
    compile_cmd.add_argument("--delimiter", default=",", help="CSV delimiter (default ',')")
    compile_cmd.add_argument("--target-example", help="a value already in the desired format")
    compile_cmd.add_argument(
        "--target-pattern", help="explicit target pattern notation, e.g. \"<D>3'-'<D>4\""
    )
    compile_cmd.add_argument(
        "--generalize",
        type=int,
        default=0,
        choices=range(0, 4),
        help="refinement rounds applied to the target example's pattern (0-3)",
    )
    compile_cmd.add_argument(
        "--output", help="write the .clx.json artifact here instead of stdout"
    )
    compile_cmd.add_argument(
        "--cache-dir",
        help="content-addressed artifact cache: reuse a previously compiled "
        "artifact when the column distribution, target, and flags match "
        "(zero synthesis on a hit)",
    )
    compile_cmd.add_argument(
        "--strict",
        action="store_true",
        help="refuse to emit an artifact with any analysis finding at warn "
        "severity or above (dead branches, overlaps, ReDoS-prone "
        "regexes, uncovered clusters)",
    )
    compile_cmd.add_argument(
        "--assume-csv",
        action="store_true",
        help="treat extensionless input files as CSV instead of refusing "
        "them (files with a known extension keep their format)",
    )
    compile_cmd.set_defaults(handler=_command_compile)

    check = subparsers.add_parser(
        "check",
        help="statically analyze .clx.json artifacts (dead branches, "
        "overlaps, ReDoS-prone regexes, coverage residuals, conflicts)",
    )
    check.add_argument(
        "artifact",
        nargs="+",
        help=".clx.json artifact(s) written by 'compile', or — with "
        "--cache-dir — registry fingerprint prefixes; several artifacts "
        "are additionally checked for cross-artifact conflicts",
    )
    check.add_argument(
        "--cache-dir",
        help="resolve non-file artifact specs as fingerprint prefixes "
        "against this cache's registry manifest (the 'fingerprint' "
        "column of 'artifacts list')",
    )
    check.add_argument(
        "--profile",
        nargs="+",
        metavar="input",
        help="profile these CSV/JSONL inputs and audit coverage: report "
        "clusters that no branch matches (requires --column)",
    )
    check.add_argument(
        "--column",
        help="column to profile for the coverage audit (name or zero-based "
        "index; only with --profile)",
    )
    check.add_argument("--delimiter", default=",", help="CSV delimiter (default ',')")
    check.add_argument(
        "--fail-on",
        default="error",
        metavar="SEVERITY",
        help="exit 1 when any finding is at or above this severity: "
        "info, warn, or error (default error)",
    )
    check.add_argument(
        "--no-probe",
        action="store_true",
        help="skip the empirical ReDoS probe (structural findings only)",
    )
    check.add_argument(
        "--json",
        action="store_true",
        help="machine-readable JSON report (format clx/analysis-report)",
    )
    check.set_defaults(handler=_command_check)

    verify = subparsers.add_parser(
        "verify",
        help="flow-verify .clx.json artifacts: prove every live branch "
        "emits only target-shaped values, and statically check "
        "multi-artifact pipeline composition",
    )
    verify.add_argument(
        "artifact",
        nargs="+",
        help=".clx.json artifact(s) written by 'compile', or — with "
        "--cache-dir — registry fingerprint prefixes; several artifacts "
        "are additionally checked as a pipeline (broken/leaky/"
        "re-transforming chains)",
    )
    verify.add_argument(
        "--cache-dir",
        help="resolve non-file artifact specs as fingerprint prefixes "
        "against this cache's registry manifest (the 'fingerprint' "
        "column of 'artifacts list')",
    )
    verify.add_argument(
        "--fail-on",
        default="error",
        metavar="SEVERITY",
        help="exit 1 when any finding is at or above this severity: "
        "info, warn, or error (default error)",
    )
    verify.add_argument(
        "--json",
        action="store_true",
        help="machine-readable JSON report (format clx/analysis-report "
        "plus a per-artifact 'verified' map)",
    )
    verify.set_defaults(handler=_command_verify)

    apply_cmd = subparsers.add_parser(
        "apply",
        help="stream CSV/JSONL data through saved .clx.json artifacts "
        "(no re-profiling)",
    )
    apply_cmd.add_argument(
        "program",
        nargs="+",
        help=".clx.json artifact(s) written by 'compile'; several artifacts "
        "transform several columns in the same single pass",
    )
    apply_cmd.add_argument(
        "csv",
        help="input file, glob (quote it), or directory of partitions — "
        "CSV and JSONL parts mixed freely",
    )
    apply_cmd.add_argument(
        "--input",
        action="append",
        help="additional input path/glob/directory (repeatable); all "
        "resolved partitions apply in stable sorted order",
    )
    apply_cmd.add_argument(
        "--column",
        action="append",
        help="column to transform, one per program in order (default: the "
        "column recorded in each artifact)",
    )
    apply_cmd.add_argument("--delimiter", default=",", help="CSV delimiter (default ',')")
    apply_cmd.add_argument("--output", help="write the transformed output here instead of stdout")
    apply_cmd.add_argument(
        "--output-dir",
        help="write one output file per input partition into this directory "
        "(preserving partition names) instead of one spliced sink",
    )
    from repro.dataset.backends import sink_format_names

    apply_cmd.add_argument(
        "--format",
        choices=sink_format_names(),
        default="csv",
        help="sink format: csv (default), jsonl (one JSON object per row, "
        "no header), or a columnar format from the backend registry "
        "(parquet/arrow need the pyarrow extra)",
    )
    apply_cmd.add_argument(
        "--assume-csv",
        action="store_true",
        help="treat extensionless input files as CSV instead of refusing "
        "them (files with a known extension keep their format)",
    )
    destination_group = apply_cmd.add_mutually_exclusive_group()
    destination_group.add_argument(
        "--output-column", help="name of the added column (default <column>_transformed)"
    )
    destination_group.add_argument(
        "--in-place",
        action="store_true",
        help="overwrite the source column instead of adding a new one",
    )
    apply_cmd.add_argument(
        "--chunk-size",
        type=int,
        default=4096,
        help="physical lines per transform batch inside each worker "
        "(default 4096)",
    )
    apply_cmd.add_argument(
        "--shard-bytes",
        type=int,
        default=1 << 20,
        help="split partitions larger than this many bytes into "
        "record-aligned byte-range shards for cross-partition dispatch "
        "(default 1 MiB)",
    )
    apply_cmd.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan raw CSV chunks across this many worker processes that "
        "parse, transform, and re-encode worker-side (default 1, "
        "single-process)",
    )
    apply_cmd.add_argument(
        "--on-error",
        choices=("abort", "quarantine"),
        default="abort",
        help="what a bad record does: abort the run (default), or divert "
        "the record to --quarantine-dir and keep going — the run then "
        "exits 3 when anything was quarantined",
    )
    apply_cmd.add_argument(
        "--quarantine-dir",
        help="directory collecting quarantined records, one "
        "<partition>.quarantine.jsonl per source partition "
        "(required with --on-error quarantine)",
    )
    apply_cmd.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        help="seconds before an in-flight shard counts as hung and its "
        "worker is replaced (default: no limit)",
    )
    apply_cmd.add_argument(
        "--max-retries",
        type=int,
        default=0,
        help="retries per shard on infrastructure faults (dead or hung "
        "worker, with jittered exponential backoff) before the shard "
        "is declared poison (default 0)",
    )
    apply_cmd.add_argument(
        "--resume",
        action="store_true",
        help="with --output-dir: skip partitions the .clx-apply.json run "
        "manifest already records as complete",
    )
    apply_cmd.add_argument(
        "--memo-size",
        type=int,
        default=DEFAULT_MEMO_SIZE,
        help="bound on each program's value->output dispatch memo; repeated "
        "values skip regex work entirely (default "
        f"{DEFAULT_MEMO_SIZE}; 0 disables memoization)",
    )
    apply_cmd.add_argument(
        "--adaptive-chunks",
        type=int,
        default=None,
        metavar="TARGET_MS",
        help="adapt chunk/shard sizes toward this per-task latency target "
        "in milliseconds, instead of the static --chunk-size/--shard-bytes "
        "(default: off; sink bytes are identical either way)",
    )
    apply_cmd.set_defaults(handler=_command_apply)

    artifacts = subparsers.add_parser(
        "artifacts",
        help="inspect or garbage-collect a compile cache's registry manifest",
    )
    artifacts.add_argument(
        "action",
        choices=("list", "gc"),
        help="list: show every registered artifact (fingerprint, target, "
        "stats); gc: prune dangling manifest rows and unreferenced "
        "artifact files",
    )
    artifacts.add_argument(
        "--cache-dir",
        required=True,
        help="the cache directory holding registry.json",
    )
    artifacts.add_argument(
        "--keep-days",
        type=float,
        default=None,
        help="gc only: also evict artifacts not used (cache hit or "
        "compile) in this many days",
    )
    artifacts.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="gc only: also evict least-recently-used artifacts until "
        "the surviving files total at most this many bytes",
    )
    artifacts.add_argument(
        "--json",
        action="store_true",
        help="machine-readable JSON output",
    )
    artifacts.set_defaults(handler=_command_artifacts)

    suite = subparsers.add_parser("suite", help="print the 47-task benchmark suite statistics")
    suite.add_argument("--verbose", action="store_true", help="list every data type")
    suite.set_defaults(handler=_command_suite)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except CLXError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # The reader went away (e.g. `repro-clx apply ... | head`).  Point
        # stdout at /dev/null so the interpreter's exit-time flush cannot
        # raise again, and exit with the conventional 128 + SIGPIPE code.
        try:
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
        except (OSError, ValueError, AttributeError):
            pass
        return 141


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
