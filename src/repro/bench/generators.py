"""Synthetic data generators for the benchmark scenarios.

Each generator produces raw strings in a controlled mixture of formats
together with the desired normalized form, deterministically from a
seed.  They stand in for the paper's non-redistributable datasets (the
NYC phone column and the SyGuS / FlashFill / BlinkFill / PredProg /
PROSE test inputs); what matters for the reproduction is the *format
mix*, size and heterogeneity, which these generators preserve.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.util.rand import digits, letters, make_rng

# A pool of plausible name fragments used by the name/address generators.
FIRST_NAMES = [
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
    "Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
    "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Eran",
    "Oege", "Rishabh", "Sumit", "Kathleen", "Zhongjun",
]
LAST_NAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
    "Yahav", "Fisher", "Gates", "Moor", "Gulwani", "Singh", "Walker",
]
STREET_NAMES = [
    "Main", "Oak", "Pine", "Maple", "Cedar", "Elm", "Washington", "Lake",
    "Hill", "Park", "Michigan", "State", "Liberty", "Huron", "Packard",
]
STREET_TYPES = ["St", "Ave", "Rd", "Blvd", "Dr", "Ln", "Way", "Ct"]
CITIES = [
    "Ann Arbor", "Chicago", "Seattle", "Redmond", "Austin", "Boston",
    "Denver", "Portland", "Madison", "Berkeley", "Columbus", "Atlanta",
]
STATES = ["MI", "IL", "WA", "TX", "MA", "CO", "OR", "WI", "CA", "OH", "GA", "NY"]
UNIVERSITIES = [
    "University of Michigan", "Stanford University", "MIT",
    "University of Washington", "UC Berkeley", "Carnegie Mellon University",
    "University of Texas", "Cornell University", "Princeton University",
]
COMPANIES = ["Trifacta", "Microsoft", "Google", "Amazon", "Apple", "IBM", "Intel"]
PRODUCTS = ["Widget", "Gadget", "Sprocket", "Gizmo", "Module", "Adapter"]
MONTH_NAMES = [
    "January", "February", "March", "April", "May", "June", "July",
    "August", "September", "October", "November", "December",
]


# ----------------------------------------------------------------------
# Phone numbers
# ----------------------------------------------------------------------
#: The phone formats observed in the paper's Figure 1/3 and their
#: relative weights (mirroring the skew of the Times Square column).
PHONE_FORMATS: Sequence[Tuple[str, float]] = (
    ("paren_space", 0.30),   # (734) 645-8397
    ("paren_tight", 0.20),   # (734)586-7252
    ("dashes", 0.22),        # 734-422-8073
    ("dots", 0.12),          # 734.236.3466
    ("spaces", 0.08),        # 734 422 8073
    ("plus_one", 0.05),      # +1 734-285-5210
    ("plain", 0.03),         # 7342363466 (not splittable at token level)
)


def _phone_parts(rng: random.Random) -> Tuple[str, str, str]:
    """Random (area, prefix, line) phone number components."""
    area = str(rng.randrange(200, 990))
    prefix = str(rng.randrange(200, 990))
    line = digits(rng, 4)
    return area, prefix, line


def _render_phone(fmt: str, area: str, prefix: str, line: str) -> str:
    if fmt == "paren_space":
        return f"({area}) {prefix}-{line}"
    if fmt == "paren_tight":
        return f"({area}){prefix}-{line}"
    if fmt == "dashes":
        return f"{area}-{prefix}-{line}"
    if fmt == "dots":
        return f"{area}.{prefix}.{line}"
    if fmt == "spaces":
        return f"{area} {prefix} {line}"
    if fmt == "plain":
        return f"{area}{prefix}{line}"
    if fmt == "plus_one":
        return f"+1 {area}-{prefix}-{line}"
    raise ValueError(f"unknown phone format {fmt!r}")


def phone_numbers(
    count: int,
    formats: Sequence[str],
    seed: int = 1,
    desired: str = "dashes",
) -> Tuple[List[str], Dict[str, str]]:
    """Generate ``count`` phone numbers across ``formats``.

    Args:
        count: Number of rows.
        formats: Which of :data:`PHONE_FORMATS` names to use; every format
            is guaranteed at least one row (as long as ``count`` allows).
        seed: RNG seed.
        desired: The format every number should be normalized to.

    Returns:
        ``(raw_values, expected)`` where ``expected`` maps each raw value
        to its desired form.
    """
    if count < len(formats):
        raise ValueError("count must be at least the number of formats")
    rng = make_rng(seed)
    weights = {name: weight for name, weight in PHONE_FORMATS}
    raw: List[str] = []
    expected: Dict[str, str] = {}
    # One guaranteed row per format, then weighted sampling.
    assignments = list(formats)
    remaining = count - len(assignments)
    format_weights = [weights.get(name, 0.1) for name in formats]
    assignments.extend(rng.choices(list(formats), weights=format_weights, k=remaining))
    rng.shuffle(assignments)
    for fmt in assignments:
        area, prefix, line = _phone_parts(rng)
        value = _render_phone(fmt, area, prefix, line)
        raw.append(value)
        expected[value] = _render_phone(desired, area, prefix, line)
    return raw, expected


def phone_number_stream(
    count: int,
    formats: Sequence[str] | None = None,
    seed: int = 1,
) -> Iterator[str]:
    """Yield ``count`` weighted-format phone numbers one at a time.

    The streaming counterpart of :func:`phone_numbers` for scale
    workloads: nothing is materialized, so a consumer that also streams
    (e.g. :class:`~repro.clustering.incremental.IncrementalProfiler`)
    holds memory independent of ``count``.
    """
    if formats is None:
        formats = [name for name, _weight in PHONE_FORMATS if name != "plain"]
    rng = make_rng(seed)
    weights = {name: weight for name, weight in PHONE_FORMATS}
    format_weights = [weights.get(name, 0.1) for name in formats]
    for _ in range(count):
        fmt = rng.choices(list(formats), weights=format_weights, k=1)[0]
        area, prefix, line = _phone_parts(rng)
        yield _render_phone(fmt, area, prefix, line)


# ----------------------------------------------------------------------
# Human names
# ----------------------------------------------------------------------
def human_names(
    count: int,
    seed: int = 2,
    with_titles: bool = True,
) -> Tuple[List[str], Dict[str, str]]:
    """Names in mixed formats normalized to ``"Last, F."``.

    Formats generated: ``First Last``, ``Dr. First Last``, ``Last, F.``
    (already correct) and ``First M. Last``.
    """
    rng = make_rng(seed)
    raw: List[str] = []
    expected: Dict[str, str] = {}
    forms = ["first_last", "title", "correct", "middle"] if with_titles else [
        "first_last", "correct", "middle"
    ]
    for index in range(count):
        first = rng.choice(FIRST_NAMES)
        last = rng.choice(LAST_NAMES)
        form = forms[index % len(forms)]
        desired = f"{last}, {first[0]}."
        if form == "first_last":
            value = f"{first} {last}"
        elif form == "title":
            value = f"Dr. {first} {last}"
        elif form == "middle":
            middle = rng.choice(FIRST_NAMES)
            value = f"{first} {middle[0]}. {last}"
        else:
            value = desired
        raw.append(value)
        expected[value] = desired
    return raw, expected


# ----------------------------------------------------------------------
# Dates
# ----------------------------------------------------------------------
def dates(
    count: int,
    seed: int = 3,
) -> Tuple[List[str], Dict[str, str]]:
    """Dates in mixed formats normalized to ``MM/DD/YYYY``."""
    rng = make_rng(seed)
    raw: List[str] = []
    expected: Dict[str, str] = {}
    forms = ["slash", "dash", "dots", "correct"]
    for index in range(count):
        month = rng.randrange(1, 13)
        day = rng.randrange(1, 29)
        year = rng.randrange(1980, 2020)
        desired = f"{month:02d}/{day:02d}/{year}"
        form = forms[index % len(forms)]
        if form == "slash":
            value = f"{year}/{month:02d}/{day:02d}"
        elif form == "dash":
            value = f"{month:02d}-{day:02d}-{year}"
        elif form == "dots":
            value = f"{day:02d}.{month:02d}.{year}"
        else:
            value = desired
        raw.append(value)
        expected[value] = desired
    return raw, expected


# ----------------------------------------------------------------------
# Addresses
# ----------------------------------------------------------------------
def addresses(
    count: int,
    seed: int = 4,
) -> Tuple[List[str], Dict[str, str]]:
    """US street addresses; the goal is extracting the city name."""
    rng = make_rng(seed)
    raw: List[str] = []
    expected: Dict[str, str] = {}
    for index in range(count):
        number = rng.randrange(10, 9999)
        street = rng.choice(STREET_NAMES)
        street_type = rng.choice(STREET_TYPES)
        city = rng.choice(CITIES)
        state = rng.choice(STATES)
        zipcode = digits(rng, 5)
        if index % 3 == 0:
            value = f"{number} {street} {street_type}, {city}, {state} {zipcode}"
        elif index % 3 == 1:
            value = f"{number} {street} {street_type}, {city}"
        else:
            value = f"{city}"
        raw.append(value)
        expected[value] = city
    return raw, expected


# ----------------------------------------------------------------------
# Product / medical / id codes
# ----------------------------------------------------------------------
def medical_codes(count: int, seed: int = 5) -> Tuple[List[str], Dict[str, str]]:
    """CPT billing codes normalized to ``[CPT-XXXXX]`` (paper Example 5)."""
    rng = make_rng(seed)
    raw: List[str] = []
    expected: Dict[str, str] = {}
    forms = ["bare", "open", "correct", "tight"]
    for index in range(count):
        code = digits(rng, 5)
        desired = f"[CPT-{code}]"
        form = forms[index % len(forms)]
        if form == "bare":
            value = f"CPT-{code}"
        elif form == "open":
            value = f"[CPT-{code}"
        elif form == "tight":
            value = f"CPT{code}"
            desired = f"[CPT-{code}]"
        else:
            value = desired
        raw.append(value)
        expected[value] = desired
    return raw, expected


def product_ids(count: int, seed: int = 6) -> Tuple[List[str], Dict[str, str]]:
    """Product identifiers normalized to ``ABC-1234`` style."""
    rng = make_rng(seed)
    raw: List[str] = []
    expected: Dict[str, str] = {}
    forms = ["tight", "space", "lower", "correct"]
    for index in range(count):
        prefix = letters(rng, 3, upper=True)
        code = digits(rng, 4)
        desired = f"{prefix}-{code}"
        form = forms[index % len(forms)]
        if form == "tight":
            value = f"{prefix}{code}"
        elif form == "space":
            value = f"{prefix} {code}"
        elif form == "lower":
            # Lowercase prefixes would need a case conversion, which is a
            # semantic transformation UniFi does not support; their
            # desired form keeps the original letters.
            value = f"{prefix.lower()}-{code}"
            desired = value
        else:
            value = desired
        raw.append(value)
        expected[value] = desired
    return raw, expected


def log_entries(count: int, seed: int = 7) -> Tuple[List[str], Dict[str, str]]:
    """Web-log-like entries; the goal is extracting the status code."""
    rng = make_rng(seed)
    raw: List[str] = []
    expected: Dict[str, str] = {}
    methods = ["GET", "POST", "PUT"]
    for _ in range(count):
        ip = ".".join(str(rng.randrange(1, 255)) for _ in range(4))
        method = rng.choice(methods)
        path = "/" + letters(rng, rng.randrange(3, 8))
        status = rng.choice(["200", "404", "500", "302"])
        value = f"{ip} {method} {path} {status}"
        raw.append(value)
        expected[value] = status
    return raw, expected


def urls(count: int, seed: int = 8) -> Tuple[List[str], Dict[str, str]]:
    """URLs; the goal is extracting the host name."""
    rng = make_rng(seed)
    raw: List[str] = []
    expected: Dict[str, str] = {}
    domains = ["example", "umich", "trifacta", "github", "wikipedia", "acm"]
    tlds = ["com", "edu", "org", "net"]
    for index in range(count):
        domain = rng.choice(domains)
        tld = rng.choice(tlds)
        host = f"{domain}.{tld}"
        path = "/" + letters(rng, rng.randrange(3, 8))
        if index % 3 == 0:
            value = f"https://{host}{path}"
        elif index % 3 == 1:
            value = f"http://{host}{path}"
        else:
            value = f"{host}"
        raw.append(value)
        expected[value] = host
    return raw, expected


def emails(count: int, seed: int = 9) -> Tuple[List[str], Dict[str, str]]:
    """Email addresses; the goal is extracting the login (local part)."""
    rng = make_rng(seed)
    raw: List[str] = []
    expected: Dict[str, str] = {}
    hosts = ["gmail.com", "umich.edu", "outlook.com", "yahoo.com"]
    for _ in range(count):
        login = letters(rng, rng.randrange(4, 9))
        host = rng.choice(hosts)
        value = f"{login}@{host}"
        raw.append(value)
        expected[value] = login
    return raw, expected


def university_names(count: int, seed: int = 10) -> Tuple[List[str], Dict[str, str]]:
    """University names with city/state suffixes; goal: drop the suffix."""
    rng = make_rng(seed)
    raw: List[str] = []
    expected: Dict[str, str] = {}
    for index in range(count):
        university = rng.choice(UNIVERSITIES)
        city = rng.choice(CITIES)
        state = rng.choice(STATES)
        if index % 2 == 0:
            value = f"{university}, {city}, {state}"
        else:
            value = f"{university}"
        raw.append(value)
        expected[value] = university
    return raw, expected


def car_model_ids(count: int, seed: int = 11) -> Tuple[List[str], Dict[str, str]]:
    """Car model identifiers normalized to ``AA-00-aa`` style groups."""
    rng = make_rng(seed)
    raw: List[str] = []
    expected: Dict[str, str] = {}
    forms = ["spaced", "tight", "correct"]
    for index in range(count):
        make = letters(rng, 2, upper=True)
        number = digits(rng, 2)
        trim = letters(rng, 2)
        desired = f"{make}-{number}-{trim}"
        form = forms[index % len(forms)]
        if form == "spaced":
            value = f"{make} {number} {trim}"
        elif form == "tight":
            value = f"{make}{number}{trim}"
        else:
            value = desired
        raw.append(value)
        expected[value] = desired
    return raw, expected


def currency_amounts(count: int, seed: int = 12) -> Tuple[List[str], Dict[str, str]]:
    """Prices in mixed formats normalized to ``$X.YY``."""
    rng = make_rng(seed)
    raw: List[str] = []
    expected: Dict[str, str] = {}
    forms = ["bare", "usd", "correct"]
    for index in range(count):
        dollars = rng.randrange(1, 999)
        cents = digits(rng, 2)
        desired = f"${dollars}.{cents}"
        form = forms[index % len(forms)]
        if form == "bare":
            value = f"{dollars}.{cents}"
        elif form == "usd":
            value = f"{dollars}.{cents} USD"
        else:
            value = desired
        raw.append(value)
        expected[value] = desired
    return raw, expected


def file_paths(count: int, seed: int = 13) -> Tuple[List[str], Dict[str, str]]:
    """File paths; the goal is extracting the file name."""
    rng = make_rng(seed)
    raw: List[str] = []
    expected: Dict[str, str] = {}
    for _ in range(count):
        depth = rng.randrange(1, 3)
        directories = "/".join(letters(rng, rng.randrange(3, 7)) for _ in range(depth))
        name = letters(rng, rng.randrange(3, 8))
        extension = rng.choice(["txt", "csv", "json"])
        value = f"/{directories}/{name}.{extension}"
        raw.append(value)
        expected[value] = f"{name}.{extension}"
    return raw, expected


def name_position_pairs(count: int, seed: int = 14) -> Tuple[List[str], Dict[str, str]]:
    """"Name (Position)" strings; the goal is extracting the position."""
    rng = make_rng(seed)
    raw: List[str] = []
    expected: Dict[str, str] = {}
    positions = ["Manager", "Engineer", "Director", "Analyst", "Designer"]
    for _ in range(count):
        first = rng.choice(FIRST_NAMES)
        last = rng.choice(LAST_NAMES)
        position = rng.choice(positions)
        value = f"{first} {last} ({position})"
        raw.append(value)
        expected[value] = position
    return raw, expected


def country_numbers(count: int, seed: int = 15) -> Tuple[List[str], Dict[str, str]]:
    """"Country 12345" rows normalized to just the number."""
    rng = make_rng(seed)
    countries = ["France", "Germany", "Japan", "Brazil", "Canada", "Kenya"]
    raw: List[str] = []
    expected: Dict[str, str] = {}
    for index in range(count):
        country = rng.choice(countries)
        number = digits(rng, rng.randrange(3, 6))
        if index % 2 == 0:
            value = f"{country} {number}"
        else:
            value = f"{country}: {number}"
        raw.append(value)
        expected[value] = number
    return raw, expected


def city_country_pairs(count: int, seed: int = 16) -> Tuple[List[str], Dict[str, str]]:
    """"City, Country" rows normalized to ``City (Country)``."""
    rng = make_rng(seed)
    pairs = [
        ("Paris", "France"), ("Berlin", "Germany"), ("Tokyo", "Japan"),
        ("Toronto", "Canada"), ("Nairobi", "Kenya"), ("Austin", "USA"),
    ]
    raw: List[str] = []
    expected: Dict[str, str] = {}
    forms = ["comma", "dash", "correct"]
    for index in range(count):
        city, country = rng.choice(pairs)
        desired = f"{city} ({country})"
        form = forms[index % len(forms)]
        if form == "comma":
            value = f"{city}, {country}"
        elif form == "dash":
            value = f"{city} - {country}"
        else:
            value = desired
        raw.append(value)
        expected[value] = desired
    return raw, expected
