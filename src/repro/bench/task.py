"""The benchmark task abstraction used by the effort simulation.

A :class:`TransformationTask` bundles everything a simulated user (or an
example script) needs to run one data-pattern-transformation scenario on
any of the three systems: the raw column, the desired output for every
row, and how the target pattern is labelled in CLX.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.patterns.generalize import GENERALIZATION_STRATEGIES
from repro.patterns.matching import pattern_of_string
from repro.patterns.parse import parse_pattern
from repro.patterns.pattern import Pattern


@dataclass
class TransformationTask:
    """One data pattern transformation scenario.

    Attributes:
        task_id: Unique identifier (e.g. ``"sygus-phone-1"``).
        source: Which benchmark family the scenario imitates
            ("SyGuS", "FlashFill", "BlinkFill", "PredProg", "PROSE",
            "UserStudy").
        data_type: Short description of the data ("phone number",
            "human name", …) — reported in the Table 5/6 statistics.
        inputs: The raw column values.
        expected: Desired output for every raw value (the oracle the
            simulated user consults when verifying).
        target_example: A value already in the desired format, used to
            label the CLX target (``None`` when ``target_notation`` is
            given instead).
        target_generalize: Number of refinement rounds applied to the
            target example's pattern when labelling (0 = exact leaf).
        target_notation: Explicit target pattern notation, for scenarios
            where the desired format does not appear in the data.
        description: One-line description of the transformation goal.
    """

    task_id: str
    source: str
    data_type: str
    inputs: List[str]
    expected: Dict[str, str]
    target_example: Optional[str] = None
    target_generalize: int = 0
    target_notation: Optional[str] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.inputs:
            raise ValueError(f"task {self.task_id} has no input data")
        missing = [value for value in self.inputs if value not in self.expected]
        if missing:
            raise ValueError(
                f"task {self.task_id} lacks expected outputs for {len(missing)} inputs"
            )
        if self.target_example is None and self.target_notation is None:
            raise ValueError(f"task {self.task_id} needs a target example or notation")

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of rows in the task."""
        return len(self.inputs)

    @property
    def average_length(self) -> float:
        """Average raw string length (Table 5/6 statistic)."""
        return sum(len(value) for value in self.inputs) / len(self.inputs)

    @property
    def max_length(self) -> int:
        """Maximum raw string length (Table 5/6 statistic)."""
        return max(len(value) for value in self.inputs)

    @property
    def min_length(self) -> int:
        """Minimum raw string length."""
        return min(len(value) for value in self.inputs)

    def target_pattern(self) -> Pattern:
        """The CLX target pattern implied by the task definition."""
        if self.target_notation is not None:
            return parse_pattern(self.target_notation)
        assert self.target_example is not None
        pattern = pattern_of_string(self.target_example)
        for strategy in GENERALIZATION_STRATEGIES[: max(0, self.target_generalize)]:
            pattern = strategy(pattern)
        return pattern

    def distinct_leaf_patterns(self) -> List[Pattern]:
        """Distinct leaf patterns present in the raw data (heterogeneity)."""
        seen: List[Pattern] = []
        seen_set = set()
        for value in self.inputs:
            pattern = pattern_of_string(value)
            if pattern not in seen_set:
                seen_set.add(pattern)
                seen.append(pattern)
        return seen

    def desired_output(self, raw: str) -> str:
        """The expected output for ``raw`` (the raw value itself if absent)."""
        return self.expected.get(raw, raw)

    def already_correct(self, raw: str) -> bool:
        """Whether ``raw`` is already in the desired form."""
        return self.expected.get(raw, raw) == raw
