"""The phone-number user-study workload (paper Section 7.2).

The paper's first user study uses a column of 331 messy phone numbers
from the "Times Square Food & Beverage Locations" open data set, sampled
into three cases of growing size and heterogeneity:

* ``10(2)``  — 10 rows, 2 formats,
* ``100(4)`` — 100 rows, 4 formats,
* ``300(6)`` — 300 rows, 6 formats,

with the goal of normalizing everything to ``<D>3-<D>3-<D>4``.  The
original column is not redistributable, so :func:`phone_dataset`
regenerates an equivalent synthetic column with the same format mix.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.bench.generators import PHONE_FORMATS, phone_numbers
from repro.bench.task import TransformationTask

#: The format subsets used by the three user-study cases.  The first two
#: formats are the most common ones; each larger case adds formats, which
#: is what "heterogeneity" means in the paper's case names.
CASE_DEFINITIONS: Sequence[Tuple[str, int, int]] = (
    ("10(2)", 10, 2),
    ("100(4)", 100, 4),
    ("300(6)", 300, 6),
)

#: Formats used by the user-study cases, in the order new formats are
#: introduced as the cases grow.  The bare 10-digit "plain" format is
#: excluded: no token-level system (CLX, the FlashFill baseline or a
#: pattern-level Replace) can split an unseparated digit run, and the
#: paper's study data contained only separable formats.
_FORMAT_ORDER = [name for name, _weight in PHONE_FORMATS if name != "plain"]


def phone_dataset(
    count: int,
    format_count: int,
    seed: int = 331,
) -> Tuple[List[str], Dict[str, str]]:
    """Generate a phone column with ``count`` rows across ``format_count`` formats.

    The desired form is ``XXX-XXX-XXXX`` (the paper's target pattern
    ``<D>3-<D>3-<D>4``).

    Raises:
        ValueError: If ``format_count`` exceeds the number of known formats.
    """
    if format_count > len(_FORMAT_ORDER):
        raise ValueError(
            f"at most {len(_FORMAT_ORDER)} phone formats are available"
        )
    formats = _FORMAT_ORDER[:format_count]
    return phone_numbers(count, formats, seed=seed, desired="dashes")


def phone_user_study_cases(seed: int = 331) -> List[TransformationTask]:
    """The three user-study cases as :class:`~repro.bench.task.TransformationTask`s."""
    tasks: List[TransformationTask] = []
    for name, count, format_count in CASE_DEFINITIONS:
        raw, expected = phone_dataset(count, format_count, seed=seed)
        tasks.append(
            TransformationTask(
                task_id=f"userstudy-phone-{name}",
                source="UserStudy",
                data_type="phone number",
                inputs=raw,
                expected=expected,
                target_notation="<D>3'-'<D>3'-'<D>4",
                description=(
                    f"Normalize {count} phone numbers in {format_count} formats "
                    "to XXX-XXX-XXXX"
                ),
            )
        )
    return tasks
