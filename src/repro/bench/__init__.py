"""Benchmark workloads: synthetic datasets and the 47-task suite.

The paper evaluates on datasets that are not redistributable (a NYC open
data phone column, SyGuS/FlashFill/BlinkFill/PredProg/PROSE test cases).
This package regenerates synthetic equivalents: the same format mixes,
sizes and heterogeneity, produced deterministically from fixed seeds, so
every experiment in ``benchmarks/`` is reproducible offline.
"""

from repro.bench.task import TransformationTask
from repro.bench.phone import phone_dataset, phone_user_study_cases
from repro.bench.suite import benchmark_suite, suite_statistics

__all__ = [
    "TransformationTask",
    "benchmark_suite",
    "phone_dataset",
    "phone_user_study_cases",
    "suite_statistics",
]
