"""The 47 benchmark scenarios (paper Table 6 and Appendix D).

The paper assembles 47 data-pattern-transformation test cases from five
sources — SyGuS (27), FlashFill (10), BlinkFill (4), PredProg (3) and
PROSE (3) — covering phone numbers, human names, car model ids,
university names, addresses, dates, log entries, urls, product names and
more.  The original inputs are not redistributable, so each scenario here
is regenerated synthetically with the same data type, size and
heterogeneity as its source family (sizes follow Table 6: SyGuS ≈ 63
rows, FlashFill/BlinkFill/PredProg ≈ 10, PROSE ≈ 39).

A handful of scenarios are deliberately *hard* in the same way the
paper's failures are:

* content-conditional tasks (the "Example 13 requires advanced
  conditionals" failure) where two rows share a pattern but need
  different outputs;
* extraction tasks whose outputs span several patterns (the "popl-13"
  failure) so a single labelled target cannot cover everything.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench import generators as gen
from repro.bench.task import TransformationTask
from repro.util.rand import make_rng

#: Row counts per source family (Table 6 "AvgSize").
SYGUS_SIZE = 63
FLASHFILL_SIZE = 10
BLINKFILL_SIZE = 11
PREDPROG_SIZE = 10
PROSE_SIZE = 39


def _task(
    task_id: str,
    source: str,
    data_type: str,
    raw: List[str],
    expected: Dict[str, str],
    target_example: str | None = None,
    target_generalize: int = 0,
    target_notation: str | None = None,
    description: str = "",
) -> TransformationTask:
    """Small convenience wrapper around the task constructor."""
    return TransformationTask(
        task_id=task_id,
        source=source,
        data_type=data_type,
        inputs=raw,
        expected=expected,
        target_example=target_example,
        target_generalize=target_generalize,
        target_notation=target_notation,
        description=description,
    )


# ----------------------------------------------------------------------
# SyGuS-style scenarios (27)
# ----------------------------------------------------------------------
def _sygus_phone_tasks() -> List[TransformationTask]:
    """Seven phone-number normalization scenarios with varying format mixes."""
    specs = [
        ("phone-1", ["paren_space", "dashes"], "dashes"),
        ("phone-2", ["paren_space", "paren_tight", "dashes"], "dashes"),
        ("phone-3", ["dashes", "dots"], "paren_space"),
        ("phone-4", ["paren_space", "dots", "dashes"], "paren_space"),
        ("phone-5", ["paren_tight", "dots"], "dots"),
        ("phone-6", ["paren_space", "paren_tight", "dots", "dashes"], "dashes"),
        ("phone-7", ["plus_one", "dashes"], "dashes"),
    ]
    tasks = []
    for index, (name, formats, desired) in enumerate(specs):
        raw, expected = gen.phone_numbers(
            SYGUS_SIZE, formats, seed=100 + index, desired=desired
        )
        target_example = next(iter(expected.values()))
        tasks.append(
            _task(
                f"sygus-{name}",
                "SyGuS",
                "phone number",
                raw,
                expected,
                target_example=target_example,
                description=f"Normalize phone numbers ({'/'.join(formats)}) to {desired}",
            )
        )
    return tasks


def _sygus_name_tasks() -> List[TransformationTask]:
    """Six human-name normalization scenarios."""
    tasks = []
    for index in range(6):
        raw, expected = gen.human_names(SYGUS_SIZE, seed=200 + index)
        target_example = next(value for value in expected.values())
        tasks.append(
            _task(
                f"sygus-name-{index + 1}",
                "SyGuS",
                "human name",
                raw,
                expected,
                target_example=target_example,
                target_generalize=1,
                description="Normalize names to 'Last, F.'",
            )
        )
    return tasks


def _sygus_car_tasks() -> List[TransformationTask]:
    """Five car-model-id scenarios."""
    tasks = []
    for index in range(5):
        raw, expected = gen.car_model_ids(SYGUS_SIZE, seed=300 + index)
        target_example = next(iter(expected.values()))
        tasks.append(
            _task(
                f"sygus-car-{index + 1}",
                "SyGuS",
                "car model id",
                raw,
                expected,
                target_example=target_example,
                target_generalize=0,
                description="Normalize car model ids to AA-00-aa",
            )
        )
    return tasks


def _sygus_university_tasks() -> List[TransformationTask]:
    """Four university-name extraction scenarios.

    The first three restrict the data to two-word university names so one
    labelled target pattern covers every output; the fourth keeps the
    full mixture ("MIT", "University of Michigan", …), whose outputs span
    several patterns — a 'lack of representative target patterns' hard
    case of the kind the paper reports CLX failing on.
    """
    def _two_capitalized_words(university: str) -> bool:
        words = university.split()
        return len(words) == 2 and all(
            len(word) > 1 and word[0].isupper() and word[1:].islower() for word in words
        )

    tasks = []
    for index in range(4):
        raw, expected = gen.university_names(SYGUS_SIZE, seed=400 + index)
        if index < 3:
            expected = {
                value: university
                for value, university in expected.items()
                if _two_capitalized_words(university)
            }
            raw = [value for value in raw if value in expected]
        target_example = next(
            university
            for university in expected.values()
            if _two_capitalized_words(university)
        )
        tasks.append(
            _task(
                f"sygus-univ-{index + 1}",
                "SyGuS",
                "university name",
                raw,
                expected,
                target_example=target_example,
                target_generalize=1,
                description="Strip city/state suffixes from university names",
            )
        )
    return tasks


def _sygus_address_tasks() -> List[TransformationTask]:
    """Five address/city extraction scenarios; two use multi-word cities
    (multiple output patterns), which is the paper's 'popl-13'-style hard
    case for CLX."""
    tasks = []
    for index in range(5):
        raw, expected = gen.addresses(SYGUS_SIZE, seed=500 + index)
        if index < 3:
            # Restrict to single-word cities so a single target pattern covers.
            filtered_raw = []
            filtered_expected = {}
            for value in raw:
                city = expected[value]
                if " " not in city:
                    filtered_raw.append(value)
                    filtered_expected[value] = city
            raw, expected = filtered_raw, filtered_expected
        target_example = next(city for city in expected.values() if " " not in city)
        tasks.append(
            _task(
                f"sygus-addr-{index + 1}",
                "SyGuS",
                "address",
                raw,
                expected,
                target_example=target_example,
                target_generalize=1,
                description="Extract the city name from a US address",
            )
        )
    return tasks


# ----------------------------------------------------------------------
# FlashFill-style scenarios (10)
# ----------------------------------------------------------------------
def _flashfill_tasks() -> List[TransformationTask]:
    tasks = []

    raw, expected = gen.log_entries(FLASHFILL_SIZE, seed=600)
    tasks.append(
        _task(
            "flashfill-log-status", "FlashFill", "log entry", raw, expected,
            target_notation="<D>3",
            description="Extract the HTTP status code from a log line",
        )
    )

    raw, expected = gen.phone_numbers(
        FLASHFILL_SIZE, ["paren_space", "dashes", "dots"], seed=601, desired="dashes"
    )
    tasks.append(
        _task(
            "flashfill-phone", "FlashFill", "phone number", raw, expected,
            target_example=next(iter(expected.values())),
            description="Normalize phone numbers to XXX-XXX-XXXX",
        )
    )

    raw, expected = gen.human_names(FLASHFILL_SIZE, seed=602)
    tasks.append(
        _task(
            "flashfill-names", "FlashFill", "human name", raw, expected,
            target_example=next(iter(expected.values())),
            target_generalize=1,
            description="Normalize names to 'Last, F.' (paper Example 9 family)",
        )
    )

    raw, expected = gen.dates(FLASHFILL_SIZE, seed=603)
    tasks.append(
        _task(
            "flashfill-dates", "FlashFill", "date", raw, expected,
            target_example=next(iter(expected.values())),
            description="Normalize dates to MM/DD/YYYY",
        )
    )

    raw, expected = gen.name_position_pairs(FLASHFILL_SIZE, seed=604)
    tasks.append(
        _task(
            "flashfill-name-position", "FlashFill", "name and position", raw, expected,
            target_example=next(iter(expected.values())),
            target_generalize=1,
            description="Extract the position from 'Name (Position)'",
        )
    )

    raw, expected = gen.file_paths(FLASHFILL_SIZE, seed=605)
    tasks.append(
        _task(
            "flashfill-file-name", "FlashFill", "file directory", raw, expected,
            target_example=next(iter(expected.values())),
            target_generalize=1,
            description="Extract the file name from a path",
        )
    )

    raw, expected = gen.urls(FLASHFILL_SIZE, seed=606)
    tasks.append(
        _task(
            "flashfill-url-host", "FlashFill", "url", raw, expected,
            target_example=next(iter(expected.values())),
            target_generalize=1,
            description="Extract the host from a URL",
        )
    )

    raw, expected = gen.product_ids(FLASHFILL_SIZE, seed=607)
    tasks.append(
        _task(
            "flashfill-product-ids", "FlashFill", "product name", raw, expected,
            target_example=next(
                value for value in expected.values() if value[0].isupper()
            ),
            description="Normalize product identifiers to ABC-1234",
        )
    )

    raw, expected = gen.currency_amounts(FLASHFILL_SIZE, seed=608)
    tasks.append(
        _task(
            "flashfill-currency", "FlashFill", "product name", raw, expected,
            target_example=next(iter(expected.values())),
            description="Normalize prices to $X.YY",
        )
    )

    # The paper's "Example 13" needs a conditional on content ("contains
    # the keyword picture"), which UniFi cannot express; two rows share a
    # pattern but need different outputs, so neither CLX nor the
    # pattern-conditional FlashFill baseline can be perfect here.
    raw, expected = _content_conditional_rows(FLASHFILL_SIZE, seed=609)
    tasks.append(
        _task(
            "flashfill-conditional", "FlashFill", "log entry", raw, expected,
            target_notation="<L>+",
            description="Keep the keyword for picture rows, else the extension "
            "(requires a content conditional)",
        )
    )
    return tasks


def _content_conditional_rows(count: int, seed: int) -> Tuple[List[str], Dict[str, str]]:
    """Rows whose desired output depends on content, not pattern."""
    rng = make_rng(seed)
    raw: List[str] = []
    expected: Dict[str, str] = {}
    keywords = ["picture", "report", "invoice", "summary"]
    for index in range(count):
        keyword = rng.choice(keywords)
        name = gen.letters(rng, 5)
        value = f"{name}.{keyword}.pdf"
        raw.append(value)
        # Content conditional: 'picture' rows keep the keyword, others keep
        # the literal extension.
        expected[value] = keyword if keyword == "picture" else "pdf"
    return raw, expected


# ----------------------------------------------------------------------
# BlinkFill-style scenarios (4)
# ----------------------------------------------------------------------
def _blinkfill_tasks() -> List[TransformationTask]:
    tasks = []

    raw, expected = gen.city_country_pairs(BLINKFILL_SIZE, seed=700)
    tasks.append(
        _task(
            "blinkfill-city-country", "BlinkFill", "city name and country", raw, expected,
            target_example="Paris (France)",
            target_generalize=1,
            description="Normalize 'City, Country' to 'City (Country)'",
        )
    )

    raw, expected = gen.human_names(BLINKFILL_SIZE, seed=701)
    tasks.append(
        _task(
            "blinkfill-names", "BlinkFill", "human name", raw, expected,
            target_example=next(iter(expected.values())),
            target_generalize=1,
            description="Normalize names to 'Last, F.'",
        )
    )

    raw, expected = gen.medical_codes(BLINKFILL_SIZE, seed=702)
    tasks.append(
        _task(
            "blinkfill-medical-codes", "BlinkFill", "product id", raw, expected,
            target_example=next(iter(expected.values())),
            target_generalize=1,
            description="Normalize CPT billing codes to [CPT-XXXXX] (paper Example 5)",
        )
    )

    raw, expected = gen.addresses(BLINKFILL_SIZE, seed=703)
    single = {value: city for value, city in expected.items() if " " not in city}
    raw = [value for value in raw if value in single]
    tasks.append(
        _task(
            "blinkfill-address", "BlinkFill", "address", raw, single,
            target_example=next(iter(single.values())),
            target_generalize=1,
            description="Extract the city name from an address",
        )
    )
    return tasks


# ----------------------------------------------------------------------
# PredProg-style scenarios (3)
# ----------------------------------------------------------------------
def _predprog_tasks() -> List[TransformationTask]:
    tasks = []

    raw, expected = gen.human_names(PREDPROG_SIZE, seed=800)
    tasks.append(
        _task(
            "predprog-names", "PredProg", "human name", raw, expected,
            target_example=next(iter(expected.values())),
            target_generalize=1,
            description="Normalize names to 'Last, F.'",
        )
    )

    raw, expected = gen.addresses(PREDPROG_SIZE, seed=801)
    tasks.append(
        _task(
            "predprog-address", "PredProg", "address", raw, expected,
            target_example=next(city for city in expected.values() if " " not in city),
            target_generalize=1,
            description="Extract the city name from an address "
            "(explainability task 2; multi-word cities make it hard)",
        )
    )

    raw, expected = gen.addresses(PREDPROG_SIZE, seed=802)
    single = {value: city for value, city in expected.items() if " " not in city}
    raw = [value for value in raw if value in single]
    tasks.append(
        _task(
            "predprog-address-2", "PredProg", "address", raw, single,
            target_example=next(iter(single.values())),
            target_generalize=1,
            description="Extract the city name from an address (single-word cities)",
        )
    )
    return tasks


# ----------------------------------------------------------------------
# PROSE-style scenarios (3)
# ----------------------------------------------------------------------
def _prose_tasks() -> List[TransformationTask]:
    tasks = []

    raw, expected = gen.country_numbers(PROSE_SIZE, seed=900)
    tasks.append(
        _task(
            "prose-country-number", "PROSE", "country and number", raw, expected,
            target_notation="<D>+",
            description="Extract the number from 'Country 12345' rows",
        )
    )

    raw, expected = gen.emails(PROSE_SIZE, seed=901)
    tasks.append(
        _task(
            "prose-email-login", "PROSE", "email", raw, expected,
            target_notation="<L>+",
            description="Extract the login from an email address",
        )
    )

    # The popl-13-style mixture: human names, organisations and countries
    # with no shared syntax; the outputs span several patterns so a single
    # labelled target cannot cover them (hard for CLX, as in the paper).
    raw, expected = _popl13_rows(PROSE_SIZE, seed=902)
    tasks.append(
        _task(
            "prose-popl13-affiliations", "PROSE", "human name and affiliation", raw, expected,
            target_example="INRIA",
            target_generalize=1,
            description="Extract the affiliation between the two commas",
        )
    )
    return tasks


def _popl13_rows(count: int, seed: int) -> Tuple[List[str], Dict[str, str]]:
    """'Name, Affiliation, Country' rows where affiliations have no shared syntax."""
    rng = make_rng(seed)
    affiliations = [
        "INRIA", "MIT", "Univ. of California", "ETH Zurich", "MSR",
        "Univ. of Michigan", "CMU", "EPFL",
    ]
    countries = ["France", "USA", "Switzerland", "UK", "Germany"]
    raw: List[str] = []
    expected: Dict[str, str] = {}
    for _ in range(count):
        first = rng.choice(gen.FIRST_NAMES)
        last = rng.choice(gen.LAST_NAMES)
        affiliation = rng.choice(affiliations)
        country = rng.choice(countries)
        value = f"{first} {last}, {affiliation}, {country}"
        raw.append(value)
        expected[value] = affiliation
    return raw, expected


# ----------------------------------------------------------------------
# Public assembly
# ----------------------------------------------------------------------
def sygus_tasks() -> List[TransformationTask]:
    """The 27 SyGuS-style scenarios."""
    return (
        _sygus_phone_tasks()
        + _sygus_name_tasks()
        + _sygus_car_tasks()
        + _sygus_university_tasks()
        + _sygus_address_tasks()
    )


def flashfill_tasks() -> List[TransformationTask]:
    """The 10 FlashFill-style scenarios."""
    return _flashfill_tasks()


def blinkfill_tasks() -> List[TransformationTask]:
    """The 4 BlinkFill-style scenarios."""
    return _blinkfill_tasks()


def predprog_tasks() -> List[TransformationTask]:
    """The 3 PredProg-style scenarios."""
    return _predprog_tasks()


def prose_tasks() -> List[TransformationTask]:
    """The 3 PROSE-style scenarios."""
    return _prose_tasks()
