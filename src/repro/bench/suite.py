"""Assembly of the 47-task benchmark suite and its summary statistics.

:func:`benchmark_suite` returns the full suite; :func:`suite_statistics`
computes the per-source rows of the paper's Table 6 (number of tests,
average size, average/max string length, data types);
:func:`explainability_tasks` returns the three tasks of the Section 7.3
user study (Table 5) together with their comprehension quizzes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.bench import scenarios
from repro.bench.generators import phone_numbers
from repro.bench.task import TransformationTask


def benchmark_suite() -> List[TransformationTask]:
    """All 47 benchmark tasks, grouped by source family in a stable order."""
    return (
        scenarios.sygus_tasks()
        + scenarios.flashfill_tasks()
        + scenarios.blinkfill_tasks()
        + scenarios.predprog_tasks()
        + scenarios.prose_tasks()
    )


@dataclass(frozen=True)
class SourceStatistics:
    """One row of Table 6.

    Attributes:
        source: Benchmark family name.
        test_count: Number of tasks from this family.
        average_size: Mean number of rows per task.
        average_length: Mean raw string length across the family's rows.
        max_length: Maximum raw string length across the family's rows.
        data_types: Distinct data types covered, alphabetical.
    """

    source: str
    test_count: int
    average_size: float
    average_length: float
    max_length: int
    data_types: Tuple[str, ...]


def suite_statistics(tasks: Sequence[TransformationTask] | None = None) -> List[SourceStatistics]:
    """Per-source statistics of the suite (Table 6), plus an "Overall" row."""
    tasks = list(tasks) if tasks is not None else benchmark_suite()
    by_source: Dict[str, List[TransformationTask]] = {}
    for task in tasks:
        by_source.setdefault(task.source, []).append(task)

    rows: List[SourceStatistics] = []
    for source in ("SyGuS", "FlashFill", "BlinkFill", "PredProg", "PROSE"):
        members = by_source.get(source, [])
        if not members:
            continue
        rows.append(_statistics_for(source, members))
    rows.append(_statistics_for("Overall", tasks))
    return rows


def _statistics_for(source: str, tasks: Sequence[TransformationTask]) -> SourceStatistics:
    lengths = [len(value) for task in tasks for value in task.inputs]
    return SourceStatistics(
        source=source,
        test_count=len(tasks),
        average_size=sum(task.size for task in tasks) / len(tasks),
        average_length=sum(lengths) / len(lengths),
        max_length=max(lengths),
        data_types=tuple(sorted({task.data_type for task in tasks})),
    )


# ----------------------------------------------------------------------
# Explainability study tasks (Table 5) and quizzes (Appendix C)
# ----------------------------------------------------------------------
def explainability_tasks() -> List[TransformationTask]:
    """The three tasks of the Section 7.3 study (Table 5).

    * task 1 — human names, 10 rows (FlashFill "Example 11" family);
    * task 2 — addresses, 10 rows (PredProg "Example 3" family);
    * task 3 — phone numbers, 100 rows (SyGuS "phone-10-long" family).
    """
    flashfill = {task.task_id: task for task in scenarios.flashfill_tasks()}
    predprog = {task.task_id: task for task in scenarios.predprog_tasks()}

    task1 = flashfill["flashfill-names"]
    task2 = predprog["predprog-address"]

    raw, expected = phone_numbers(
        100, ["paren_space", "dashes", "dots", "plus_one"], seed=999, desired="dashes"
    )
    task3 = TransformationTask(
        task_id="sygus-phone-10-long",
        source="SyGuS",
        data_type="phone number",
        inputs=raw,
        expected=expected,
        target_notation="<D>3'-'<D>3'-'<D>4",
        description="Normalize 100 phone numbers to XXX-XXX-XXXX (explainability task 3)",
    )
    return [task1, task2, task3]


def explainability_quizzes() -> List[Tuple[TransformationTask, List["QuizQuestion"]]]:
    """The three tasks paired with their Appendix-C-style quizzes."""
    # Imported here to keep repro.bench importable without pulling in the
    # simulation package (which itself depends on repro.bench).
    from repro.simulation.comprehension import build_quiz

    task1, task2, task3 = explainability_tasks()

    quiz1 = build_quiz(
        task1,
        seen_format_input="Barack Obama",
        seen_format_output="Obama, B.",
        novel_format_input="Obama, Barack Hussein",
        novel_format_output="Obama, Barack Hussein",
    )
    quiz2 = build_quiz(
        task2,
        seen_format_input="155 Main St, Denver, CO 92173",
        seen_format_output="Denver",
        novel_format_input="12 South Michigan Ave, Chicago",
        novel_format_output="12 South Michigan Ave, Chicago",
    )
    quiz3 = build_quiz(
        task3,
        seen_format_input="(844) 332-2820",
        seen_format_output="844-332-2820",
        novel_format_input="+1 (844) 332-282 ext57",
        novel_format_output="+1 (844) 332-282 ext57",
    )
    return [(task1, quiz1), (task2, quiz2), (task3, quiz3)]
