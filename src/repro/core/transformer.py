"""Applying a synthesized program to a whole column.

Since the engine split, this module is a thin compatibility wrapper:
:func:`transform_column` compiles the program on the fly and hands the
batch to :class:`repro.engine.executor.TransformEngine`.  Callers that
apply the same program repeatedly should compile once themselves (via
:meth:`repro.core.session.CLXSession.compile` or
:class:`repro.engine.compiled.CompiledProgram`) and reuse the engine.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.result import TransformReport
from repro.dsl.ast import UniFiProgram
from repro.patterns.pattern import Pattern


def transform_column(
    program: UniFiProgram,
    values: Sequence[str],
    target: Pattern,
) -> TransformReport:
    """Apply ``program`` to every value of a column.

    Values already matching the target pattern are passed through
    unchanged (and recorded as matched-by-target) rather than being run
    through a branch, mirroring CLX's behaviour of leaving well-formatted
    data alone.

    Args:
        program: The synthesized UniFi program.
        values: Raw column values.
        target: Target pattern (used both for the pass-through check and
            for the report's conformance statistics).
    """
    from repro.engine.executor import TransformEngine  # local import avoids cycle at module load

    return TransformEngine.from_program(program, target).run(values)
