"""Applying a synthesized program to a whole column."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.result import TransformReport
from repro.dsl.ast import UniFiProgram
from repro.dsl.interpreter import apply_program
from repro.patterns.pattern import Pattern


def transform_column(
    program: UniFiProgram,
    values: Sequence[str],
    target: Pattern,
) -> TransformReport:
    """Apply ``program`` to every value of a column.

    Values already matching the target pattern are passed through
    unchanged (and recorded as matched-by-target) rather than being run
    through a branch, mirroring CLX's behaviour of leaving well-formatted
    data alone.

    Args:
        program: The synthesized UniFi program.
        values: Raw column values.
        target: Target pattern (used both for the pass-through check and
            for the report's conformance statistics).
    """
    from repro.patterns.matching import matches  # local import avoids cycle at module load

    outputs: List[str] = []
    matched: List[Optional[Pattern]] = []
    for value in values:
        if matches(value, target):
            outputs.append(value)
            matched.append(target)
            continue
        outcome = apply_program(program, value)
        outputs.append(outcome.output)
        matched.append(outcome.pattern if outcome.matched else None)
    return TransformReport(
        inputs=list(values),
        outputs=outputs,
        matched_pattern=matched,
        target=target,
    )
