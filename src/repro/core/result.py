"""Result objects returned when a CLX program is applied to a column."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.patterns.matching import matches
from repro.patterns.pattern import Pattern


@dataclass
class TransformReport:
    """Outcome of transforming one column with a synthesized program.

    Attributes:
        inputs: The raw input values, in order.
        outputs: The transformed values, parallel to ``inputs``; values
            that matched no branch come through unchanged.
        matched_pattern: The source pattern whose branch transformed each
            value, or ``None`` for unmatched/flagged values.
        target: The target pattern the transformation aims for.
    """

    inputs: List[str]
    outputs: List[str]
    matched_pattern: List[Optional[Pattern]]
    target: Pattern

    def __post_init__(self) -> None:
        if not (len(self.inputs) == len(self.outputs) == len(self.matched_pattern)):
            raise ValueError("inputs, outputs and matched_pattern must be parallel")

    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        """Number of rows transformed."""
        return len(self.inputs)

    @property
    def flagged(self) -> List[str]:
        """Input values that matched no branch (left unchanged, flagged)."""
        return [
            value
            for value, pattern in zip(self.inputs, self.matched_pattern)
            if pattern is None
        ]

    @property
    def flagged_count(self) -> int:
        """Number of flagged rows."""
        return len(self.flagged)

    @property
    def conforming_count(self) -> int:
        """Number of output values that match the target pattern."""
        return sum(1 for value in self.outputs if matches(value, self.target))

    @property
    def conforming_fraction(self) -> float:
        """Fraction of outputs matching the target pattern (0.0 for empty input)."""
        if not self.outputs:
            return 0.0
        return self.conforming_count / len(self.outputs)

    @property
    def is_perfect(self) -> bool:
        """True when every output matches the target pattern."""
        return self.row_count > 0 and self.conforming_count == self.row_count

    def failures(self) -> List[Tuple[str, str]]:
        """(input, output) pairs whose output does not match the target."""
        return [
            (raw, out)
            for raw, out in zip(self.inputs, self.outputs)
            if not matches(out, self.target)
        ]

    def pairs(self) -> List[Tuple[str, str]]:
        """All (input, output) pairs, in order."""
        return list(zip(self.inputs, self.outputs))

    def by_source_pattern(self) -> Dict[Optional[Pattern], List[Tuple[str, str]]]:
        """Group (input, output) pairs by the source pattern that handled them."""
        grouped: Dict[Optional[Pattern], List[Tuple[str, str]]] = {}
        for raw, out, pattern in zip(self.inputs, self.outputs, self.matched_pattern):
            grouped.setdefault(pattern, []).append((raw, out))
        return grouped
