"""Preview table (paper Figure 8): sample input/output pairs per pattern.

The preview is part of what makes CLX programs verifiable: for every
suggested Replace operation the user sees a handful of concrete rows and
what they will become, without reading the whole column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.result import TransformReport
from repro.patterns.pattern import Pattern
from repro.util.text import format_table, truncate


@dataclass(frozen=True)
class PreviewRow:
    """One row of the preview table.

    Attributes:
        source_pattern: Notation of the source pattern handling the row
            ("(flagged)" when no branch matched).
        input_value: The raw value.
        output_value: The transformed value.
    """

    source_pattern: str
    input_value: str
    output_value: str


def preview_table(report: TransformReport, per_pattern: int = 3) -> List[PreviewRow]:
    """Build preview rows: up to ``per_pattern`` examples per source pattern.

    Args:
        report: A transform report from :func:`repro.core.transformer.transform_column`.
        per_pattern: Number of sample rows per pattern.
    """
    rows: List[PreviewRow] = []
    for pattern, pairs in report.by_source_pattern().items():
        label = pattern.notation() if isinstance(pattern, Pattern) else "(flagged)"
        for raw, out in pairs[:per_pattern]:
            rows.append(PreviewRow(source_pattern=label, input_value=raw, output_value=out))
    return rows


def render_preview(rows: Sequence[PreviewRow], width: int = 40) -> str:
    """Render preview rows as an aligned plain-text table."""
    return format_table(
        ["source pattern", "input", "output"],
        [
            (row.source_pattern, truncate(row.input_value, width), truncate(row.output_value, width))
            for row in rows
        ],
    )
