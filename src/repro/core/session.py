"""The CLX interactive session — Cluster, Label, Transform (Section 3.2).

:class:`CLXSession` models the paper's interaction loop programmatically:

1. construct the session with a column of raw strings — the data is
   immediately profiled into a pattern cluster hierarchy (*Cluster*);
2. inspect :meth:`CLXSession.pattern_summary` / :attr:`CLXSession.hierarchy`
   and pick a target pattern with :meth:`CLXSession.label_target` (either
   one of the discovered patterns or a manually specified one) (*Label*);
3. :meth:`CLXSession.synthesize` produces the UniFi program,
   :meth:`CLXSession.explain` the Replace operations shown to the user,
   :meth:`CLXSession.transform` the transformed column together with the
   post-transformation pattern clusters (*Transform*);
4. if a suggested plan is wrong, :meth:`CLXSession.repair_candidates`
   lists the alternatives and :meth:`CLXSession.apply_repair` swaps one in.

The session is the *interaction* half of CLX.  Execution is delegated to
the stateless :mod:`repro.engine` layer: :meth:`CLXSession.compile`
exports the verified program as a serializable
:class:`~repro.engine.compiled.CompiledProgram`, and ``transform`` /
``preview`` / ``transformed_summary`` all run through one cached
:class:`~repro.engine.executor.TransformEngine` (the cached report is
invalidated whenever the target or the program changes).

Example:
    >>> from repro import CLXSession
    >>> session = CLXSession(["734-555-0199", "(734) 555-0123", "734.555.0111"])
    >>> target = session.label_target_from_string("(734) 555-0123")
    >>> report = session.transform()
    >>> report.is_perfect
    True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.clustering.hierarchy import PatternHierarchy
from repro.clustering.profiler import PatternProfiler
from repro.core.preview import PreviewRow, preview_table
from repro.core.result import TransformReport
from repro.dsl.ast import AtomicPlan, UniFiProgram
from repro.dsl.explain import explain_program
from repro.engine.compiled import CompiledProgram
from repro.engine.executor import TransformEngine
from repro.dsl.replace import ReplaceOperation
from repro.patterns.matching import pattern_of_string
from repro.patterns.parse import parse_pattern
from repro.patterns.pattern import Pattern
from repro.synthesis.repair import RepairCandidates, repair_options
from repro.synthesis.synthesizer import SynthesisResult, Synthesizer
from repro.util.errors import ValidationError


@dataclass
class PatternSummary:
    """One line of the pattern list shown to the user after clustering.

    Attributes:
        pattern: The leaf pattern.
        count: Number of rows in its cluster.
        samples: A few example values from the cluster.
    """

    pattern: Pattern
    count: int
    samples: List[str]


class CLXSession:
    """Programmatic CLX session over one column of string data.

    Args:
        values: Raw column values (must be non-empty).
        profiler: Optional custom :class:`~repro.clustering.profiler.PatternProfiler`.
        synthesizer: Optional custom :class:`~repro.synthesis.synthesizer.Synthesizer`.

    Raises:
        ValidationError: If ``values`` is empty.
    """

    def __init__(
        self,
        values: Sequence[str],
        profiler: Optional[PatternProfiler] = None,
        synthesizer: Optional[Synthesizer] = None,
    ) -> None:
        self._values: Optional[List[str]] = [str(value) for value in values]
        if not self._values:
            raise ValidationError("CLXSession requires at least one value")
        self._profiler = profiler or PatternProfiler()
        self._synthesizer = synthesizer or Synthesizer()
        self._hierarchy: PatternHierarchy = self._profiler.profile(self._values)
        self._target: Optional[Pattern] = None
        self._result: Optional[SynthesisResult] = None
        self._engine: Optional[TransformEngine] = None
        self._report: Optional[TransformReport] = None

    @classmethod
    def from_profile(
        cls,
        profile: "ColumnProfile | PatternHierarchy",
        synthesizer: Optional[Synthesizer] = None,
    ) -> "CLXSession":
        """Open a session on an already-computed profile, without raw data.

        This is the constant-memory entry point: profile a huge column
        once with :class:`~repro.clustering.incremental.IncrementalProfiler`
        (possibly sharded and merged), then label and synthesize against
        the resulting hierarchy as usual.  The session holds no raw
        column, so :meth:`transform`, :meth:`preview` and friends raise
        :class:`~repro.util.errors.ValidationError` — :meth:`compile` the
        program and run it through a
        :class:`~repro.engine.executor.TransformEngine` instead.

        Args:
            profile: A :class:`~repro.clustering.incremental.ColumnProfile`
                or an already-lowered :class:`PatternHierarchy`.
            synthesizer: Optional custom synthesizer.

        Raises:
            ValidationError: If the profile covers no rows.
        """
        from repro.clustering.incremental import ColumnProfile

        if isinstance(profile, ColumnProfile):
            hierarchy = profile.to_hierarchy()
        elif isinstance(profile, PatternHierarchy):
            hierarchy = profile
        else:
            raise ValidationError(
                "from_profile expects a ColumnProfile or PatternHierarchy, "
                f"got {type(profile).__name__}"
            )
        if not hierarchy.leaf_nodes:
            raise ValidationError("cannot open a session on an empty profile")

        session = cls.__new__(cls)
        session._values = None
        session._profiler = PatternProfiler()
        session._synthesizer = synthesizer or Synthesizer()
        session._hierarchy = hierarchy
        session._target = None
        session._result = None
        session._engine = None
        session._report = None
        return session

    @classmethod
    def from_dataset(
        cls,
        dataset,
        column,
        delimiter: str = ",",
        workers: Optional[int] = None,
        synthesizer: Optional[Synthesizer] = None,
    ) -> "CLXSession":
        """Open a session on a partitioned dataset, profiled in place.

        The partition-native entry point: ``dataset`` may be a resolved
        :class:`~repro.dataset.dataset.Dataset` or any spec(s) its
        :meth:`~repro.dataset.dataset.Dataset.resolve` accepts (paths,
        globs, directories, mixed CSV/JSONL).  The column is profiled
        across every part — in parallel when ``workers`` exceeds 1 —
        and the session opens on the merged profile, so it behaves like
        :meth:`from_profile` (no raw column: :meth:`compile` and apply
        through an engine).

        Args:
            dataset: A dataset, or specs to resolve into one.
            column: Column name (or zero-based index, CSV parts only).
            delimiter: CSV delimiter.
            workers: Worker processes for profiling; ``None``/1 profiles
                serially in process.
            synthesizer: Optional custom synthesizer.
        """
        from repro.clustering.parallel import ParallelProfiler

        profiler = ParallelProfiler(workers=workers or 1)
        profile = profiler.profile_dataset(dataset, column, delimiter=delimiter)
        return cls.from_profile(profile, synthesizer=synthesizer)

    def _require_values(self, operation: str) -> List[str]:
        """The raw column, or a clear error for profile-backed sessions."""
        if self._values is None:
            raise ValidationError(
                f"{operation} needs the raw column, but this session was opened "
                "from a profile; compile() the program and apply it with a "
                "TransformEngine instead"
            )
        return self._values

    def _invalidate_execution(self) -> None:
        """Drop the cached engine and report after the program changed."""
        self._engine = None
        self._report = None

    # ------------------------------------------------------------------
    # Cluster
    # ------------------------------------------------------------------
    @property
    def values(self) -> List[str]:
        """The raw column values the session was created with.

        Raises:
            ValidationError: If the session was opened via
                :meth:`from_profile` and holds no raw column.
        """
        return list(self._require_values("values"))

    @property
    def hierarchy(self) -> PatternHierarchy:
        """The pattern cluster hierarchy built at construction time."""
        return self._hierarchy

    def pattern_summary(self, max_samples: int = 3) -> List[PatternSummary]:
        """Leaf patterns with row counts and samples, largest cluster first.

        This is the list the user sees first (Figure 3 of the paper).
        """
        summaries = []
        for node in sorted(self._hierarchy.leaf_nodes, key=lambda n: -n.size):
            assert node.cluster is not None
            summaries.append(
                PatternSummary(
                    pattern=node.pattern,
                    count=node.size,
                    samples=node.cluster.sample(max_samples),
                )
            )
        return summaries

    # ------------------------------------------------------------------
    # Label
    # ------------------------------------------------------------------
    @property
    def target(self) -> Optional[Pattern]:
        """The labelled target pattern, if any."""
        return self._target

    def label_target(self, target: Pattern) -> Pattern:
        """Label ``target`` as the desired pattern and reset any prior synthesis."""
        self._target = target
        self._result = None
        self._invalidate_execution()
        return target

    def label_target_from_string(self, example: str, generalize: int = 0) -> Pattern:
        """Label the target by giving an example value already in the desired form.

        The example's leaf pattern becomes the target — this mirrors the
        common case where some of the raw data already exists in the
        desired format and the user simply clicks that cluster.

        Args:
            example: A value in the desired format.
            generalize: Number of refinement rounds to apply to the
                example's pattern before labelling it (0 = the exact leaf
                pattern, 1 = quantifiers generalized to ``+``, …).  This
                corresponds to the user clicking a *parent* pattern in
                the hierarchy instead of a leaf, which is how the paper's
                Example 5/6 targets (``<U>+``, ``<L>+`` …) arise.
        """
        from repro.patterns.generalize import GENERALIZATION_STRATEGIES

        if not 0 <= generalize <= len(GENERALIZATION_STRATEGIES):
            raise ValidationError(
                f"generalize must be between 0 and {len(GENERALIZATION_STRATEGIES)}, "
                f"got {generalize}"
            )
        pattern = pattern_of_string(example)
        for strategy in GENERALIZATION_STRATEGIES[:generalize]:
            pattern = strategy(pattern)
        return self.label_target(pattern)

    def label_target_from_notation(self, notation: str) -> Pattern:
        """Label the target by pattern notation, e.g. ``"<D>3'-'<D>3'-'<D>4"``.

        Used when no input data matches the desired pattern and the user
        specifies the target form manually.
        """
        return self.label_target(parse_pattern(notation))

    # ------------------------------------------------------------------
    # Transform
    # ------------------------------------------------------------------
    def synthesize(self) -> SynthesisResult:
        """Synthesize (or return the cached) UniFi program for the labelled target.

        Raises:
            ValidationError: If no target has been labelled yet.
        """
        if self._target is None:
            raise ValidationError("label a target pattern before synthesizing")
        if self._result is None:
            self._result = self._synthesizer.synthesize(self._hierarchy, self._target)
        return self._result

    @property
    def program(self) -> UniFiProgram:
        """The synthesized UniFi program (synthesizing on first access)."""
        return self.synthesize().program

    def explain(self) -> List[ReplaceOperation]:
        """The program explained as regexp Replace operations (Figure 4)."""
        return explain_program(self.program)

    def compile(self, metadata: Optional[Dict[str, object]] = None) -> CompiledProgram:
        """Export the synthesized program as a serializable compiled artifact.

        The returned :class:`~repro.engine.compiled.CompiledProgram`
        captures the program *and* the target pattern, round-trips
        through JSON (``dumps``/``loads``), and outlives the session —
        this is the compile-once half of compile-once/apply-anywhere.

        Args:
            metadata: Optional JSON-serializable annotations (e.g. the
                source column name) stored on the artifact.
        """
        result = self.synthesize()
        return CompiledProgram(result.program, result.target, metadata=metadata)

    def analyze(self, name: str = "<session>", probe: bool = True):
        """Lint the synthesized program against the session's own profile.

        Runs the full artifact analyzer (dead arms, overlaps, regex
        safety, plan sanity) plus the coverage audit over this session's
        pattern hierarchy — the exemplars the program was synthesized
        from.  Returns an :class:`~repro.analysis.analyzer.AnalysisReport`.

        Args:
            name: Location prefix used in findings.
            probe: Whether to run the empirical ReDoS probe on
                structurally flagged regexes.
        """
        from repro.analysis import analyze_program

        return analyze_program(
            self.compile(), name=name, probe=probe, hierarchy=self._hierarchy
        )

    def verify(self, name: str = "<session>"):
        """Flow-verify the synthesized program: the ``verified`` proof.

        Runs only the output-language flow verdicts (rules
        CLX015–CLX018) over the compiled program and returns
        ``(report, verified)``: an
        :class:`~repro.analysis.analyzer.AnalysisReport` plus the proof
        bit — ``True`` iff every live transforming branch provably emits
        only target-shaped values, so applying the program never
        produces a malformed value it didn't already receive.

        Args:
            name: Location prefix used in findings.
        """
        from repro.analysis import verify_program

        return verify_program(self.compile(), name=name)

    def engine(self) -> TransformEngine:
        """The (cached) stateless engine executing the current program.

        The engine is rebuilt lazily whenever the target is relabelled or
        a repair changes the program.
        """
        if self._engine is None:
            self._engine = TransformEngine(self.compile())
        return self._engine

    def transform(self) -> TransformReport:
        """Apply the synthesized program to the session's data.

        The report is computed once by the session's engine and cached;
        ``preview`` and ``transformed_summary`` share the same run, and
        the cache is invalidated by ``label_target`` and the repair
        methods.
        """
        if self._report is None:
            self._report = self.engine().run(self._require_values("transform()"))
        return self._report

    def apply_table(
        self,
        rows,
        columns,
        workers: Optional[int] = None,
        chunk_size: int = 8192,
    ) -> List[Dict[str, object]]:
        """Apply this session's verified program to columns of a table.

        The apply-anywhere bridge at session level: the program is
        synthesized once (under the usual labelling/verification flow)
        and then run over any table — including one the session never
        profiled — through the one-pass
        :meth:`~repro.engine.executor.TransformEngine.transform_table`
        machinery, optionally fanned across worker processes.

        Args:
            rows: Iterable of row mappings (e.g. ``csv.DictReader`` rows).
                Rows are copied; the input is never mutated.
            columns: A column name, or a sequence of column names, each
                transformed by this session's program.
            workers: ``None`` or 1 runs in-process; larger values fan
                chunks of rows across worker processes.
            chunk_size: Rows per chunk / worker task.

        Returns:
            New row dicts with each named column replaced by its
            transformed value.

        Raises:
            ValidationError: If no target has been labelled, a named
                column is missing from some row, or ``workers`` /
                ``chunk_size`` is invalid.
        """
        names = [columns] if isinstance(columns, str) else list(columns)
        if not names:
            raise ValidationError("apply_table needs at least one column name")
        engine = self.engine()
        return TransformEngine.transform_table(
            rows,
            {name: engine for name in names},
            workers=workers,
            chunk_size=chunk_size,
        )

    def apply_dataset(
        self,
        dataset,
        columns,
        output=None,
        output_dir=None,
        stream=None,
        out_format: str = "csv",
        delimiter: str = ",",
        in_place: bool = False,
        workers: Optional[int] = None,
        chunk_size: int = 4096,
        shard_bytes: int = 1 << 20,
        on_error: str = "abort",
        quarantine_dir=None,
        shard_timeout: Optional[float] = None,
        max_retries: int = 0,
        resume: bool = False,
    ):
        """Apply this session's verified program across a partitioned dataset.

        The on-disk sibling of :meth:`apply_table`: ``dataset`` may be a
        resolved :class:`~repro.dataset.dataset.Dataset` or any spec(s)
        (paths, globs, directories) with CSV and JSONL parts mixed
        freely.  Partitions either splice into one ``output`` file (or
        open ``stream``) in stable part order, or — with ``output_dir``
        — write one output per partition, preserving names; either way
        parts fan out across the worker pool together and the sink
        bytes are identical at any worker count.

        Args:
            dataset: A dataset, or specs to resolve into one.
            columns: A column name, or a sequence of column names, each
                transformed by this session's program.
            output: Splice everything into this one file.
            output_dir: One output per partition into this directory.
            stream: Splice into an open text stream.
            out_format: ``"csv"`` (default) or ``"jsonl"``.
            delimiter: CSV delimiter.
            in_place: Overwrite the source columns instead of adding
                ``<column>_transformed`` ones.
            workers: ``None`` = all cores; 1 runs in-process.
            chunk_size: Physical lines per transform batch per worker.
            shard_bytes: Partitions larger than this split into
                record-aligned byte-range shards.
            on_error: ``"abort"`` or ``"quarantine"`` (divert bad
                records to ``quarantine_dir`` instead of failing).
            quarantine_dir: Quarantine sink directory (one JSONL file
                per partition); required with quarantine mode.
            shard_timeout: Seconds before an in-flight shard counts as
                hung (``None`` = no limit).
            max_retries: Infrastructure-fault retries per shard.
            resume: With ``output_dir``, skip manifest-complete parts.

        Returns:
            The :class:`~repro.engine.parallel.DatasetApplyResult`.

        Raises:
            ValidationError: If no target has been labelled, no (or not
                exactly one) destination is given, or a knob is invalid.
        """
        return self.engine().apply_dataset(
            dataset,
            columns,
            output=output,
            output_dir=output_dir,
            stream=stream,
            out_format=out_format,
            delimiter=delimiter,
            in_place=in_place,
            workers=workers,
            chunk_size=chunk_size,
            shard_bytes=shard_bytes,
            on_error=on_error,
            quarantine_dir=quarantine_dir,
            shard_timeout=shard_timeout,
            max_retries=max_retries,
            resume=resume,
        )

    def transformed_summary(self, max_samples: int = 3) -> List[PatternSummary]:
        """Pattern clusters of the *transformed* data (Figure 2 of the paper)."""
        report = self.transform()
        hierarchy = self._profiler.profile(report.outputs)
        summaries = []
        for node in sorted(hierarchy.leaf_nodes, key=lambda n: -n.size):
            assert node.cluster is not None
            summaries.append(
                PatternSummary(
                    pattern=node.pattern,
                    count=node.size,
                    samples=node.cluster.sample(max_samples),
                )
            )
        return summaries

    def preview(self, per_pattern: int = 3) -> List[PreviewRow]:
        """Preview table rows (Figure 8): sample input/output pairs per pattern."""
        return preview_table(self.transform(), per_pattern=per_pattern)

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def repair_candidates(self, source: Pattern) -> RepairCandidates:
        """Candidate plans for ``source`` (default first), for manual repair."""
        return repair_options(self.synthesize(), source)

    def apply_repair(self, source: Pattern, plan: AtomicPlan) -> UniFiProgram:
        """Replace the plan used for ``source`` and return the updated program."""
        result = self.synthesize()
        self._result = result.repaired(source, plan)
        self._invalidate_execution()
        return self._result.program

    def apply_conditional_repair(
        self,
        source: Pattern,
        guarded_plans: Sequence[tuple],
        default_plan: Optional[AtomicPlan] = None,
    ) -> UniFiProgram:
        """Split one branch into content-guarded branches (conditional repair).

        This is the "advanced conditionals" extension (paper §7.4 /
        Example 13): rows that share a *pattern* but need different
        treatments depending on their *content* get one guarded branch
        per case plus an optional unguarded fallback.

        Args:
            source: The source pattern whose branch is being split.
            guarded_plans: Sequence of ``(ContainsGuard, AtomicPlan)``
                pairs, checked in order.
            default_plan: Plan for rows matching the pattern but no guard;
                defaults to the branch's current plan.

        Returns:
            The updated program (also stored on the session).

        Raises:
            ValidationError: If ``source`` is not a branch of the current
                program or no guarded plan is given.
        """
        from repro.dsl.ast import Branch

        result = self.synthesize()
        current = result.program.branch_for(source)
        if current is None:
            raise ValidationError(f"{source.notation()} is not a source pattern of the program")
        if not guarded_plans:
            raise ValidationError("conditional repair needs at least one guarded plan")

        fallback = default_plan if default_plan is not None else current.plan
        new_branches = []
        for branch in result.program.branches:
            if branch.pattern != source:
                new_branches.append(branch)
                continue
            for guard, plan in guarded_plans:
                new_branches.append(Branch(pattern=source, plan=plan, guard=guard))
            new_branches.append(Branch(pattern=source, plan=fallback))
        program = UniFiProgram(new_branches)
        self._result = SynthesisResult(
            target=result.target,
            program=program,
            candidates=dict(result.candidates),
            uncovered=list(result.uncovered),
            already_target=list(result.already_target),
        )
        self._invalidate_execution()
        return program

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line, human-readable description of the current session state."""
        lines = ["CLX session", f"  rows: {self._hierarchy.total_rows}"]
        lines.append(f"  leaf patterns: {len(self._hierarchy.leaf_nodes)}")
        if self._target is not None:
            lines.append(f"  target: {self._target.notation()}")
        if self._result is not None:
            lines.append(f"  branches: {len(self._result.program)}")
            lines.append(f"  uncovered patterns: {len(self._result.uncovered)}")
        return "\n".join(lines)

    def interaction_counts(self) -> Dict[str, int]:
        """Counts used by the user-effort metrics of Section 7.

        Returns a mapping with ``patterns`` (leaf patterns the user must
        glance at), ``branches`` (Replace operations to verify) and
        ``uncovered`` (flagged patterns needing manual review).
        """
        result = self.synthesize() if self._target is not None else None
        return {
            "patterns": len(self._hierarchy.leaf_nodes),
            "branches": len(result.program) if result else 0,
            "uncovered": len(result.uncovered) if result else 0,
        }
