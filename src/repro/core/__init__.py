"""The CLX paradigm end-to-end: Cluster – Label – Transform (Section 3).

:class:`~repro.core.session.CLXSession` is the main public entry point of
the library.  It wraps the profiler, synthesizer, interpreter and
explainer into the interaction loop the paper describes: profile the
data, let the user label a target pattern, synthesize the program, show
the explained Replace operations and the transformed pattern clusters,
and let the user repair individual plans.

The session covers *interaction* only; execution lives in the stateless
:mod:`repro.engine` layer, which the session delegates to via
:meth:`~repro.core.session.CLXSession.compile` and
:meth:`~repro.core.session.CLXSession.engine`.
"""

from repro.core.result import TransformReport
from repro.core.session import CLXSession
from repro.core.transformer import transform_column
from repro.core.preview import PreviewRow, preview_table

__all__ = [
    "CLXSession",
    "PreviewRow",
    "TransformReport",
    "preview_table",
    "transform_column",
]
