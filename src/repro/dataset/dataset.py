"""Resolving globs, directories, path lists, and URLs into partitions.

A :class:`Dataset` is nothing more than an ordered list of
:class:`DatasetPart` entries plus the rules that make partitioned inputs
predictable everywhere:

* **stable ordering** — parts are sorted by locator string and
  deduplicated, so ``part-2.csv`` never profiles before ``part-1.csv``
  whatever order the shell expanded the glob in;
* **format per file** — every suffix resolves through the IO backend
  registry (:func:`~repro.dataset.backends.backend_for_path`): ``.csv``
  is CSV, ``.jsonl``/``.ndjson`` is JSON Lines, ``.parquet`` /
  ``.arrow`` are columnar, and an *unregistered* suffix is a loud
  :class:`~repro.util.errors.CLXError` instead of the historical silent
  fall-back to CSV;
* **remote partitions** — ``scheme://`` specs resolve through the
  opener seam (``file://`` URLs become local paths, so globs and
  directories keep working; other schemes become single URL-addressed
  parts sized by the opener);
* **per-file schema check** — :meth:`Dataset.check_column` resolves the
  requested column against every part up front and names the offending
  file, instead of failing mid-stream three partitions in.
"""

from __future__ import annotations

import glob as globlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Union
from urllib.parse import urlsplit

from repro.util.errors import CLXError

#: File suffixes treated as JSON Lines partitions (kept for backward
#: compatibility; the backend registry is the source of truth).
JSONL_SUFFIXES = (".jsonl", ".ndjson")

#: Characters that make a spec a glob pattern rather than a literal path.
_GLOB_CHARS = ("*", "?", "[")


@dataclass(frozen=True)
class DatasetPart:
    """One file of a partitioned dataset.

    Attributes:
        path: The resolved file path (for a remote part, the URL's path
            component — it carries the partition's *name* for output
            naming; the bytes live behind :attr:`locator`).
        format: A backend name (``"csv"``, ``"jsonl"``, ``"parquet"``,
            ...), inferred from the suffix.
        size: File size in bytes at resolution time.
        url: The part's URL for remote partitions, ``None`` for local
            files.
    """

    path: Path
    format: str
    size: int
    url: Optional[str] = None

    @property
    def name(self) -> str:
        """The partition's file name (used to preserve names on output)."""
        return self.path.name

    @property
    def locator(self) -> str:
        """What readers open: the URL for remote parts, else the path."""
        return self.url if self.url is not None else str(self.path)


def _expand_spec(spec: str) -> List[Path]:
    """Expand one spec (literal path, glob pattern, or directory).

    Every spec must contribute at least one file — a typo'd glob that
    silently narrowed the dataset would profile a partial column and
    compile a wrong program with no diagnostic.
    """
    if any(char in spec for char in _GLOB_CHARS):
        matched = [Path(match) for match in globlib.glob(spec) if Path(match).is_file()]
        if not matched:
            raise CLXError(f"dataset input {spec!r} matches no file, directory, or glob")
        return matched
    path = Path(spec)
    if path.is_dir():
        # Directory mode skips hidden and marker files (.part.crc,
        # _SUCCESS, _metadata ...) the way dataset tools writing
        # partitioned output expect; name them explicitly to force.
        return [
            child
            for child in path.iterdir()
            if child.is_file() and not child.name.startswith((".", "_"))
        ]
    if path.is_file():
        return [path]
    raise CLXError(f"dataset input {spec!r} matches no file, directory, or glob")


def _remote_part(url: str, assume_csv: bool) -> DatasetPart:
    """Resolve one non-``file://`` URL spec into a URL-addressed part."""
    from repro.dataset.backends import backend_for_path, locator_size

    name_path = urlsplit(url).path
    if not name_path or name_path.endswith("/"):
        raise CLXError(
            f"dataset input {url!r} does not name a partition file; "
            "remote specs must address one object each"
        )
    backend = backend_for_path(name_path, assume_csv=assume_csv)
    return DatasetPart(
        path=Path(name_path),
        format=backend.name,
        size=locator_size(url),
        url=url,
    )


class Dataset:
    """An ordered, deduplicated list of partition files.

    Build one with :meth:`resolve` (or the module-level
    :func:`resolve_dataset`); construct directly only from already
    resolved :class:`DatasetPart` lists.
    """

    def __init__(self, parts: Sequence[DatasetPart]) -> None:
        if not parts:
            raise CLXError("a dataset needs at least one part")
        self._parts = list(parts)

    @classmethod
    def resolve(
        cls,
        specs: Union[str, Sequence[Union[str, Path]]],
        assume_csv: bool = False,
    ) -> "Dataset":
        """Resolve path/glob/directory/URL specs into a dataset.

        Args:
            specs: One spec or a sequence of specs.  A spec containing
                ``*``, ``?`` or ``[`` is a glob pattern; a directory
                spec takes every regular file directly inside it; a
                ``scheme://`` spec resolves through the opener seam
                (``file://`` becomes a local path spec); any other spec
                must name an existing file.
            assume_csv: Read *extensionless* partition files as CSV
                instead of failing on the unknown format — the
                one-release escape hatch for suffixless layouts.

        Raises:
            CLXError: If a spec matches nothing, nothing at all
                resolved, or a partition's suffix matches no registered
                IO backend.
        """
        from repro.dataset.backends import (
            backend_for_path,
            file_url_to_path,
            is_url,
            url_scheme,
        )

        if isinstance(specs, (str, Path)):
            specs = [specs]
        matched: List[Path] = []
        remote: List[DatasetPart] = []
        for spec in specs:
            text = str(spec)
            if is_url(text):
                if url_scheme(text) == "file":
                    matched.extend(_expand_spec(file_url_to_path(text)))
                else:
                    remote.append(_remote_part(text, assume_csv))
                continue
            matched.extend(_expand_spec(text))
        unique = sorted({str(path): path for path in matched}.values(), key=str)
        parts = {
            str(path): DatasetPart(
                path=path,
                format=backend_for_path(path, assume_csv=assume_csv).name,
                size=path.stat().st_size,
            )
            for path in unique
        }
        for part in remote:
            parts.setdefault(part.locator, part)
        if not parts:
            raise CLXError(
                "no input files resolved from: " + ", ".join(str(spec) for spec in specs)
            )
        return cls(sorted(parts.values(), key=lambda part: part.locator))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def parts(self) -> List[DatasetPart]:
        """The partition files, in stable sorted order."""
        return list(self._parts)

    @property
    def total_size(self) -> int:
        """Total bytes across all parts."""
        return sum(part.size for part in self._parts)

    def __len__(self) -> int:
        return len(self._parts)

    def __iter__(self) -> Iterator[DatasetPart]:
        return iter(self._parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dataset({len(self._parts)} part(s), {self.total_size} bytes)"

    def describe(self) -> str:
        """A short human-readable source description (for registry rows)."""
        if len(self._parts) == 1:
            return self._parts[0].name
        return f"{self._parts[0].name} (+{len(self._parts) - 1} more)"

    # ------------------------------------------------------------------
    # Schema checks
    # ------------------------------------------------------------------
    def header(self, delimiter: str = ",", strict: bool = True) -> List[str]:
        """The dataset-wide field order, taken from the first part.

        CSV parts define it with their header row, columnar parts with
        their file schema; a JSONL part defines it with the **union** of
        its records' keys in first-seen order (sparse keys are idiomatic
        JSONL, so the first record alone is not the schema — one
        streaming pass over the leading part, the same contract the
        profile side accepts).  A part that cannot supply a field order
        (an empty JSONL file) defers to the next part, so an empty
        leading partition cannot blank the schema.  This is the field
        order ``apply`` encodes sinks in and reconciles every later
        part against.

        With ``strict=False`` unparsable JSONL lines are skipped during
        the key scan (quarantine-mode pre-flight: those lines fail again
        during apply and are quarantined there, with context).

        Raises:
            CLXError: If no part can supply a field order.
            ValidationError: If the first CSV part has no header row.
        """
        from repro.dataset.backends import backend_by_name

        for part in self._parts:
            backend = backend_by_name(part.format)
            backend.require()
            order = backend.field_order(part, delimiter, strict=strict)
            if order is not None:
                return order
        raise CLXError(
            "cannot determine the dataset field order: every JSONL part is "
            "empty and no CSV part supplies a header"
        )

    def check_column(self, column: Union[str, int], delimiter: str = ",") -> None:
        """Verify every part can supply ``column``, naming failures.

        CSV and columnar parts must have a header/schema containing the
        column (by name or index); JSONL parts must parse a first
        object carrying the key when addressed by name (an index is
        meaningless for JSONL).

        Raises:
            ValidationError: Naming the first part that cannot supply
                the column.
        """
        from repro.dataset.backends import backend_by_name

        for part in self._parts:
            backend = backend_by_name(part.format)
            backend.require()
            backend.check_column(part, column, delimiter)

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def iter_values(self, column: Union[str, int], delimiter: str = ",") -> Iterator[str]:
        """Stream ``column`` across every part, in part order.

        Constant memory: each part is read line by line (row group by
        row group for columnar parts) with the same missing-column
        semantics as the byte-range profiling path (a short row
        contributes ``""``).
        """
        from repro.dataset.readers import iter_part_values

        for part in self._parts:
            yield from iter_part_values(part, column, delimiter)


def resolve_dataset(
    specs: Union[str, Sequence[Union[str, Path]]], assume_csv: bool = False
) -> Dataset:
    """Shorthand for :meth:`Dataset.resolve`."""
    return Dataset.resolve(specs, assume_csv=assume_csv)
