"""Resolving globs, directories, and path lists into ordered partitions.

A :class:`Dataset` is nothing more than an ordered list of
:class:`DatasetPart` entries plus the rules that make partitioned inputs
predictable everywhere:

* **stable ordering** — parts are sorted by path string and
  deduplicated, so ``part-2.csv`` never profiles before ``part-1.csv``
  whatever order the shell expanded the glob in;
* **format per file** — ``.jsonl`` / ``.ndjson`` parts are JSON Lines,
  everything else is CSV, so mixed partitions work;
* **per-file schema check** — :meth:`Dataset.check_column` resolves the
  requested column against every part up front and names the offending
  file, instead of failing mid-stream three partitions in.
"""

from __future__ import annotations

import glob as globlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.util.errors import CLXError, ValidationError

#: File suffixes treated as JSON Lines partitions.
JSONL_SUFFIXES = (".jsonl", ".ndjson")

#: Characters that make a spec a glob pattern rather than a literal path.
_GLOB_CHARS = ("*", "?", "[")


@dataclass(frozen=True)
class DatasetPart:
    """One file of a partitioned dataset.

    Attributes:
        path: The resolved file path.
        format: ``"csv"`` or ``"jsonl"``, inferred from the suffix.
        size: File size in bytes at resolution time.
    """

    path: Path
    format: str
    size: int

    @property
    def name(self) -> str:
        """The partition's file name (used to preserve names on output)."""
        return self.path.name


def _part_format(path: Path) -> str:
    return "jsonl" if path.suffix.lower() in JSONL_SUFFIXES else "csv"


def _expand_spec(spec: str) -> List[Path]:
    """Expand one spec (literal path, glob pattern, or directory).

    Every spec must contribute at least one file — a typo'd glob that
    silently narrowed the dataset would profile a partial column and
    compile a wrong program with no diagnostic.
    """
    if any(char in spec for char in _GLOB_CHARS):
        matched = [Path(match) for match in globlib.glob(spec) if Path(match).is_file()]
        if not matched:
            raise CLXError(f"dataset input {spec!r} matches no file, directory, or glob")
        return matched
    path = Path(spec)
    if path.is_dir():
        # Directory mode skips hidden and marker files (.part.crc,
        # _SUCCESS, _metadata ...) the way dataset tools writing
        # partitioned output expect; name them explicitly to force.
        return [
            child
            for child in path.iterdir()
            if child.is_file() and not child.name.startswith((".", "_"))
        ]
    if path.is_file():
        return [path]
    raise CLXError(f"dataset input {spec!r} matches no file, directory, or glob")


class Dataset:
    """An ordered, deduplicated list of partition files.

    Build one with :meth:`resolve` (or the module-level
    :func:`resolve_dataset`); construct directly only from already
    resolved :class:`DatasetPart` lists.
    """

    def __init__(self, parts: Sequence[DatasetPart]) -> None:
        if not parts:
            raise CLXError("a dataset needs at least one part")
        self._parts = list(parts)

    @classmethod
    def resolve(cls, specs: Union[str, Sequence[Union[str, Path]]]) -> "Dataset":
        """Resolve path/glob/directory specs into a dataset.

        Args:
            specs: One spec or a sequence of specs.  A spec containing
                ``*``, ``?`` or ``[`` is a glob pattern; a directory
                spec takes every regular file directly inside it; any
                other spec must name an existing file.

        Raises:
            CLXError: If a spec matches nothing, or nothing at all
                resolved.
        """
        if isinstance(specs, (str, Path)):
            specs = [specs]
        matched: List[Path] = []
        for spec in specs:
            matched.extend(_expand_spec(str(spec)))
        unique = sorted({str(path): path for path in matched}.values(), key=str)
        if not unique:
            raise CLXError(
                "no input files resolved from: " + ", ".join(str(spec) for spec in specs)
            )
        return cls(
            [
                DatasetPart(path=path, format=_part_format(path), size=path.stat().st_size)
                for path in unique
            ]
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def parts(self) -> List[DatasetPart]:
        """The partition files, in stable sorted order."""
        return list(self._parts)

    @property
    def total_size(self) -> int:
        """Total bytes across all parts."""
        return sum(part.size for part in self._parts)

    def __len__(self) -> int:
        return len(self._parts)

    def __iter__(self) -> Iterator[DatasetPart]:
        return iter(self._parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dataset({len(self._parts)} part(s), {self.total_size} bytes)"

    def describe(self) -> str:
        """A short human-readable source description (for registry rows)."""
        if len(self._parts) == 1:
            return self._parts[0].name
        return f"{self._parts[0].name} (+{len(self._parts) - 1} more)"

    # ------------------------------------------------------------------
    # Schema checks
    # ------------------------------------------------------------------
    def header(self, delimiter: str = ",", strict: bool = True) -> List[str]:
        """The dataset-wide field order, taken from the first part.

        CSV parts define it with their header row; a JSONL part defines
        it with the **union** of its records' keys in first-seen order
        (sparse keys are idiomatic JSONL, so the first record alone is
        not the schema — one streaming pass over the leading part, the
        same contract the profile side accepts).  A JSONL part with no
        rows defers to the next part, so an empty leading partition
        cannot blank the schema.  This is the field order ``apply``
        encodes sinks in and reconciles every later part against.

        With ``strict=False`` unparsable JSONL lines are skipped during
        the key scan (quarantine-mode pre-flight: those lines fail again
        during apply and are quarantined there, with context).

        Raises:
            CLXError: If no part can supply a field order.
            ValidationError: If the first CSV part has no header row.
        """
        from repro.dataset.readers import jsonl_key_union, read_csv_header

        for part in self._parts:
            if part.format == "csv":
                header, _ = read_csv_header(part.path, delimiter)
                return header
            keys = jsonl_key_union(part.path, strict=strict)
            if keys:
                return keys
        raise CLXError(
            "cannot determine the dataset field order: every JSONL part is "
            "empty and no CSV part supplies a header"
        )

    def check_column(self, column: Union[str, int], delimiter: str = ",") -> None:
        """Verify every part can supply ``column``, naming failures.

        CSV parts must have a header containing the column (by name or
        index); JSONL parts must parse a first object carrying the key
        when addressed by name (an index is meaningless for JSONL).

        Raises:
            ValidationError: Naming the first part that cannot supply
                the column.
        """
        from repro.dataset.readers import read_csv_header
        from repro.util.csvio import resolve_column

        for part in self._parts:
            if part.format == "csv":
                header, _ = read_csv_header(part.path, delimiter)
                try:
                    resolve_column(header, column)
                except ValidationError as error:
                    raise ValidationError(f"{part.path}: {error}") from None
            else:
                if not isinstance(column, str) or column.isdigit():
                    raise ValidationError(
                        f"{part.path}: JSONL parts address columns by name, "
                        f"not index ({column!r})"
                    )
                first = _first_jsonl_object(part.path)
                if first is not None and column not in first:
                    raise ValidationError(
                        f"{part.path}: column {column!r} not found; available: "
                        + ", ".join(sorted(first))
                    )

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def iter_values(self, column: Union[str, int], delimiter: str = ",") -> Iterator[str]:
        """Stream ``column`` across every part, in part order.

        Constant memory: each part is read line by line with the same
        missing-column semantics as the byte-range profiling path (a
        short row contributes ``""``).
        """
        from repro.dataset.readers import iter_part_values

        for part in self._parts:
            yield from iter_part_values(part, column, delimiter)


def _first_jsonl_object(path: Path) -> Optional[Dict[str, object]]:
    """The first non-blank JSON object of a JSONL file, or None if empty."""
    from repro.dataset.readers import parse_jsonl_row

    # newline="\n": the pipeline-wide JSONL line convention (a lone
    # "\r" is data, not a record separator).
    with path.open("r", encoding="utf-8", newline="\n") as handle:
        for number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            return parse_jsonl_row(line, path, number)
    return None


def resolve_dataset(specs: Union[str, Sequence[Union[str, Path]]]) -> Dataset:
    """Shorthand for :meth:`Dataset.resolve`."""
    return Dataset.resolve(specs)
