"""Per-partition value streaming (CSV and JSON Lines).

These are the single-process readers behind
:meth:`Dataset.iter_values <repro.dataset.dataset.Dataset.iter_values>`
and the schema checks; the multi-process byte-range readers live with
the profiler in :mod:`repro.clustering.parallel` and share the header
scan defined here.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterator, List, Tuple, Union

from repro.util.csvio import record_open_after, resolve_column
from repro.util.errors import ValidationError


def read_csv_header(
    path: Union[str, Path], delimiter: str = ",", encoding: str = "utf-8"
) -> Tuple[List[str], int]:
    """The CSV header row of ``path`` and the byte offset where data starts.

    Physical lines are accumulated until the header record closes, so a
    (rare) quoted header field containing a newline stays intact —
    tracked with csv quoting semantics, since a stray ``"`` in an
    unquoted header cell is data, not a delimiter.

    Raises:
        ValidationError: If the file has no header row.
    """
    source = Path(path)
    raw_header = b""
    record_open = False
    with source.open("rb") as handle:
        while True:
            line = handle.readline()
            if not line:
                break
            raw_header += line
            record_open = record_open_after(line.decode(encoding), delimiter, record_open)
            if not record_open:
                break
        data_start = handle.tell()
    text = raw_header.decode(encoding)
    if not text.strip():
        raise ValidationError(f"{source} has no header row")
    header = next(csv.reader([text], delimiter=delimiter))
    return header, data_start


def iter_csv_values(
    path: Union[str, Path], column: Union[str, int], delimiter: str = ","
) -> Iterator[str]:
    """Stream one column of a CSV file, ``""`` for rows missing it."""
    header, _ = read_csv_header(path, delimiter)
    index = header.index(resolve_column(header, column))
    with Path(path).open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        next(reader)  # the header just scanned
        for row in reader:
            if not row:
                continue  # blank line, as csv.DictReader skips them
            yield row[index] if index < len(row) else ""


def parse_jsonl_row(line: str, source, number: Union[int, None] = None) -> dict:
    """Parse one JSONL line into an object, with file context on errors.

    The single definition of what a JSONL row is — shared by the
    streaming readers, the schema check, and the byte-range profiling
    workers, so their semantics (and error wording) cannot drift.
    """
    where = f"{source} line {number}" if number is not None else str(source)
    try:
        payload = json.loads(line)
    except ValueError as error:
        raise ValidationError(f"{where}: invalid JSON line: {error}") from None
    if not isinstance(payload, dict):
        raise ValidationError(
            f"{where}: JSONL rows must be objects, got {type(payload).__name__}"
        )
    return payload


def jsonl_value(payload: dict, column: str) -> str:
    """One column of a parsed JSONL row, stringified like the profiler
    ingests CSV cells (missing key and ``null`` both become ``""``)."""
    value = payload.get(column)
    return "" if value is None else str(value)


def iter_jsonl_values(path: Union[str, Path], column: str) -> Iterator[str]:
    """Stream one key of a JSONL file, ``""`` for rows missing it.

    Values are stringified the way the profiler ingests them (``None``
    becomes ``""``), so a JSONL part profiles identically to a CSV part
    holding the same strings.
    """
    source = Path(path)
    with source.open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            yield jsonl_value(parse_jsonl_row(line, source, number), column)


def iter_part_values(part, column: Union[str, int], delimiter: str = ",") -> Iterator[str]:
    """Stream ``column`` out of one :class:`~repro.dataset.dataset.DatasetPart`."""
    if part.format == "jsonl":
        if not isinstance(column, str) or column.isdigit():
            raise ValidationError(
                f"{part.path}: JSONL parts address columns by name, not index ({column!r})"
            )
        yield from iter_jsonl_values(part.path, column)
    else:
        yield from iter_csv_values(part.path, column, delimiter)
