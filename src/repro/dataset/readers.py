"""Per-partition value streaming (CSV and JSON Lines).

These are the single-process readers behind
:meth:`Dataset.iter_values <repro.dataset.dataset.Dataset.iter_values>`
and the schema checks; the multi-process byte-range readers live with
the profiler in :mod:`repro.clustering.parallel` and share the header
scan defined here.

Every open goes through
:func:`~repro.dataset.backends.remote.open_locator` (binary mode, lines
decoded by :func:`~repro.util.textio.decode_line`), so the same readers
serve local paths and remote ``scheme://`` partitions, and a non-UTF-8
byte always surfaces as a :class:`~repro.util.errors.CLXError` naming
the file, line, and byte offset instead of a bare ``UnicodeDecodeError``.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import IO, TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple, Union

from repro.util.csvio import record_open_after, resolve_column
from repro.util.errors import ValidationError
from repro.util.textio import BadLine, decode_line, iter_decoded_lines

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.dataset.dataset import DatasetPart


def _open_binary(path: Union[str, Path]) -> IO[bytes]:
    # Function-level import: backends package imports this module at its
    # own import time, so the reverse edge must resolve lazily.
    from repro.dataset.backends.remote import open_locator

    return open_locator(str(path))


def read_csv_header(
    path: Union[str, Path], delimiter: str = ",", encoding: str = "utf-8"
) -> Tuple[List[str], int]:
    """The CSV header row of ``path`` and the byte offset where data starts.

    Physical lines are accumulated until the header record closes, so a
    (rare) quoted header field containing a newline stays intact —
    tracked with csv quoting semantics, since a stray ``"`` in an
    unquoted header cell is data, not a delimiter.

    Raises:
        ValidationError: If the file has no header row.
    """
    header, data_start, _ = csv_data_region(path, delimiter, encoding)
    return header, data_start


def csv_data_region(
    path: Union[str, Path], delimiter: str = ",", encoding: str = "utf-8"
) -> Tuple[List[str], int, int]:
    """Header fields, data-start byte offset, and first data line number.

    The byte-range planners need all three: where the data region
    begins and which 1-based *physical* line number that byte sits on
    (a quoted header field containing a newline makes the header span
    several physical lines, so it is not always line 2).

    Raises:
        ValidationError: If the file has no header row.
        CLXError: If the header contains a non-UTF-8 byte.
    """
    source = str(path)
    header_text = ""
    header_lines = 0
    record_open = False
    with _open_binary(path) as handle:
        offset = 0
        while True:
            line = handle.readline()
            if not line:
                break
            header_lines += 1
            decoded = decode_line(line, source, header_lines, offset)
            offset += len(line)
            header_text += decoded
            record_open = record_open_after(decoded, delimiter, record_open)
            if not record_open:
                break
        data_start = handle.tell()
    if not header_text.strip():
        raise ValidationError(f"{source} has no header row")
    header = next(csv.reader([header_text], delimiter=delimiter))
    return header, data_start, header_lines + 1


def iter_csv_values(
    path: Union[str, Path], column: Union[str, int], delimiter: str = ","
) -> Iterator[str]:
    """Stream one column of a CSV file, ``""`` for rows missing it."""
    header, data_start, first_line = csv_data_region(path, delimiter)
    index = header.index(resolve_column(header, column))
    with _open_binary(path) as handle:
        handle.seek(data_start)
        lines = iter_decoded_lines(handle, str(path), first_line=first_line)
        for row in csv.reader(lines, delimiter=delimiter):
            if not row:
                continue  # blank line, as csv.DictReader skips them
            yield row[index] if index < len(row) else ""


def parse_jsonl_row(
    line: str, source: Union[str, Path], number: Union[int, None] = None
) -> Dict[str, object]:
    """Parse one JSONL line into an object, with file context on errors.

    The single definition of what a JSONL row is — shared by the
    streaming readers, the schema check, and the byte-range profiling
    workers, so their semantics (and error wording) cannot drift.
    """
    where = f"{source} line {number}" if number is not None else str(source)
    try:
        payload = json.loads(line)
    except ValueError as error:
        raise ValidationError(f"{where}: invalid JSON line: {error}") from None
    if not isinstance(payload, dict):
        raise ValidationError(
            f"{where}: JSONL rows must be objects, got {type(payload).__name__}"
        )
    return payload


def jsonl_cell(value: object) -> str:
    """Stringify one JSONL value into a pipeline cell, JSON-faithfully.

    The single ingestion rule shared by profiling and apply: missing
    key and ``null`` become ``""``, strings pass through untouched, and
    everything else keeps its *JSON* form (``true``, not Python's
    ``True``; nested objects/arrays re-encode via ``json.dumps``) — so
    pass-through columns survive a jsonl→jsonl apply without being
    rewritten as Python reprs.
    """
    if value is None:
        return ""
    if isinstance(value, str):
        return value
    return json.dumps(value, ensure_ascii=False)


def jsonl_value(payload: Dict[str, object], column: str) -> str:
    """One column of a parsed JSONL row, stringified via :func:`jsonl_cell`
    (missing key and ``null`` both become ``""``)."""
    return jsonl_cell(payload.get(column))


def jsonl_key_union(path: Union[str, Path], strict: bool = True) -> List[str]:
    """Every key appearing in a JSONL file, in first-seen order.

    Sparse keys are idiomatic JSONL — records carry only the fields
    they have — so a part's *schema* is the union of its records' keys,
    not the first record's.  One sequential pass, memory bounded by the
    number of distinct keys.

    With ``strict=False`` unparsable (or undecodable) lines contribute
    no keys instead of aborting the scan — the lenient pre-flight
    quarantine mode needs, where those same lines are quarantined
    during apply rather than failing the run before it starts.
    """
    source = str(path)
    keys: List[str] = []
    seen = set()
    with _open_binary(path) as handle:
        lines = iter_decoded_lines(handle, source, collect_bad=not strict)
        for number, line in enumerate(lines, start=1):
            if isinstance(line, BadLine):
                continue  # collect_bad only in lenient mode; skip like a bad parse
            if not line.strip():
                continue
            try:
                row = parse_jsonl_row(line, source, number)
            except ValidationError:
                if strict:
                    raise
                continue
            for key in row:
                if key not in seen:
                    seen.add(key)
                    keys.append(key)
    return keys


def first_jsonl_object(path: Union[str, Path]) -> Optional[Dict[str, object]]:
    """The first non-blank JSON object of a JSONL file, or None if empty."""
    source = str(path)
    with _open_binary(path) as handle:
        for number, line in enumerate(iter_decoded_lines(handle, source), start=1):
            if not line.strip():
                continue
            return parse_jsonl_row(line, source, number)
    return None


def iter_jsonl_values(path: Union[str, Path], column: str) -> Iterator[str]:
    """Stream one key of a JSONL file, ``""`` for rows missing it.

    Values are stringified the way the profiler ingests them (``None``
    becomes ``""``), so a JSONL part profiles identically to a CSV part
    holding the same strings.
    """
    source = str(path)
    # Binary readline splits physical lines on "\n" and nothing else —
    # the pipeline-wide JSONL convention (a lone "\r" is data, not a
    # line break) — so a file that profiles also applies, and vice versa.
    with _open_binary(path) as handle:
        for number, line in enumerate(iter_decoded_lines(handle, source), start=1):
            if not line.strip():
                continue
            yield jsonl_value(parse_jsonl_row(line, source, number), column)


def iter_part_values(
    part: "DatasetPart", column: Union[str, int], delimiter: str = ","
) -> Iterator[str]:
    """Stream ``column`` out of one :class:`~repro.dataset.dataset.DatasetPart`."""
    from repro.dataset.backends import backend_by_name

    backend = backend_by_name(part.format)
    backend.require()
    yield from backend.iter_values(part, column, delimiter)
