"""The IO backend protocol and the extension/scheme-keyed registry.

A :class:`Backend` packages everything the pipeline needs to speak one
partition format — schema discovery, value streaming, shard planning,
the worker-side raw-chunk parse, and the sink-side chunk encoding — so
:class:`~repro.engine.parallel.ShardedTableExecutor`,
:class:`~repro.clustering.parallel.ParallelProfiler`, and
:func:`~repro.engine.parallel.apply_dataset` dispatch through the
registry instead of ``if part.format == "csv"`` branches.

Two capability axes shape the contracts:

* **line-record backends** (CSV, JSONL) own text files whose physical
  lines carry records; byte-range shard planning, record-aligned cut
  scans, and the raw-line worker wire all apply.  ``csv_quoting``
  states whether a record may span physical lines (quoted embedded
  newline), ``has_header_row`` whether the file leads with a header
  record.
* **rowgroup backends** (Parquet, Arrow IPC) own binary columnar
  files.  Shard bounds are **row-group indices**, not byte offsets
  (``plan_shards``), and the worker wire is the JSONL rendering of each
  row group — so parse, transform, quarantine, and re-encode reuse the
  JSONL machinery unchanged.

Backends register under a name plus one or more file suffixes.  An
unregistered suffix fails loudly (:func:`backend_for_path`) instead of
the historical silent fall-back to CSV; ``assume_csv`` is the escape
hatch for extensionless partition files only.
"""

from __future__ import annotations

import abc
from pathlib import Path
from typing import (
    IO,
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    TYPE_CHECKING,
)

from repro.util.errors import CLXError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.dataset.dataset import DatasetPart


class RowSpec(Protocol):
    """The slice of the executor's TableSpec a parse/encode stage needs."""

    @property
    def fieldnames(self) -> Tuple[str, ...]: ...

    @property
    def output_fields(self) -> Tuple[str, ...]: ...

    @property
    def delimiter(self) -> str: ...


class SinkWriter(Protocol):
    """A committed-on-finish writer consuming worker wire-text chunks."""

    def write(self, wire_text: str) -> None: ...

    def finish(self) -> None: ...


class Backend(abc.ABC):
    """One partition format's reader/writer contract.

    Attributes:
        name: Registry key; also the ``DatasetPart.format`` /
            ``--format`` value.
        suffixes: File suffixes (lower-case, dot included) resolving to
            this backend.
        line_records: Physical text lines carry records (CSV/JSONL).
        csv_quoting: A record may span physical lines while a quoted
            field is open (CSV); line backends only.
        has_header_row: The file leads with a header record naming the
            columns (CSV); line backends only.
        binary_sink: Sink files are binary and written through a
            format-aware :class:`SinkWriter` instead of spliced text.
        sink_suffix: Suffix of files this backend writes.
    """

    name: str = ""
    suffixes: Tuple[str, ...] = ()
    line_records: bool = True
    csv_quoting: bool = False
    has_header_row: bool = False
    binary_sink: bool = False
    sink_suffix: str = ""

    # ------------------------------------------------------------------
    # Availability
    # ------------------------------------------------------------------
    def require(self) -> None:
        """Raise :class:`CLXError` naming the missing extra, if any."""

    def available(self) -> bool:
        """Whether this backend's optional dependencies are importable."""
        try:
            self.require()
        except CLXError:
            return False
        return True

    # ------------------------------------------------------------------
    # Schema discovery and value streaming (resolution side)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def field_order(
        self, part: "DatasetPart", delimiter: str, strict: bool = True
    ) -> Optional[List[str]]:
        """The dataset field order this part defines, or None to defer.

        ``None`` lets an empty part (e.g. a rowless JSONL file) defer
        to the next partition instead of blanking the schema.
        """

    @abc.abstractmethod
    def column_names(
        self, part: "DatasetPart", delimiter: str
    ) -> Optional[List[str]]:
        """Column names an index can resolve against, or None.

        Cheap — a header or schema read, never a full scan.  ``None``
        means this format addresses columns by name only (JSONL).
        """

    @abc.abstractmethod
    def check_column(
        self, part: "DatasetPart", column: Union[str, int], delimiter: str
    ) -> None:
        """Verify the part can supply ``column``, naming it on failure."""

    @abc.abstractmethod
    def iter_values(
        self, part: "DatasetPart", column: Union[str, int], delimiter: str
    ) -> Iterator[str]:
        """Stream one column of the part, ``""`` for rows missing it."""

    # ------------------------------------------------------------------
    # Apply input: shard geometry and the worker wire
    # ------------------------------------------------------------------
    def data_region(
        self, locator: str, delimiter: str
    ) -> Tuple[Optional[List[str]], int, int]:
        """(header, data-start offset, first data line) of one file.

        Line backends only; the executor verifies the returned header
        (when any) against its spec before planning byte-range shards.
        """
        raise CLXError(f"{self.name} partitions have no byte data region")

    def plan_shards(
        self, locator: str, shard_bytes: int
    ) -> Iterator[Tuple[int, int, int]]:
        """(start, end, first_line) spans for one rowgroup-backend part.

        Spans are row-group index ranges sized so each covers roughly
        ``shard_bytes`` of storage — the columnar stand-in for
        record-aligned byte-range cuts.
        """
        raise CLXError(f"{self.name} partitions plan byte-range shards instead")

    @abc.abstractmethod
    def read_shard_lines(
        self,
        locator: str,
        start: int,
        end: Optional[int],
        collect_bad: bool = False,
        first_line: int = 1,
    ) -> Iterator[str]:
        """The worker wire: physical lines of the shard ``[start, end)``.

        Line backends read and decode the exact byte range (both bounds
        are record boundaries from the planner); ``end=None`` streams to
        the file's end.  Rowgroup backends render row groups
        ``[start, end)`` as JSONL — one JSON object per row — so the
        downstream parse/transform/encode pipeline is shared.
        ``collect_bad`` defers UTF-8 decode failures as
        :class:`~repro.util.textio.BadLine` markers (quarantine mode).
        """

    @abc.abstractmethod
    def parse_rows(
        self, spec: RowSpec, first_line: int, lines: List[str], label: str
    ) -> List[List[str]]:
        """Parse one wire chunk into padded row lists, in field order.

        Every failure raises :class:`CLXError` naming ``label`` and the
        absolute line number — the quarantine salvage pass replays
        records through this same method to divert exactly the bad one.
        """

    # ------------------------------------------------------------------
    # Profiling input (byte-range / row-group shard values)
    # ------------------------------------------------------------------
    def iter_shard_values(
        self, locator: str, start: int, end: int, column: Union[str, int]
    ) -> Iterator[str]:
        """One column's values out of a rowgroup shard (profiling side)."""
        raise CLXError(f"{self.name} partitions profile via line shards")

    # ------------------------------------------------------------------
    # Sink side
    # ------------------------------------------------------------------
    def require_sink(self) -> None:
        """Raise unless this process can *write* the format (parent side)."""
        self.require()

    @abc.abstractmethod
    def encode_rows(
        self, output_fields: Sequence[str], rows: List[List[str]], delimiter: str
    ) -> str:
        """Encode transformed rows as sink wire text (worker side).

        For binary sinks this is the *internal* wire (JSONL) the parent
        decodes into the real format; for text sinks it is the final
        sink bytes.
        """

    def header_text(self, output_fields: Sequence[str], delimiter: str) -> str:
        """The encoded sink header ("" for formats without one)."""
        return ""

    def open_sink_writer(
        self, handle: IO[bytes], output_fields: Sequence[str]
    ) -> SinkWriter:
        """A :class:`SinkWriter` materializing wire text into ``handle``.

        Binary-sink backends only; the caller owns the handle's
        lifecycle (atomic temp file + rename).
        """
        raise CLXError(f"{self.name} sinks are plain text; write chunks directly")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_BACKENDS: Dict[str, Backend] = {}
_BY_SUFFIX: Dict[str, Backend] = {}


def register_backend(backend: Backend) -> None:
    """Register a backend under its name and every suffix it claims."""
    if not backend.name:
        raise CLXError("a backend needs a name")
    _BACKENDS[backend.name] = backend
    for suffix in backend.suffixes:
        _BY_SUFFIX[suffix.lower()] = backend


def backend_names() -> Tuple[str, ...]:
    """Every registered backend name, registration order."""
    return tuple(_BACKENDS)


def input_format_names() -> Tuple[str, ...]:
    """Formats the apply/profile input side accepts."""
    return tuple(_BACKENDS)


def sink_format_names() -> Tuple[str, ...]:
    """Formats the apply sink side can write."""
    return tuple(name for name, backend in _BACKENDS.items() if backend.sink_suffix)


def supported_suffixes() -> Tuple[str, ...]:
    """Every registered file suffix, sorted."""
    return tuple(sorted(_BY_SUFFIX))


def backend_by_name(name: str) -> Backend:
    """The backend registered under ``name``.

    Raises:
        CLXError: For an unregistered format name.
    """
    backend = _BACKENDS.get(name)
    if backend is None:
        raise CLXError(
            f"unsupported partition format {name!r}; "
            f"choose from {', '.join(_BACKENDS)}"
        )
    return backend


def backend_for_path(
    path: Union[str, Path], assume_csv: bool = False
) -> Backend:
    """Resolve a partition file's backend from its suffix — loudly.

    Unknown suffixes are an error (the historical behavior silently
    parsed ``.parquet``, ``.txt``, ``.gz``, ... as CSV and profiled
    garbage).  An extensionless file is also an error unless
    ``assume_csv`` says otherwise — the one-release escape hatch for
    suffixless partition layouts.

    Raises:
        CLXError: Naming the file and the supported suffixes.
    """
    suffix = Path(str(path)).suffix.lower()
    backend = _BY_SUFFIX.get(suffix)
    if backend is not None:
        return backend
    if not suffix:
        if assume_csv:
            return _BACKENDS["csv"]
        raise CLXError(
            f"{path}: partition file has no extension, so its format is "
            f"unknown (supported: {', '.join(supported_suffixes())}); "
            "pass --assume-csv to read extensionless files as CSV"
        )
    raise CLXError(
        f"{path}: unsupported partition extension {suffix!r} "
        f"(supported: {', '.join(supported_suffixes())}); "
        "rename the file or convert it to a supported format"
    )
