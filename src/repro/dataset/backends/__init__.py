"""The dataset IO backend registry: formats and schemes behind one seam.

Importing this package registers the built-in backends — CSV, JSON
Lines, Parquet, Arrow IPC — under their names and file suffixes; the
columnar pair registers unconditionally and gates on ``pyarrow`` at
use time, so ``artifacts``/``profile``/``apply`` can *name* the format
in errors and help text even on a no-extras install.  Remote
``scheme://`` partitions resolve through the opener seam in
:mod:`~repro.dataset.backends.remote`.
"""

from repro.dataset.backends.base import (
    Backend,
    RowSpec,
    SinkWriter,
    backend_by_name,
    backend_for_path,
    backend_names,
    input_format_names,
    register_backend,
    sink_format_names,
    supported_suffixes,
)
from repro.dataset.backends.columnar import (
    ArrowBackend,
    ColumnarWriter,
    ParquetBackend,
    pyarrow_available,
)
from repro.dataset.backends.remote import (
    PartOpener,
    file_url_to_path,
    is_url,
    locator_size,
    open_locator,
    register_opener,
    unregister_opener,
    url_scheme,
)
from repro.dataset.backends.text import CsvBackend, JsonlBackend

register_backend(CsvBackend())
register_backend(JsonlBackend())
register_backend(ParquetBackend())
register_backend(ArrowBackend())

__all__ = [
    "ArrowBackend",
    "Backend",
    "ColumnarWriter",
    "CsvBackend",
    "JsonlBackend",
    "ParquetBackend",
    "PartOpener",
    "RowSpec",
    "SinkWriter",
    "backend_by_name",
    "backend_for_path",
    "backend_names",
    "file_url_to_path",
    "input_format_names",
    "is_url",
    "locator_size",
    "open_locator",
    "pyarrow_available",
    "register_backend",
    "register_opener",
    "sink_format_names",
    "supported_suffixes",
    "unregister_opener",
    "url_scheme",
]
