"""The rowgroup backends: Parquet and Arrow IPC, gated on ``pyarrow``.

Columnar parts join the pipeline through a deliberate trick: the worker
wire is the **JSONL rendering of each row group** (one JSON object per
row, ``json.dumps(..., default=str)``), so parsing, key reconciliation,
transform dispatch, quarantine, and re-encoding all reuse the JSONL
machinery unchanged — the executor cannot drift between a ``.jsonl``
part and a ``.parquet`` part holding the same rows.  Shard geometry is
**row-group index ranges** instead of byte offsets: row groups (record
batches for Arrow IPC) are the format's own record-aligned cut points,
sized against each group's storage footprint so ``--shard-bytes`` keeps
its meaning.

On the sink side workers still emit JSONL wire text; the parent decodes
it through a :class:`ColumnarWriter` that batches rows at a fixed flush
size into all-string columns — row-group boundaries depend only on row
count, never on chunk or worker geometry, so columnar output is as
deterministic as the text sinks.  Everything is gated on ``pyarrow``
with a :class:`CLXError` naming the missing extra, so the no-extras
install degrades cleanly.
"""

from __future__ import annotations

import json
from typing import IO, TYPE_CHECKING, Any, Iterator, List, Optional, Sequence, Tuple, Union

from repro.dataset.backends.base import Backend, RowSpec
from repro.dataset.backends.remote import open_locator
from repro.dataset.backends.text import parse_jsonl_chunk
from repro.util.csvio import resolve_column
from repro.util.errors import CLXError, ValidationError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.dataset.dataset import DatasetPart


def _pyarrow() -> Any:
    """Import pyarrow, or fail with the extra spelled out."""
    try:
        import pyarrow  # type: ignore[import-not-found,import-untyped]
    except ImportError:
        raise CLXError(
            "parquet/arrow partitions need the optional dependency 'pyarrow', "
            "which is not installed; install the arrow extra "
            "(pip install repro-clx[arrow])"
        ) from None
    return pyarrow


def pyarrow_available() -> bool:
    """Whether the optional ``pyarrow`` dependency is importable."""
    try:
        _pyarrow()
    except CLXError:
        return False
    return True


def _columnar_cell(value: object) -> str:
    """Stringify one columnar value exactly like the apply wire does.

    The wire renders whole rows with ``json.dumps(row, default=str)``
    and re-ingests cells through
    :func:`~repro.dataset.readers.jsonl_cell`; this mirrors that
    composition value-by-value so profiling a column sees the same
    strings apply transforms.
    """
    if value is None:
        return ""
    if isinstance(value, str):
        return value
    if isinstance(value, (dict, list)):
        return json.dumps(value, ensure_ascii=False, default=str)
    try:
        return json.dumps(value, ensure_ascii=False)
    except TypeError:
        return str(value)


def _wire_line(row: dict) -> str:
    """One row as worker wire text (the JSONL rendering)."""
    return json.dumps(row, ensure_ascii=False, default=str) + "\n"


class ColumnarWriter:
    """Parent-side sink writer: JSONL wire text in, columnar file out.

    Buffers decoded rows and flushes them as all-string record batches
    every ``flush_rows`` rows — a boundary that depends only on row
    count, so the written row groups are identical at any worker count,
    chunk size, or shard geometry.  The caller owns the binary handle
    (an :class:`~repro.util.sinks.AtomicSink` temp file) and commits it
    only after :meth:`finish` has closed the format's own footer.
    """

    #: Rows per flushed row group / record batch.
    FLUSH_ROWS = 65536

    def __init__(
        self, handle: IO[bytes], output_fields: Sequence[str], kind: str,
        flush_rows: int = FLUSH_ROWS,
    ) -> None:
        pa = _pyarrow()
        self._pa = pa
        self._fields = tuple(output_fields)
        self._schema = pa.schema([(name, pa.string()) for name in self._fields])
        self._rows: List[List[str]] = []
        self._flush_rows = flush_rows
        self._kind = kind
        if kind == "parquet":
            import pyarrow.parquet as pq  # type: ignore[import-not-found]

            self._writer: Any = pq.ParquetWriter(handle, self._schema)
        else:
            self._writer = pa.ipc.new_file(handle, self._schema)

    def _flush(self, rows: List[List[str]]) -> None:
        pa = self._pa
        arrays = [
            pa.array([row[index] for row in rows], type=pa.string())
            for index in range(len(self._fields))
        ]
        if self._kind == "parquet":
            self._writer.write_table(
                pa.Table.from_arrays(arrays, schema=self._schema)
            )
        else:
            self._writer.write_batch(
                pa.record_batch(arrays, schema=self._schema)
            )

    def write(self, wire_text: str) -> None:
        """Decode one chunk of wire text and buffer its rows."""
        for line in wire_text.splitlines():
            if not line:
                continue
            payload = json.loads(line)
            self._rows.append([payload.get(name, "") for name in self._fields])
        while len(self._rows) >= self._flush_rows:
            self._flush(self._rows[: self._flush_rows])
            del self._rows[: self._flush_rows]

    def finish(self) -> None:
        """Flush the tail rows and close the file's footer."""
        if self._rows:
            self._flush(self._rows)
            self._rows = []
        self._writer.close()


class _ColumnarBackend(Backend):
    """Shared rowgroup plumbing; subclasses bind the pyarrow reader."""

    line_records = False
    csv_quoting = False
    has_header_row = False
    binary_sink = True

    def require(self) -> None:
        _pyarrow()

    # -- format binding ------------------------------------------------
    def _open_reader(self, locator: str) -> Tuple[Any, Any]:
        """(reader, owned handle) for one part; caller closes the handle."""
        raise NotImplementedError

    def _num_groups(self, reader: Any) -> int:
        raise NotImplementedError

    def _group_rows(self, reader: Any, index: int) -> int:
        raise NotImplementedError

    def _group_bytes(self, reader: Any, index: int) -> int:
        raise NotImplementedError

    def _read_group(
        self, reader: Any, index: int, columns: Optional[List[str]] = None
    ) -> Any:
        """One row group / record batch as a pyarrow Table."""
        raise NotImplementedError

    def _schema_names(self, reader: Any) -> List[str]:
        raise NotImplementedError

    # -- schema side ---------------------------------------------------
    def field_order(
        self, part: "DatasetPart", delimiter: str, strict: bool = True
    ) -> Optional[List[str]]:
        self.require()
        reader, handle = self._open_reader(part.locator)
        try:
            return self._schema_names(reader) or None
        finally:
            handle.close()

    def column_names(
        self, part: "DatasetPart", delimiter: str
    ) -> Optional[List[str]]:
        return self.field_order(part, delimiter)

    def check_column(
        self, part: "DatasetPart", column: Union[str, int], delimiter: str
    ) -> None:
        names = self.field_order(part, delimiter) or []
        try:
            resolve_column(names, column)
        except ValidationError as error:
            raise ValidationError(f"{part.locator}: {error}") from None

    def iter_values(
        self, part: "DatasetPart", column: Union[str, int], delimiter: str
    ) -> Iterator[str]:
        self.require()
        reader, handle = self._open_reader(part.locator)
        try:
            name = resolve_column(self._schema_names(reader), column)
            for index in range(self._num_groups(reader)):
                table = self._read_group(reader, index, columns=[name])
                for value in table.column(0).to_pylist():
                    yield _columnar_cell(value)
        finally:
            handle.close()

    # -- apply input ---------------------------------------------------
    def plan_shards(
        self, locator: str, shard_bytes: int
    ) -> Iterator[Tuple[int, int, int]]:
        self.require()
        reader, handle = self._open_reader(locator)
        try:
            groups = self._num_groups(reader)
            first_row = 1
            span_start = 0
            span_rows = 0
            span_bytes = 0
            for index in range(groups):
                span_bytes += self._group_bytes(reader, index)
                span_rows += self._group_rows(reader, index)
                if span_bytes >= shard_bytes:
                    yield span_start, index + 1, first_row
                    span_start = index + 1
                    first_row += span_rows
                    span_rows = 0
                    span_bytes = 0
            if span_start < groups:
                yield span_start, groups, first_row
        finally:
            handle.close()

    def read_shard_lines(
        self,
        locator: str,
        start: int,
        end: Optional[int],
        collect_bad: bool = False,
        first_line: int = 1,
    ) -> Iterator[str]:
        self.require()
        reader, handle = self._open_reader(locator)
        try:
            stop = self._num_groups(reader) if end is None else end
            for index in range(start, stop):
                for row in self._read_group(reader, index).to_pylist():
                    yield _wire_line(row)
        finally:
            handle.close()

    def parse_rows(
        self, spec: RowSpec, first_line: int, lines: List[str], label: str
    ) -> List[List[str]]:
        return parse_jsonl_chunk(spec, first_line, lines, label)

    def iter_shard_values(
        self, locator: str, start: int, end: int, column: Union[str, int]
    ) -> Iterator[str]:
        self.require()
        reader, handle = self._open_reader(locator)
        try:
            name = resolve_column(self._schema_names(reader), column)
            for index in range(start, end):
                table = self._read_group(reader, index, columns=[name])
                for value in table.column(0).to_pylist():
                    yield _columnar_cell(value)
        finally:
            handle.close()

    # -- sink side -----------------------------------------------------
    def encode_rows(
        self, output_fields: Sequence[str], rows: List[List[str]], delimiter: str
    ) -> str:
        # Lazy: repro.engine imports this package via engine.parallel, so
        # the reverse edge must resolve at call time, not import time.
        from repro.engine.serialize import encode_rows_jsonl

        return encode_rows_jsonl(output_fields, rows)

    def open_sink_writer(
        self, handle: IO[bytes], output_fields: Sequence[str]
    ) -> ColumnarWriter:
        return ColumnarWriter(handle, output_fields, kind=self.name)


class ParquetBackend(_ColumnarBackend):
    """Parquet in and out; shards are row-group index ranges."""

    name = "parquet"
    suffixes = (".parquet",)
    sink_suffix = ".parquet"

    def _open_reader(self, locator: str) -> Tuple[Any, Any]:
        import pyarrow.parquet as pq  # type: ignore[import-not-found]

        handle = open_locator(locator)
        return pq.ParquetFile(handle), handle

    def _num_groups(self, reader: Any) -> int:
        return int(reader.metadata.num_row_groups)

    def _group_rows(self, reader: Any, index: int) -> int:
        return int(reader.metadata.row_group(index).num_rows)

    def _group_bytes(self, reader: Any, index: int) -> int:
        return int(reader.metadata.row_group(index).total_byte_size)

    def _read_group(
        self, reader: Any, index: int, columns: Optional[List[str]] = None
    ) -> Any:
        return reader.read_row_group(index, columns=columns)

    def _schema_names(self, reader: Any) -> List[str]:
        return list(reader.schema_arrow.names)


class ArrowBackend(_ColumnarBackend):
    """Arrow IPC (Feather v2) in and out; shards are record-batch ranges."""

    name = "arrow"
    suffixes = (".arrow", ".feather", ".ipc")
    sink_suffix = ".arrow"

    def _open_reader(self, locator: str) -> Tuple[Any, Any]:
        pa = _pyarrow()
        handle = open_locator(locator)
        return pa.ipc.open_file(handle), handle

    def _num_groups(self, reader: Any) -> int:
        return int(reader.num_record_batches)

    def _group_rows(self, reader: Any, index: int) -> int:
        return int(reader.get_batch(index).num_rows)

    def _group_bytes(self, reader: Any, index: int) -> int:
        return int(reader.get_batch(index).nbytes)

    def _read_group(
        self, reader: Any, index: int, columns: Optional[List[str]] = None
    ) -> Any:
        pa = self._pa_module()
        batch = reader.get_batch(index)
        table = pa.Table.from_batches([batch])
        if columns is not None:
            table = table.select(columns)
        return table

    def _schema_names(self, reader: Any) -> List[str]:
        return list(reader.schema.names)

    @staticmethod
    def _pa_module() -> Any:
        return _pyarrow()
