"""The line-record backends: CSV and JSON Lines.

These carry the historical pipeline semantics byte for byte — the same
header scans, the same ragged-row and unknown-key rules, the same
encoded sink bytes — just reachable through the
:class:`~repro.dataset.backends.base.Backend` protocol instead of
``format == "csv"`` string dispatch.  Both read through the locator
seam (:func:`~repro.dataset.backends.remote.open_locator`), so local
paths and remote partitions share one code path, and both decode via
:func:`~repro.util.textio.decode_line`, so a non-UTF-8 byte names its
file, line, and byte offset — or rides through as a
:class:`~repro.util.textio.BadLine` in quarantine mode until the parse
stage diverts exactly that record.
"""

from __future__ import annotations

import csv
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple, Union

from repro.dataset.backends.base import Backend, RowSpec
from repro.dataset.backends.remote import open_locator
from repro.dataset.readers import (
    csv_data_region,
    first_jsonl_object,
    iter_csv_values,
    iter_jsonl_values,
    jsonl_cell,
    jsonl_key_union,
    parse_jsonl_row,
)
from repro.util.csvio import resolve_column
from repro.util.errors import CLXError, ValidationError
from repro.util.textio import BadLine, decode_line

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.dataset.dataset import DatasetPart


def iter_line_shard(
    locator: str,
    start: int,
    end: Optional[int],
    collect_bad: bool = False,
    first_line: int = 1,
) -> Iterator[str]:
    """Decoded physical lines beginning in the exact byte range [start, end).

    Both bounds are record boundaries from the shard planner, so the
    worker owns precisely these lines; ``end=None`` streams to EOF.
    Decode failures carry the true physical line number and absolute
    byte offset (``first_line`` names the line sitting at ``start``).
    """
    with open_locator(locator) as handle:
        handle.seek(start)
        position = start
        number = first_line - 1
        while end is None or position < end:
            raw = handle.readline()
            if not raw:
                return
            number += 1
            yield decode_line(raw, locator, number, position, collect_bad)
            position += len(raw)


def parse_csv_chunk(
    spec: RowSpec, first_line: int, lines: List[str], label: str
) -> List[List[str]]:
    """Parse one chunk of physical CSV lines into padded row lists.

    Parse failures the csv module raises itself (e.g. a bare ``\\r`` in
    an unquoted cell) are rewrapped so every malformed input surfaces
    as a :class:`CLXError` naming the file and line, never a raw
    ``_csv.Error`` traceback.
    """
    for line in lines:
        if isinstance(line, BadLine):
            raise CLXError(line.error)
    width = len(spec.fieldnames)
    out_width = len(spec.output_fields)
    reader = csv.reader(lines, delimiter=spec.delimiter)
    rows: List[List[str]] = []
    try:
        for row in reader:
            if not row:
                continue  # csv.DictReader skips blank lines; so do we
            if len(row) > width:
                line_number = first_line + reader.line_num - 1
                raise CLXError(
                    f"{label} line {line_number}: row has {len(row)} cells "
                    f"but the header has {width} columns; fix the row or "
                    "re-export the CSV"
                )
            if len(row) < width:
                row.extend([""] * (width - len(row)))
            row.extend([""] * (out_width - width))
            rows.append(row)
    except csv.Error as error:
        line_number = first_line + max(reader.line_num, 1) - 1
        raise CLXError(f"{label} line {line_number}: invalid CSV: {error}") from None
    return rows


def parse_jsonl_chunk(
    spec: RowSpec, first_line: int, lines: List[str], label: str
) -> List[List[str]]:
    """Parse one chunk of JSON Lines into padded row lists, in field order.

    One physical line is one record (a literal newline cannot occur
    inside a JSON string), so every failure names its exact file and
    line and can never corrupt a neighboring record.  Key
    reconciliation against the dataset field order mirrors the CSV
    ragged-row rules: a missing key (or ``null``) contributes ``""``
    and values stringify JSON-faithfully
    (:func:`~repro.dataset.readers.jsonl_cell` — the profiler's own
    ingestion rule), while an unknown key fails fast — silently
    dropping it would lose data in a CSV sink.
    """
    width = len(spec.fieldnames)
    out_width = len(spec.output_fields)
    known = set(spec.fieldnames)
    rows: List[List[str]] = []
    for offset, line in enumerate(lines):
        if isinstance(line, BadLine):
            raise CLXError(line.error)
        if not line.strip():
            continue  # blank line, as the JSONL readers skip them
        number = first_line + offset
        payload = parse_jsonl_row(line, label, number)
        unknown = [key for key in payload if key not in known]
        if unknown:
            raise CLXError(
                f"{label} line {number}: key(s) {', '.join(map(repr, unknown))} "
                f"not in the dataset field order ({', '.join(spec.fieldnames)}); "
                "partitions of one dataset must share a schema"
            )
        row = [jsonl_cell(payload.get(name)) for name in spec.fieldnames]
        row.extend([""] * (out_width - width))
        rows.append(row)
    return rows


class CsvBackend(Backend):
    """Header-rowed delimiter-separated text; the pipeline's default."""

    name = "csv"
    suffixes = (".csv",)
    line_records = True
    csv_quoting = True
    has_header_row = True
    binary_sink = False
    sink_suffix = ".csv"

    def field_order(
        self, part: "DatasetPart", delimiter: str, strict: bool = True
    ) -> Optional[List[str]]:
        header, _, _ = csv_data_region(part.locator, delimiter)
        return header

    def column_names(
        self, part: "DatasetPart", delimiter: str
    ) -> Optional[List[str]]:
        header, _, _ = csv_data_region(part.locator, delimiter)
        return header

    def check_column(
        self, part: "DatasetPart", column: Union[str, int], delimiter: str
    ) -> None:
        header, _, _ = csv_data_region(part.locator, delimiter)
        try:
            resolve_column(header, column)
        except ValidationError as error:
            raise ValidationError(f"{part.locator}: {error}") from None

    def iter_values(
        self, part: "DatasetPart", column: Union[str, int], delimiter: str
    ) -> Iterator[str]:
        return iter_csv_values(part.locator, column, delimiter)

    def data_region(
        self, locator: str, delimiter: str
    ) -> Tuple[Optional[List[str]], int, int]:
        return csv_data_region(locator, delimiter)

    def read_shard_lines(
        self,
        locator: str,
        start: int,
        end: Optional[int],
        collect_bad: bool = False,
        first_line: int = 1,
    ) -> Iterator[str]:
        return iter_line_shard(locator, start, end, collect_bad, first_line)

    def parse_rows(
        self, spec: RowSpec, first_line: int, lines: List[str], label: str
    ) -> List[List[str]]:
        return parse_csv_chunk(spec, first_line, lines, label)

    def encode_rows(
        self, output_fields: Sequence[str], rows: List[List[str]], delimiter: str
    ) -> str:
        # Lazy: repro.engine imports this package via engine.parallel, so
        # the reverse edge must resolve at call time, not import time.
        from repro.engine.serialize import encode_rows_csv

        return encode_rows_csv(rows, delimiter=delimiter)

    def header_text(self, output_fields: Sequence[str], delimiter: str) -> str:
        from repro.engine.serialize import encode_rows_csv

        return encode_rows_csv([list(output_fields)], delimiter=delimiter)


class JsonlBackend(Backend):
    """JSON Lines: one object per physical line, schema = key union."""

    name = "jsonl"
    suffixes = (".jsonl", ".ndjson")
    line_records = True
    csv_quoting = False
    has_header_row = False
    binary_sink = False
    sink_suffix = ".jsonl"

    def field_order(
        self, part: "DatasetPart", delimiter: str, strict: bool = True
    ) -> Optional[List[str]]:
        keys = jsonl_key_union(part.locator, strict=strict)
        return keys or None  # an empty part defers to the next partition

    def column_names(
        self, part: "DatasetPart", delimiter: str
    ) -> Optional[List[str]]:
        return None  # JSONL addresses columns by name, never by index

    def _check_column_name(
        self, part: "DatasetPart", column: Union[str, int]
    ) -> str:
        if not isinstance(column, str) or column.isdigit():
            raise ValidationError(
                f"{part.locator}: JSONL parts address columns by name, "
                f"not index ({column!r})"
            )
        return column

    def check_column(
        self, part: "DatasetPart", column: Union[str, int], delimiter: str
    ) -> None:
        name = self._check_column_name(part, column)
        first = first_jsonl_object(part.locator)
        if first is not None and name not in first:
            raise ValidationError(
                f"{part.locator}: column {name!r} not found; available: "
                + ", ".join(sorted(first))
            )

    def iter_values(
        self, part: "DatasetPart", column: Union[str, int], delimiter: str
    ) -> Iterator[str]:
        return iter_jsonl_values(part.locator, self._check_column_name(part, column))

    def data_region(
        self, locator: str, delimiter: str
    ) -> Tuple[Optional[List[str]], int, int]:
        return None, 0, 1  # no header row; data starts at byte 0, line 1

    def read_shard_lines(
        self,
        locator: str,
        start: int,
        end: Optional[int],
        collect_bad: bool = False,
        first_line: int = 1,
    ) -> Iterator[str]:
        return iter_line_shard(locator, start, end, collect_bad, first_line)

    def parse_rows(
        self, spec: RowSpec, first_line: int, lines: List[str], label: str
    ) -> List[List[str]]:
        return parse_jsonl_chunk(spec, first_line, lines, label)

    def encode_rows(
        self, output_fields: Sequence[str], rows: List[List[str]], delimiter: str
    ) -> str:
        from repro.engine.serialize import encode_rows_jsonl

        return encode_rows_jsonl(output_fields, rows)
