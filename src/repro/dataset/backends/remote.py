"""The URL-scheme opener seam: remote partitions behind one function.

Every reader in the pipeline — schema scans, value streaming, byte-range
shard workers, record-cut planning — opens its input through
:func:`open_locator`, which dispatches on the locator's shape:

* a plain path opens with the builtin ``open(path, "rb")`` — the local
  fast path is untouched, byte for byte;
* ``file://`` URLs resolve to local paths (handled at dataset
  resolution, so globs and directories keep working);
* any other ``scheme://`` URL resolves through the opener registry:
  a :class:`PartOpener` registered for the scheme (tests register
  in-memory fakes this way), falling back to an fsspec-backed opener
  when the optional ``fsspec`` dependency is installed, and otherwise
  failing with a :class:`CLXError` naming the missing extra.

Openers return **seekable binary handles**, the only contract the
byte-range planners and shard readers need — record-aligned cut scans
and shard reads then stream against object stores exactly like local
files.
"""

from __future__ import annotations

import os
import re
import threading
from typing import IO, Callable, Dict, NamedTuple, Optional
from urllib.parse import urlsplit
from urllib.request import url2pathname

from repro.util.errors import CLXError

#: What makes a spec a URL rather than a path.  The scheme must be at
#: least two characters so Windows drive letters (``C:\...``) never
#: parse as schemes.
_URL_RE = re.compile(r"^(?P<scheme>[A-Za-z][A-Za-z0-9+.-]+)://")


class PartOpener(NamedTuple):
    """How to reach partitions of one URL scheme.

    Attributes:
        open: ``url -> seekable binary handle``.
        size: ``url -> size in bytes`` (what ``stat().st_size`` is to a
            local part; drives shard planning and resume keys).
    """

    open: Callable[[str], IO[bytes]]
    size: Callable[[str], int]


_OPENERS: Dict[str, PartOpener] = {}
_OPENERS_LOCK = threading.Lock()


def is_url(spec: str) -> bool:
    """Whether ``spec`` is a ``scheme://`` URL rather than a local path."""
    return _URL_RE.match(spec) is not None


def url_scheme(url: str) -> str:
    """The lower-cased scheme of a URL spec."""
    match = _URL_RE.match(url)
    if match is None:
        raise CLXError(f"{url!r} is not a scheme:// URL")
    return match.group("scheme").lower()


def file_url_to_path(url: str) -> str:
    """Resolve a ``file://`` URL to its local filesystem path."""
    parts = urlsplit(url)
    if parts.netloc not in ("", "localhost"):
        raise CLXError(
            f"file:// URL {url!r} names a remote host {parts.netloc!r}; "
            "only local file:// URLs are supported"
        )
    return url2pathname(parts.path)


def register_opener(scheme: str, opener: PartOpener) -> None:
    """Register (or replace) the opener serving one URL scheme.

    The extension point the fsspec fallback mirrors: anything that can
    produce a seekable binary handle and a byte size can serve
    partitions — object-store clients, archive members, test fakes.
    """
    if not scheme or not scheme.isalnum():
        raise CLXError(f"invalid URL scheme {scheme!r}")
    with _OPENERS_LOCK:
        _OPENERS[scheme.lower()] = opener


def unregister_opener(scheme: str) -> None:
    """Remove a registered opener (primarily for test isolation)."""
    with _OPENERS_LOCK:
        _OPENERS.pop(scheme.lower(), None)


def _fsspec_opener(scheme: str) -> Optional[PartOpener]:
    """An fsspec-backed opener for ``scheme``, or None without fsspec."""
    try:
        import fsspec  # type: ignore[import-not-found,import-untyped]
    except ImportError:
        return None

    def open_url(url: str) -> IO[bytes]:
        handle: IO[bytes] = fsspec.open(url, "rb").open()
        return handle

    def size_of(url: str) -> int:
        fs, path = fsspec.core.url_to_fs(url)
        return int(fs.size(path))

    return PartOpener(open=open_url, size=size_of)


def opener_for(scheme: str) -> PartOpener:
    """The opener serving one URL scheme.

    Raises:
        CLXError: When no opener is registered and fsspec is absent —
            naming the extra to install and the registration hook.
    """
    scheme = scheme.lower()
    with _OPENERS_LOCK:
        opener = _OPENERS.get(scheme)
    if opener is not None:
        return opener
    opener = _fsspec_opener(scheme)
    if opener is not None:
        return opener
    raise CLXError(
        f"no opener serves {scheme}:// partitions and the optional "
        "dependency 'fsspec' is not installed; install the remote extra "
        "(pip install repro-clx[remote]) or register one with "
        "repro.dataset.backends.remote.register_opener"
    )


def open_locator(locator: str) -> IO[bytes]:
    """A seekable binary handle for one part locator (path or URL)."""
    if is_url(locator):
        return opener_for(url_scheme(locator)).open(locator)
    return open(locator, "rb")


def locator_size(locator: str) -> int:
    """Byte size of one part locator (path or URL)."""
    if is_url(locator):
        return opener_for(url_scheme(locator)).size(locator)
    return os.stat(locator).st_size
