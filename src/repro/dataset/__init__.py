"""Partitioned datasets as first-class inputs.

Real columns rarely live in one file: datasets arrive partitioned
(``data/part-*.csv``), and dataset-oriented tooling treats a "table" as
a *set* of files.  This package is the resolution layer that the rest of
the pipeline builds on:

* :class:`~repro.dataset.dataset.Dataset` resolves a mixture of paths,
  globs, and directories into an ordered list of
  :class:`~repro.dataset.dataset.DatasetPart` entries (stable sorted
  ordering, format inferred per file, per-file schema checks);
* :mod:`repro.dataset.readers` streams column values out of each part
  (CSV or JSON Lines) with the same missing-column semantics as the
  byte-range profiling path.

On top of it, :meth:`ParallelProfiler.profile_dataset
<repro.clustering.parallel.ParallelProfiler.profile_dataset>` profiles
every part as one or more shards merged through the associative
:meth:`~repro.clustering.incremental.ColumnProfile.merge_all`, and the
CLI's ``profile``/``compile``/``apply`` accept globs and multiple paths
directly (``apply --output-dir`` preserves partition names).
"""

from repro.dataset.dataset import Dataset, DatasetPart, resolve_dataset
from repro.dataset.readers import iter_part_values, read_csv_header

__all__ = [
    "Dataset",
    "DatasetPart",
    "iter_part_values",
    "read_csv_header",
    "resolve_dataset",
]
