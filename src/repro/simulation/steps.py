"""The *Step* user-effort metric (paper Section 7.4).

The paper quantifies user effort with system-specific Step counts:

* **CLX** — one step per target pattern selected plus one step per
  repaired source plan;
* **FlashFill** — one step per input example provided;
* **RegexReplace** — two steps per Replace operation written (two regexes
  each);
* every system — plus, as a *punishment*, one step per data record it
  ultimately fails to transform correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class StepBreakdown:
    """Step counts for one system on one task.

    Attributes:
        selections: Target patterns selected (CLX only).
        repairs: Source-plan repairs performed (CLX only).
        examples: Input→output examples provided (FlashFill only).
        rules: Replace operations written (RegexReplace only; each counts
            twice in the total).
        punishment: Rows left incorrectly transformed at the end.
    """

    selections: int = 0
    repairs: int = 0
    examples: int = 0
    rules: int = 0
    punishment: int = 0

    @property
    def specification(self) -> int:
        """Steps spent specifying (everything except punishment)."""
        return self.selections + self.repairs + self.examples + 2 * self.rules

    @property
    def total(self) -> int:
        """Total Steps including the punishment term."""
        return self.specification + self.punishment


@dataclass
class SystemRun:
    """Outcome of one simulated run of one system on one task.

    Attributes:
        system: "CLX", "FlashFill" or "RegexReplace".
        task_id: The benchmark task identifier.
        steps: The step breakdown.
        perfect: Whether every row ended up correctly transformed.
        interactions: Number of verify-and-specify rounds, per the
            definition of Section 7.2 (CLX: 1 labeling + plan
            verifications; FlashFill: examples; RegexReplace: rules).
        outputs: Final transformed column (for debugging and tests).
    """

    system: str
    task_id: str
    steps: StepBreakdown
    perfect: bool
    interactions: int
    outputs: List[str] = field(default_factory=list)

    def as_row(self) -> Dict[str, object]:
        """Flatten into a dict suitable for tabular reporting."""
        return {
            "system": self.system,
            "task": self.task_id,
            "steps": self.steps.total,
            "specification": self.steps.specification,
            "punishment": self.steps.punishment,
            "perfect": self.perfect,
            "interactions": self.interactions,
        }
