"""Verification/specification cost model standing in for human timing.

The paper's user studies (Sections 7.2–7.3) measure wall-clock seconds of
real participants.  Humans are not available to a reproduction, so this
module models a participant with explicit per-action costs and derives
interaction times from the same algorithmic quantities the paper argues
drive the observed differences:

* FlashFill users verify at the **instance level** — after each example
  they scan rows until they find the next incorrectly transformed record
  (and do a full pass at the end), so verification cost scales with the
  number of rows and grows as failures get rarer ("finding a needle in a
  haystack");
* CLX users verify at the **pattern level** — they read the list of
  pattern clusters and the suggested Replace operations, so verification
  cost scales with the number of patterns, not rows;
* RegexReplace users also scan rows for the next ill-formatted record,
  but they pay a much higher *specification* cost per interaction because
  they type two regular expressions.

The default constants are calibrated so the 10-row case lands near the
paper's absolute seconds; the claim reproduced is the growth *shape*
(Figures 11, 12 and 14), not the absolute values, and EXPERIMENTS.md
records both.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class UserCostModel:
    """Per-action costs (seconds) of the modelled participant.

    Attributes:
        row_scan_seconds: Reading one transformed row well enough to judge
            whether it is correct.
        pattern_read_seconds: Reading one pattern cluster line (pattern +
            count + samples).
        replace_read_seconds: Reading/verifying one suggested Replace
            operation with its preview.
        select_seconds: Clicking/selecting a target pattern in CLX.
        repair_seconds: Choosing an alternative plan in CLX's repair list.
        example_type_seconds: Typing one input→output example in FlashFill.
        regex_write_seconds: Writing one regular expression by hand.
        setup_seconds: Fixed per-task overhead (loading data, reading the
            task statement) common to all systems.
        preview_confirm_seconds: One-time cost for the CLX user to read
            the post-transformation pattern list and the preview table
            before declaring the task done (independent of data size —
            that is the point of pattern-level verification).
    """

    row_scan_seconds: float = 1.0
    pattern_read_seconds: float = 2.5
    replace_read_seconds: float = 4.0
    select_seconds: float = 5.0
    repair_seconds: float = 10.0
    example_type_seconds: float = 8.0
    regex_write_seconds: float = 25.0
    setup_seconds: float = 15.0
    preview_confirm_seconds: float = 25.0

    # ------------------------------------------------------------------
    # CLX
    # ------------------------------------------------------------------
    def clx_verification(self, pattern_count: int, branch_count: int) -> float:
        """Verification seconds for one CLX run (excluding the final preview).

        The user re-reads the (pre- and post-transformation) pattern list
        and the suggested Replace operations — never individual rows.
        """
        return (
            pattern_count * self.pattern_read_seconds
            + branch_count * self.replace_read_seconds
        )

    def clx_specification(self, repairs: int) -> float:
        """Specification seconds for a CLX run: one selection + repairs."""
        return self.select_seconds + repairs * self.repair_seconds

    # ------------------------------------------------------------------
    # FlashFill
    # ------------------------------------------------------------------
    def flashfill_scan(self, rows: int, remaining_failures: int) -> float:
        """Seconds spent scanning rows to find the next failing record.

        With ``f`` failures uniformly spread over ``rows`` records, the
        expected number of rows read before hitting one is about
        ``rows / (f + 1)``; when no failures remain the user reads the
        whole column once to convince themselves it is done.
        """
        if remaining_failures <= 0:
            return rows * self.row_scan_seconds
        expected_scan = rows / (remaining_failures + 1)
        return expected_scan * self.row_scan_seconds

    def flashfill_specification(self) -> float:
        """Seconds to type one example."""
        return self.example_type_seconds

    # ------------------------------------------------------------------
    # RegexReplace
    # ------------------------------------------------------------------
    def regex_scan(self, rows: int, remaining_failures: int) -> float:
        """Row-scanning cost for the RegexReplace user (same as FlashFill)."""
        return self.flashfill_scan(rows, remaining_failures)

    def regex_specification(self) -> float:
        """Seconds to write one Replace operation (two regular expressions)."""
        return 2 * self.regex_write_seconds
