"""Simulated user studies (paper Sections 7.2 and 7.3, Figures 11–14).

Real participants are replaced by the cost model of
:mod:`repro.simulation.verification` attached to the *traces* of the
scripted lazy users: for every interaction a participant would make, the
trace records how long the model says they spent verifying (scanning rows
or reading patterns) and specifying (typing an example, picking a plan,
writing regexes).  The quantities that drive the model — rows scanned,
failures remaining, patterns and branches shown — are measured from the
actual systems running on the actual (synthetic) data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines.flashfill.session import FlashFillSession
from repro.baselines.regex_replace import RegexReplaceSession
from repro.bench.phone import phone_user_study_cases
from repro.bench.task import TransformationTask
from repro.clustering.profiler import PatternProfiler
from repro.core.transformer import transform_column
from repro.simulation.lazy_user import _write_rule_for
from repro.simulation.verification import UserCostModel
from repro.synthesis.repair import oracle_repair
from repro.synthesis.synthesizer import Synthesizer


@dataclass
class InteractionTrace:
    """Timed trace of one simulated participant on one task and system.

    Attributes:
        system: "CLX", "FlashFill" or "RegexReplace".
        task_id: The task the participant worked on.
        verification_seconds: Total modelled verification time.
        specification_seconds: Total modelled specification (input) time.
        setup_seconds: Fixed per-task overhead.
        timestamps: Cumulative completion time after each interaction
            (the data behind Figure 11c).
        perfect: Whether the final column was fully correct.
    """

    system: str
    task_id: str
    verification_seconds: float
    specification_seconds: float
    setup_seconds: float
    timestamps: List[float] = field(default_factory=list)
    perfect: bool = True

    @property
    def interactions(self) -> int:
        """Number of verify-and-specify rounds."""
        return len(self.timestamps)

    @property
    def total_seconds(self) -> float:
        """Overall completion time (Figure 11a / Figure 14)."""
        return self.verification_seconds + self.specification_seconds + self.setup_seconds


# ----------------------------------------------------------------------
# Per-system traced runs
# ----------------------------------------------------------------------
def trace_clx(task: TransformationTask, model: UserCostModel) -> InteractionTrace:
    """Trace a CLX participant: label, then verify/repair each suggested plan."""
    hierarchy = PatternProfiler().profile(task.inputs)
    target = task.target_pattern()
    result = Synthesizer().synthesize(hierarchy, target)
    repaired, repairs = oracle_repair(result, task.expected)
    report = transform_column(repaired.program, task.inputs, target)
    perfect = all(
        output == task.desired_output(raw)
        for raw, output in zip(report.inputs, report.outputs)
    )

    pattern_count = len(hierarchy.leaf_nodes)
    branch_count = len(repaired.program)

    timestamps: List[float] = []
    clock = model.setup_seconds
    verification = 0.0
    specification = 0.0

    # Interaction 1: read the pattern list, select the target.
    read = pattern_count * model.pattern_read_seconds
    verification += read
    specification += model.select_seconds
    clock += read + model.select_seconds
    timestamps.append(clock)

    # One interaction per suggested plan: read the Replace operation and
    # the post-transformation pattern list; repair when needed.
    repairs_left = repairs
    for _branch in range(branch_count):
        read = model.replace_read_seconds + pattern_count * model.pattern_read_seconds / max(1, branch_count)
        verification += read
        clock += read
        if repairs_left > 0:
            specification += model.repair_seconds
            clock += model.repair_seconds
            repairs_left -= 1
        timestamps.append(clock)

    # Final confirmation: read the post-transformation pattern list and
    # the preview table once; its cost does not depend on the row count.
    verification += model.preview_confirm_seconds
    clock += model.preview_confirm_seconds
    timestamps[-1] = clock

    return InteractionTrace(
        system="CLX",
        task_id=task.task_id,
        verification_seconds=verification,
        specification_seconds=specification,
        setup_seconds=model.setup_seconds,
        timestamps=timestamps,
        perfect=perfect,
    )


def trace_flashfill(task: TransformationTask, model: UserCostModel) -> InteractionTrace:
    """Trace a FlashFill participant: scan for a failing row, give an example, repeat."""
    session = FlashFillSession(task.inputs)
    rows = len(task.inputs)
    timestamps: List[float] = []
    clock = model.setup_seconds
    verification = 0.0
    specification = 0.0
    given: set = set()

    while True:
        failing = session.failing_rows(task.expected)
        scan = model.flashfill_scan(rows, len(failing))
        verification += scan
        clock += scan
        if not failing:
            timestamps.append(clock)
            break
        raw = failing[0]
        if raw in given:
            timestamps.append(clock)
            break
        given.add(raw)
        specification += model.flashfill_specification()
        clock += model.flashfill_specification()
        session.add_example(raw, task.desired_output(raw))
        timestamps.append(clock)

    failing = session.failing_rows(task.expected)
    return InteractionTrace(
        system="FlashFill",
        task_id=task.task_id,
        verification_seconds=verification,
        specification_seconds=specification,
        setup_seconds=model.setup_seconds,
        timestamps=timestamps,
        perfect=not failing,
    )


def trace_regex_replace(task: TransformationTask, model: UserCostModel) -> InteractionTrace:
    """Trace a RegexReplace participant: scan, write a Replace, repeat."""
    session = RegexReplaceSession(task.inputs)
    rows = len(task.inputs)
    timestamps: List[float] = []
    clock = model.setup_seconds
    verification = 0.0
    specification = 0.0
    handled: set = set()
    desired_column = [task.desired_output(value) for value in task.inputs]

    while True:
        failing = session.failing_rows(task.expected)
        scan = model.regex_scan(rows, len(failing))
        verification += scan
        clock += scan
        if not failing:
            timestamps.append(clock)
            break
        raw = failing[0]
        if raw in handled:
            timestamps.append(clock)
            break
        handled.add(raw)
        specification += model.regex_specification()
        clock += model.regex_specification()
        session.add_operation(
            _write_rule_for(
                raw,
                task.desired_output(raw),
                current_column=session.outputs(),
                desired_column=desired_column,
            )
        )
        timestamps.append(clock)

    failing = session.failing_rows(task.expected)
    return InteractionTrace(
        system="RegexReplace",
        task_id=task.task_id,
        verification_seconds=verification,
        specification_seconds=specification,
        setup_seconds=model.setup_seconds,
        timestamps=timestamps,
        perfect=not failing,
    )


_TRACERS = {
    "CLX": trace_clx,
    "FlashFill": trace_flashfill,
    "RegexReplace": trace_regex_replace,
}


def trace_task(task: TransformationTask, model: Optional[UserCostModel] = None) -> Dict[str, InteractionTrace]:
    """Trace all three systems on ``task``."""
    model = model or UserCostModel()
    return {system: tracer(task, model) for system, tracer in _TRACERS.items()}


# ----------------------------------------------------------------------
# The two studies
# ----------------------------------------------------------------------
def run_scalability_study(
    model: Optional[UserCostModel] = None,
    seed: int = 331,
) -> Dict[str, Dict[str, InteractionTrace]]:
    """The verification-effort user study of Section 7.2 (Figures 11–12).

    Returns ``{case_name: {system: trace}}`` for the three phone-number
    cases 10(2), 100(4) and 300(6).
    """
    model = model or UserCostModel()
    cases = phone_user_study_cases(seed=seed)
    results: Dict[str, Dict[str, InteractionTrace]] = {}
    for task in cases:
        case_name = task.task_id.replace("userstudy-phone-", "")
        results[case_name] = trace_task(task, model)
    return results


def run_explainability_study(
    tasks: Sequence[TransformationTask],
    model: Optional[UserCostModel] = None,
) -> Dict[str, Dict[str, InteractionTrace]]:
    """Completion-time part of the explainability study (Figure 14).

    Args:
        tasks: The three explainability tasks (see
            :func:`repro.bench.suite.explainability_tasks`).
        model: Cost model; defaults to the calibrated one.

    Returns:
        ``{task_id: {system: trace}}``.
    """
    model = model or UserCostModel()
    return {task.task_id: trace_task(task, model) for task in tasks}
