"""Comprehension study model (paper Section 7.3, Figure 13, Appendix C).

The paper asks participants "given input *x*, what is the expected
output?" after they finished a task on one of the three systems, and
measures the fraction of correct answers.  The causal claim is that CLX
(and RegexReplace) users can answer because they *possess an executable
description of the transformation* — the Replace operations — while
FlashFill users only ever saw transformed rows and must extrapolate.

The model here makes that mechanism explicit:

* a **CLX reader** answers by executing the explained Replace operations
  (after lazy-user repairs) on the quiz input;
* a **RegexReplace reader** answers by executing the rules they wrote;
* a **FlashFill reader** can only recall behaviour they have observed:
  they answer correctly when the quiz input appears verbatim in the data
  they worked on; for an unseen value of a *seen* format they answer
  correctly half the time (they may or may not extrapolate the format
  correctly); for a novel format they answer incorrectly (this is exactly
  the "+1 724-285-5210" failure of the paper's motivating example).

Each task contributes three quiz questions — one verbatim row, one fresh
value in a seen format, one value in a novel format — mirroring the
structure of the Appendix C questionnaire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.bench.task import TransformationTask
from repro.clustering.profiler import PatternProfiler
from repro.core.transformer import transform_column
from repro.dsl.explain import explain_program
from repro.dsl.replace import apply_replacements
from repro.patterns.matching import pattern_of_string
from repro.synthesis.repair import oracle_repair
from repro.synthesis.synthesizer import Synthesizer


@dataclass(frozen=True)
class QuizQuestion:
    """One "given input x, what is the output?" question.

    Attributes:
        task_id: Task the question belongs to.
        quiz_input: The input value shown to the participant.
        correct_output: The ground-truth expected output.
        kind: "verbatim" (a row of the task data), "seen-format" (a fresh
            value whose format appears in the data) or "novel-format".
    """

    task_id: str
    quiz_input: str
    correct_output: str
    kind: str


@dataclass
class ComprehensionResult:
    """Per-system correct-answer rate for one task (one bar of Figure 13)."""

    task_id: str
    correct_rate: Dict[str, float]
    questions: List[QuizQuestion]


def build_quiz(
    task: TransformationTask,
    seen_format_input: str,
    seen_format_output: str,
    novel_format_input: str,
    novel_format_output: str,
) -> List[QuizQuestion]:
    """Build the three-question quiz for ``task``.

    Args:
        task: The task; its first not-already-correct row becomes the
            verbatim question.
        seen_format_input / seen_format_output: A fresh value sharing a
            format with the task data, and its expected output.
        novel_format_input / novel_format_output: A value in a format the
            task data does not contain, and its expected output (usually
            the value itself, i.e. "left unchanged").
    """
    verbatim = next(
        (value for value in task.inputs if not task.already_correct(value)),
        task.inputs[0],
    )
    return [
        QuizQuestion(task.task_id, verbatim, task.desired_output(verbatim), "verbatim"),
        QuizQuestion(task.task_id, seen_format_input, seen_format_output, "seen-format"),
        QuizQuestion(task.task_id, novel_format_input, novel_format_output, "novel-format"),
    ]


# ----------------------------------------------------------------------
# Readers
# ----------------------------------------------------------------------
def _clx_predictions(task: TransformationTask, questions: Sequence[QuizQuestion]) -> List[str]:
    """Predict by executing the explained (and lazily repaired) CLX program."""
    hierarchy = PatternProfiler().profile(task.inputs)
    target = task.target_pattern()
    result = Synthesizer().synthesize(hierarchy, target)
    repaired, _repairs = oracle_repair(result, task.expected)
    operations = explain_program(repaired.program)
    predictions = []
    for question in questions:
        report = transform_column(repaired.program, [question.quiz_input], target)
        # Reading the Replace operations and executing them mentally gives
        # the same answer as the program itself; we use the explained form
        # to keep the model honest about *what* the reader has access to.
        explained = apply_replacements(operations, question.quiz_input)
        predictions.append(explained if explained != question.quiz_input else report.outputs[0])
    return predictions


def _regex_predictions(task: TransformationTask, questions: Sequence[QuizQuestion]) -> List[str]:
    """Predict by executing the rules the simulated RegexReplace user wrote."""
    from repro.baselines.regex_replace import RegexReplaceSession
    from repro.simulation.lazy_user import _write_rule_for

    session = RegexReplaceSession(task.inputs)
    handled: set = set()
    desired_column = [task.desired_output(value) for value in task.inputs]
    while True:
        failing = session.failing_rows(task.expected)
        if not failing or failing[0] in handled:
            break
        raw = failing[0]
        handled.add(raw)
        session.add_operation(
            _write_rule_for(
                raw,
                task.desired_output(raw),
                current_column=session.outputs(),
                desired_column=desired_column,
            )
        )

    predictions = []
    for question in questions:
        current = question.quiz_input
        for rule in session.rules:
            operation = rule.as_operation()
            if operation.matches(current):
                current = operation.apply(current)
        predictions.append(current)
    return predictions


def _flashfill_predictions(task: TransformationTask, questions: Sequence[QuizQuestion]) -> List[str]:
    """Predict what a FlashFill user would answer (recall-based model)."""
    data_values = set(task.inputs)
    data_patterns = {pattern_of_string(value) for value in task.inputs}
    predictions = []
    seen_format_toggle = True
    for question in questions:
        if question.quiz_input in data_values:
            predictions.append(question.correct_output)
            continue
        if pattern_of_string(question.quiz_input) in data_patterns:
            # Extrapolating a seen format succeeds half the time.
            predictions.append(
                question.correct_output if seen_format_toggle else question.quiz_input + "?"
            )
            seen_format_toggle = not seen_format_toggle
            continue
        # Novel format: the user has no basis to predict the behaviour.
        predictions.append(question.quiz_input + "?")
    return predictions


_READERS = {
    "CLX": _clx_predictions,
    "RegexReplace": _regex_predictions,
    "FlashFill": _flashfill_predictions,
}


def run_comprehension_study(
    tasks_with_quizzes: Sequence[tuple],
) -> List[ComprehensionResult]:
    """Run the comprehension model over ``(task, questions)`` pairs.

    Args:
        tasks_with_quizzes: Sequence of ``(TransformationTask, [QuizQuestion])``.

    Returns:
        One :class:`ComprehensionResult` per task with the per-system
        correct rates (Figure 13).
    """
    results = []
    for task, questions in tasks_with_quizzes:
        rates: Dict[str, float] = {}
        for system, reader in _READERS.items():
            predictions = reader(task, questions)
            correct = sum(
                1
                for prediction, question in zip(predictions, questions)
                if prediction == question.correct_output
            )
            rates[system] = correct / len(questions) if questions else 0.0
        results.append(
            ComprehensionResult(task_id=task.task_id, correct_rate=rates, questions=list(questions))
        )
    return results
