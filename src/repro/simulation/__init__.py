"""Simulated users and user-study cost models (paper Section 7).

The paper's evaluation has two kinds of measurements:

* **simulation** (Section 7.4) — a scripted "lazy" user drives each
  system over the 47-task benchmark and the *Step* effort metric is
  counted exactly as the paper defines it; this part involves no humans
  and is reproduced directly by :mod:`repro.simulation.lazy_user` and
  :mod:`repro.simulation.steps`;
* **user studies** (Sections 7.2–7.3) — human completion, verification
  and comprehension measurements.  Humans are replaced here by explicit
  cost models (:mod:`repro.simulation.verification`,
  :mod:`repro.simulation.comprehension`) driven by the same algorithmic
  quantities the paper argues cause the observed differences (rows vs.
  patterns to inspect, exposed vs. hidden programs).  DESIGN.md documents
  this substitution.
"""

from repro.simulation.steps import StepBreakdown, SystemRun
from repro.simulation.lazy_user import (
    simulate_clx,
    simulate_flashfill,
    simulate_regex_replace,
    simulate_all,
)
from repro.simulation.verification import UserCostModel
from repro.simulation.userstudy import (
    InteractionTrace,
    run_explainability_study,
    run_scalability_study,
)
from repro.simulation.comprehension import run_comprehension_study

__all__ = [
    "InteractionTrace",
    "StepBreakdown",
    "SystemRun",
    "UserCostModel",
    "run_comprehension_study",
    "run_explainability_study",
    "run_scalability_study",
    "simulate_all",
    "simulate_clx",
    "simulate_flashfill",
    "simulate_regex_replace",
]
