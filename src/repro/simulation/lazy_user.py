"""Scripted "lazy" users driving the three systems (paper Section 7.4).

The simulation protocol follows Gulwani et al.'s lazy-user approach, as
the paper describes it:

* **CLX** — the user selects the target pattern(s), then repairs the
  default atomic transformation plan of any source pattern that is wrong
  by picking a better candidate from the ranked list;
* **FlashFill** — the user gives an example for the first record in a
  non-standard format, then keeps giving examples for the first record
  the current program still gets wrong;
* **RegexReplace** — the user writes a Replace operation (two regexes)
  for the first still-ill-formatted record's format, repeating until the
  column is clean.

All three simulated users consult the task's expected-output oracle when
"verifying" — the cost of that verification is what the user-study models
in :mod:`repro.simulation.verification` account for.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.baselines.flashfill.session import FlashFillSession
from repro.baselines.regex_replace import RegexReplaceSession
from repro.bench.task import TransformationTask
from repro.core.transformer import transform_column
from repro.dsl.ast import Branch
from repro.dsl.explain import explain_branch
from repro.dsl.interpreter import apply_plan
from repro.dsl.replace import ReplaceOperation
from repro.patterns.matching import match_pattern, pattern_of_string
from repro.simulation.steps import StepBreakdown, SystemRun
from repro.synthesis.alignment import align_tokens
from repro.synthesis.plans import enumerate_plans, rank_plans
from repro.synthesis.repair import oracle_repair
from repro.synthesis.synthesizer import Synthesizer


# ----------------------------------------------------------------------
# CLX
# ----------------------------------------------------------------------
def simulate_clx(task: TransformationTask, synthesizer: Optional[Synthesizer] = None) -> SystemRun:
    """Run the lazy CLX user on ``task``.

    Steps = one Selection for the target pattern + one Repair per source
    pattern whose default plan had to be replaced, plus the punishment
    term for rows that still end up wrong.
    """
    from repro.clustering.profiler import PatternProfiler

    synthesizer = synthesizer or Synthesizer()
    hierarchy = PatternProfiler().profile(task.inputs)
    target = task.target_pattern()
    result = synthesizer.synthesize(hierarchy, target)
    repaired, repairs = oracle_repair(result, task.expected)
    report = transform_column(repaired.program, task.inputs, target)

    wrong = sum(
        1
        for raw, output in zip(report.inputs, report.outputs)
        if output != task.desired_output(raw)
    )
    steps = StepBreakdown(selections=1, repairs=repairs, punishment=wrong)
    return SystemRun(
        system="CLX",
        task_id=task.task_id,
        steps=steps,
        perfect=wrong == 0,
        interactions=1 + len(repaired.program),
        outputs=list(report.outputs),
    )


# ----------------------------------------------------------------------
# FlashFill
# ----------------------------------------------------------------------
def simulate_flashfill(task: TransformationTask, max_examples: Optional[int] = None) -> SystemRun:
    """Run the lazy FlashFill user on ``task``.

    Steps = number of examples provided, plus the punishment term for
    rows the final program still gets wrong.
    """
    session = FlashFillSession(task.inputs)
    limit = max_examples if max_examples is not None else len(task.inputs)
    given: set = set()
    while session.example_count < limit:
        failing = session.failing_rows(task.expected)
        if not failing:
            break
        raw = failing[0]
        if raw in given:
            # Giving the same example again cannot help; the row is
            # beyond the system's expressive power.
            break
        given.add(raw)
        session.add_example(raw, task.desired_output(raw))

    failing = session.failing_rows(task.expected)
    steps = StepBreakdown(examples=session.example_count, punishment=len(failing))
    return SystemRun(
        system="FlashFill",
        task_id=task.task_id,
        steps=steps,
        perfect=not failing,
        interactions=session.example_count,
        outputs=session.outputs_or_input(),
    )


# ----------------------------------------------------------------------
# RegexReplace
# ----------------------------------------------------------------------
def _write_rule_for(
    raw: str,
    desired: str,
    current_column: Optional[List[str]] = None,
    desired_column: Optional[List[str]] = None,
) -> ReplaceOperation:
    """The Replace operation a regex-literate user would write for ``raw``.

    A Wrangler user writes *parameterized* regexes ("{digit}+" rather
    than "{digit}3"), so the rule is first attempted over the
    quantifier-generalized pattern of the record, then over its exact
    leaf pattern, and finally — for one-off oddballs no pattern-level
    rule can fix — as an exact string replacement.

    When ``current_column``/``desired_column`` are given, a candidate rule
    is rejected if it would corrupt a row that is currently correct (the
    user checks their regex against the preview before committing, which
    is how a careful Wrangler user avoids over-general patterns).
    """
    from repro.patterns.generalize import generalize_quantifier

    leaf = pattern_of_string(raw)
    candidates = []
    for source in (generalize_quantifier(leaf), leaf):
        target = pattern_of_string(desired)
        dag = align_tokens(source, target)
        if not dag.has_path():
            continue
        token_texts = match_pattern(raw, source)
        if token_texts is None:
            continue
        plans = enumerate_plans(dag)
        for plan in rank_plans(plans, source):
            try:
                if apply_plan(plan, token_texts) == desired:
                    candidates.append(explain_branch(Branch(pattern=source, plan=plan)))
                    break
            except Exception:
                continue
    candidates.append(
        ReplaceOperation(
            regex=f"^{re.escape(raw)}$",
            replacement=desired.replace("$", "$$"),
            description="exact replacement",
        )
    )
    for operation in candidates:
        if _rule_is_safe(operation, current_column, desired_column):
            return operation
    return candidates[-1]


def _rule_is_safe(
    operation: ReplaceOperation,
    current_column: Optional[List[str]],
    desired_column: Optional[List[str]],
) -> bool:
    """Whether ``operation`` leaves every currently-correct row correct."""
    if current_column is None or desired_column is None:
        return True
    for current, desired in zip(current_column, desired_column):
        if current != desired:
            continue
        if operation.matches(current) and operation.apply(current) != current:
            return False
    return True


def simulate_regex_replace(task: TransformationTask, max_rules: Optional[int] = None) -> SystemRun:
    """Run the simulated RegexReplace user on ``task``.

    Steps = two per Replace operation written, plus the punishment term.
    """
    session = RegexReplaceSession(task.inputs)
    limit = max_rules if max_rules is not None else len(task.inputs)
    handled: set = set()
    desired_column = [task.desired_output(value) for value in task.inputs]
    while session.rule_count < limit:
        failing = session.failing_rows(task.expected)
        if not failing:
            break
        raw = failing[0]
        if raw in handled:
            break
        handled.add(raw)
        operation = _write_rule_for(
            raw,
            task.desired_output(raw),
            current_column=session.outputs(),
            desired_column=desired_column,
        )
        session.add_operation(operation)

    failing = session.failing_rows(task.expected)
    steps = StepBreakdown(rules=session.rule_count, punishment=len(failing))
    return SystemRun(
        system="RegexReplace",
        task_id=task.task_id,
        steps=steps,
        perfect=not failing,
        interactions=session.rule_count,
        outputs=session.outputs(),
    )


# ----------------------------------------------------------------------
# All three at once
# ----------------------------------------------------------------------
def simulate_all(task: TransformationTask) -> Dict[str, SystemRun]:
    """Run all three simulated users on ``task``."""
    return {
        "CLX": simulate_clx(task),
        "FlashFill": simulate_flashfill(task),
        "RegexReplace": simulate_regex_replace(task),
    }
