"""The stateless transformation executor.

:class:`TransformEngine` is the execution half of the CLX split: it holds
nothing but an immutable :class:`~repro.engine.compiled.CompiledProgram`
and can therefore be reused across datasets, shared between threads, or
rebuilt in a different process from a serialized artifact.  Three apply
shapes are supported:

* :meth:`TransformEngine.run` — batch apply, returning the same
  :class:`~repro.core.result.TransformReport` the session API produces;
* :meth:`TransformEngine.run_iter` — streaming apply over any iterable,
  holding at most ``chunk_size`` values in memory at a time;
* :meth:`TransformEngine.transform_table` /
  :meth:`TransformEngine.transform_table_iter` — multi-column table
  apply, one compiled program per column, one pass over the table,
  batch or streaming, optionally fanned across worker processes.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Union

from repro.core.result import TransformReport
from repro.dsl.ast import UniFiProgram
from repro.dsl.interpreter import TransformOutcome
from repro.engine.compiled import CompiledProgram
from repro.patterns.pattern import Pattern
from repro.util.errors import ValidationError
from repro.util.pools import chunked, indexed_chunks
from repro.util.validate import validated_chunk_size, validated_workers

#: Anything :meth:`TransformEngine.transform_table` accepts per column.
ProgramLike = Union["TransformEngine", CompiledProgram]


class TransformEngine:
    """Stateless, reusable executor for one compiled program.

    Args:
        compiled: The compiled program to execute.
    """

    __slots__ = ("_compiled",)

    def __init__(self, compiled: CompiledProgram) -> None:
        if not isinstance(compiled, CompiledProgram):
            raise ValidationError(
                f"TransformEngine requires a CompiledProgram, got {type(compiled).__name__}"
            )
        self._compiled = compiled

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_program(
        cls,
        program: UniFiProgram,
        target: Pattern,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> "TransformEngine":
        """Compile a raw program + target pattern into an engine."""
        return cls(CompiledProgram(program, target, metadata=metadata))

    @classmethod
    def loads(cls, text: str) -> "TransformEngine":
        """Rebuild an engine from a serialized compiled-program artifact."""
        return cls(CompiledProgram.loads(text))

    def dumps(self, indent: Optional[int] = None) -> str:
        """Serialize the underlying compiled program."""
        return self._compiled.dumps(indent=indent)

    @property
    def compiled(self) -> CompiledProgram:
        """The immutable compiled program this engine executes."""
        return self._compiled

    @property
    def target(self) -> Pattern:
        """The target pattern of the compiled program."""
        return self._compiled.target

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_one(self, value: str) -> TransformOutcome:
        """Transform a single value."""
        return self._compiled.run_one(value)

    def run(self, values: Sequence[str]) -> TransformReport:
        """Batch-apply the program to ``values`` (order preserved)."""
        return self._compiled.run(values)

    def run_iter(
        self,
        values: Iterable[str],
        chunk_size: int = 1024,
    ) -> Iterator[TransformOutcome]:
        """Stream ``values`` through the program with constant memory.

        The input iterable is consumed lazily in chunks of ``chunk_size``
        values, so a generator over a huge file is never materialized;
        outcomes are yielded one by one in input order.

        Args:
            values: Any iterable of raw strings.
            chunk_size: Number of values pulled from the iterable at a
                time (must be positive).

        Yields:
            One :class:`~repro.dsl.interpreter.TransformOutcome` per value.
        """
        chunk_size = validated_chunk_size(chunk_size)
        run_one = self._compiled.run_one
        for chunk in chunked(values, chunk_size):
            for value in chunk:
                yield run_one(value)

    def run_parallel(
        self,
        values: Iterable[str],
        workers: Optional[int] = None,
        chunk_size: int = 8192,
    ) -> TransformReport:
        """Batch-apply across ``workers`` processes (order preserved).

        The compiled program is serialized once and rebuilt in each
        worker; chunks of values are fanned out and reassembled in input
        order, so the report is identical to :meth:`run`'s.  With one
        worker (or on a single-CPU host when ``workers`` is None) this
        falls back to the in-process :meth:`run` — no pool is spawned.

        Args:
            values: The values to transform.
            workers: Worker process count; defaults to ``os.cpu_count()``.
            chunk_size: Values per worker task.

        Returns:
            The same :class:`~repro.core.result.TransformReport` that
            :meth:`run` produces.
        """
        resolved = validated_workers(workers)
        chunk_size = validated_chunk_size(chunk_size)
        if resolved <= 1:
            return self.run(list(values))
        from repro.engine.parallel import ShardedExecutor

        with ShardedExecutor(self._compiled, workers=resolved, chunk_size=chunk_size) as executor:
            return executor.run(values)

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------
    @staticmethod
    def transform_table_iter(
        rows: Iterable[Mapping[str, Any]],
        programs: Mapping[str, ProgramLike],
        chunk_size: int = 1024,
    ) -> Iterator[Dict[str, Any]]:
        """Stream a table through one program per column in a single pass.

        The streaming counterpart of :meth:`transform_table`: rows are
        pulled lazily in chunks of ``chunk_size``, every programmed
        column is transformed within the chunk, and finished rows are
        yielded in input order — so a table far larger than memory flows
        through with at most one chunk resident, instead of the
        materialize-then-one-pass-per-column shape of the batch API.

        Args:
            rows: Iterable of row mappings (e.g. ``csv.DictReader`` rows).
                Rows are copied; the input is never mutated.
            programs: Mapping from column name to the
                :class:`TransformEngine` or
                :class:`~repro.engine.compiled.CompiledProgram` that
                transforms it.  ``None`` cells are treated as ``""``.
            chunk_size: Rows resident at a time (must be positive).

        Yields:
            New row dicts with each programmed column replaced by its
            transformed value.

        Raises:
            ValidationError: If a programmed column is missing from some
                row or a program value has an unsupported type.
        """
        from repro.engine.parallel import _apply_columns_to_rows

        chunk_size = validated_chunk_size(chunk_size)
        compiled = [
            (column, _as_engine(column, program).compiled)
            for column, program in programs.items()
        ]

        def generate() -> Iterator[Dict[str, Any]]:
            for base_index, chunk in indexed_chunks(rows, chunk_size):
                yield from _apply_columns_to_rows(compiled, base_index, chunk)

        return generate()

    @staticmethod
    def transform_table(
        rows: Iterable[Mapping[str, Any]],
        programs: Mapping[str, ProgramLike],
        workers: Optional[int] = None,
        chunk_size: int = 8192,
    ) -> List[Dict[str, Any]]:
        """Apply one program per column to a table of rows, in one pass.

        Args:
            rows: Iterable of row mappings (e.g. ``csv.DictReader`` rows).
                Rows are copied; the input is never mutated.
            programs: Mapping from column name to the
                :class:`TransformEngine` or
                :class:`~repro.engine.compiled.CompiledProgram` that
                transforms it.  ``None`` cells are treated as ``""``.
            workers: ``None`` (default) or 1 runs in-process; larger
                values fan chunks of rows across that many worker
                processes (``run_parallel``-style: compiled artifacts
                rebuilt per worker, ordered results, bounded in-flight
                window).  The output is identical either way.
            chunk_size: Rows per chunk / worker task.

        Returns:
            New row dicts with each programmed column replaced by its
            transformed value.

        Raises:
            ValidationError: If a programmed column is missing from some
                row, a program value has an unsupported type, or
                ``workers`` / ``chunk_size`` is invalid.
        """
        resolved = 1 if workers is None else validated_workers(workers)
        chunk_size = validated_chunk_size(chunk_size)
        if resolved <= 1:
            return list(
                TransformEngine.transform_table_iter(rows, programs, chunk_size=chunk_size)
            )
        from repro.engine.parallel import transform_table_parallel

        compiled = [
            (column, _as_engine(column, program).compiled)
            for column, program in programs.items()
        ]
        return list(transform_table_parallel(rows, compiled, resolved, chunk_size))


def _as_engine(column: str, program: ProgramLike) -> TransformEngine:
    if isinstance(program, TransformEngine):
        return program
    if isinstance(program, CompiledProgram):
        return TransformEngine(program)
    raise ValidationError(
        f"column {column!r}: expected TransformEngine or CompiledProgram, "
        f"got {type(program).__name__}"
    )
