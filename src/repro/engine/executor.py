"""The stateless transformation executor.

:class:`TransformEngine` is the execution half of the CLX split: it holds
nothing but an immutable :class:`~repro.engine.compiled.CompiledProgram`
and can therefore be reused across datasets, shared between threads, or
rebuilt in a different process from a serialized artifact.  Three apply
shapes are supported:

* :meth:`TransformEngine.run` — batch apply, returning the same
  :class:`~repro.core.result.TransformReport` the session API produces;
* :meth:`TransformEngine.run_iter` — streaming apply over any iterable,
  holding at most ``chunk_size`` values in memory at a time;
* :meth:`TransformEngine.transform_table` /
  :meth:`TransformEngine.transform_table_iter` — multi-column table
  apply, one compiled program per column, one pass over the table,
  batch or streaming, optionally fanned across worker processes;
* :meth:`TransformEngine.apply_dataset` — the same program over a whole
  partitioned dataset on disk (CSV and JSONL parts mixed freely), into
  one spliced sink or one output per partition, with cross-partition
  worker fan-out.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    TextIO,
    Union,
)

if TYPE_CHECKING:  # circular at runtime: dataset/parallel import engines
    from pathlib import Path

    from repro.dataset import Dataset
    from repro.engine.parallel import DatasetApplyResult

from repro.core.result import TransformReport
from repro.dsl.ast import UniFiProgram
from repro.dsl.interpreter import TransformOutcome
from repro.engine.compiled import DEFAULT_MEMO_SIZE, CompiledProgram
from repro.patterns.pattern import Pattern
from repro.util.errors import ValidationError
from repro.util.pools import chunked, indexed_chunks
from repro.util.validate import validated_chunk_size, validated_workers

#: Anything :meth:`TransformEngine.transform_table` accepts per column.
ProgramLike = Union["TransformEngine", CompiledProgram]


class TransformEngine:
    """Stateless, reusable executor for one compiled program.

    Args:
        compiled: The compiled program to execute.
    """

    __slots__ = ("_compiled",)

    def __init__(self, compiled: CompiledProgram) -> None:
        if not isinstance(compiled, CompiledProgram):
            raise ValidationError(
                f"TransformEngine requires a CompiledProgram, got {type(compiled).__name__}"
            )
        self._compiled = compiled

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_program(
        cls,
        program: UniFiProgram,
        target: Pattern,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> "TransformEngine":
        """Compile a raw program + target pattern into an engine."""
        return cls(CompiledProgram(program, target, metadata=metadata))

    @classmethod
    def loads(
        cls,
        text: str,
        *,
        memo_size: int = DEFAULT_MEMO_SIZE,
        merged_dispatch: bool = True,
    ) -> "TransformEngine":
        """Rebuild an engine from a serialized compiled-program artifact.

        ``memo_size`` / ``merged_dispatch`` configure the rebuilt
        program's hot-loop dispatch (see
        :class:`~repro.engine.compiled.CompiledProgram`); they are
        runtime knobs, not part of the artifact.
        """
        return cls(
            CompiledProgram.loads(
                text, memo_size=memo_size, merged_dispatch=merged_dispatch
            )
        )

    def dumps(self, indent: Optional[int] = None) -> str:
        """Serialize the underlying compiled program."""
        return self._compiled.dumps(indent=indent)

    @property
    def compiled(self) -> CompiledProgram:
        """The immutable compiled program this engine executes."""
        return self._compiled

    @property
    def target(self) -> Pattern:
        """The target pattern of the compiled program."""
        return self._compiled.target

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_one(self, value: str) -> TransformOutcome:
        """Transform a single value."""
        return self._compiled.run_one(value)

    def run(self, values: Sequence[str]) -> TransformReport:
        """Batch-apply the program to ``values`` (order preserved)."""
        return self._compiled.run(values)

    def run_iter(
        self,
        values: Iterable[str],
        chunk_size: int = 1024,
    ) -> Iterator[TransformOutcome]:
        """Stream ``values`` through the program with constant memory.

        The input iterable is consumed lazily in chunks of ``chunk_size``
        values, so a generator over a huge file is never materialized;
        outcomes are yielded one by one in input order.

        Args:
            values: Any iterable of raw strings.
            chunk_size: Number of values pulled from the iterable at a
                time (must be positive).

        Yields:
            One :class:`~repro.dsl.interpreter.TransformOutcome` per value.
        """
        chunk_size = validated_chunk_size(chunk_size)
        run_one = self._compiled.run_one
        for chunk in chunked(values, chunk_size):
            for value in chunk:
                yield run_one(value)

    def run_parallel(
        self,
        values: Iterable[str],
        workers: Optional[int] = None,
        chunk_size: int = 8192,
    ) -> TransformReport:
        """Batch-apply across ``workers`` processes (order preserved).

        The compiled program is serialized once and rebuilt in each
        worker; chunks of values are fanned out and reassembled in input
        order, so the report is identical to :meth:`run`'s.  With one
        worker (or on a single-CPU host when ``workers`` is None) this
        falls back to the in-process :meth:`run` — no pool is spawned.

        Args:
            values: The values to transform.
            workers: Worker process count; defaults to ``os.cpu_count()``.
            chunk_size: Values per worker task.

        Returns:
            The same :class:`~repro.core.result.TransformReport` that
            :meth:`run` produces.
        """
        resolved = validated_workers(workers)
        chunk_size = validated_chunk_size(chunk_size)
        if resolved <= 1:
            return self.run(list(values))
        from repro.engine.parallel import ShardedExecutor

        with ShardedExecutor(self._compiled, workers=resolved, chunk_size=chunk_size) as executor:
            return executor.run(values)

    # ------------------------------------------------------------------
    # Datasets
    # ------------------------------------------------------------------
    def apply_dataset(
        self,
        dataset: Union["Dataset", str, "Path", Sequence[Union[str, "Path"]]],
        columns: Union[str, Sequence[str]],
        output: Union[str, "Path", None] = None,
        output_dir: Union[str, "Path", None] = None,
        stream: Optional[TextIO] = None,
        out_format: str = "csv",
        delimiter: str = ",",
        in_place: bool = False,
        output_columns: Optional[Mapping[str, str]] = None,
        workers: Optional[int] = None,
        chunk_size: int = 4096,
        shard_bytes: int = 1 << 20,
        on_error: str = "abort",
        quarantine_dir: Union[str, "Path", None] = None,
        shard_timeout: Optional[float] = None,
        max_retries: int = 0,
        resume: bool = False,
        adaptive_target_ms: Optional[int] = None,
        assume_csv: bool = False,
    ) -> "DatasetApplyResult":
        """Apply this engine's program across a partitioned dataset.

        The compile-once/apply-anywhere path for data that lives on
        disk: ``dataset`` may be a resolved
        :class:`~repro.dataset.dataset.Dataset` or any spec(s) its
        :meth:`~repro.dataset.dataset.Dataset.resolve` accepts (paths,
        globs, directories — CSV and JSONL parts mixed freely).  Every
        named column is transformed by this program in one pass;
        partitions stream through the worker pool concurrently
        (:meth:`ShardedTableExecutor.run_dataset
        <repro.engine.parallel.ShardedTableExecutor.run_dataset>`) and
        the sink bytes are identical at any worker count.

        Args:
            dataset: A dataset, or specs to resolve into one.
            columns: Column name(s) this program transforms.
            output: Splice every partition into this one file.
            output_dir: Write one output per partition here instead,
                preserving partition names (final extension follows
                ``out_format``).
            stream: Splice into an open text stream instead of a file.
            out_format: Any sink format the backend registry exposes:
                ``"csv"`` (default), ``"jsonl"``, or — with the
                pyarrow extra installed — ``"parquet"``/``"arrow"``.
            delimiter: CSV delimiter (parse and encode).
            in_place: Overwrite the source columns instead of adding
                ``<column>_transformed`` ones.
            output_columns: Explicit input→sink column mapping,
                overriding the default naming (ignores ``in_place``).
            workers: Worker process count; ``None`` means all cores,
                1 runs in-process.
            chunk_size: Physical lines per transform batch inside each
                worker.
            shard_bytes: Partitions larger than this split into
                record-aligned byte-range shards.
            on_error: ``"abort"`` (default) or ``"quarantine"`` —
                divert bad records to ``quarantine_dir`` instead of
                failing the run.
            quarantine_dir: Where quarantined records land (one JSONL
                file per partition); required with quarantine mode.
            shard_timeout: Seconds before an in-flight shard counts as
                hung and its worker is replaced (``None`` = no limit).
            max_retries: Infrastructure-fault retries per shard before
                it is declared poison.
            resume: With ``output_dir``, skip partitions the run
                manifest records as complete.
            adaptive_target_ms: When set, chunk/shard sizes adapt
                toward this per-task latency target instead of staying
                at the static knobs (sink bytes are unaffected).
            assume_csv: Treat extensionless partition files as CSV
                instead of refusing them (only used when ``dataset``
                arrives as unresolved specs).

        Returns:
            The :class:`~repro.engine.parallel.DatasetApplyResult`
            (rows, flagged cells, partitions, files written,
            quarantine summary).
        """
        from repro.dataset import Dataset
        from repro.engine.parallel import ShardedTableExecutor, apply_dataset
        from repro.util.pools import FaultPolicy

        from repro.util.csvio import resolve_column

        if not isinstance(dataset, Dataset):
            dataset = Dataset.resolve(dataset, assume_csv=assume_csv)
        names = [columns] if isinstance(columns, str) else list(columns)
        if not names:
            raise ValidationError("apply_dataset needs at least one column name")
        header = dataset.header(delimiter, strict=on_error != "quarantine")
        # Resolve up front so index addressing ("1") and the output
        # naming rules below agree on the real column name.
        names = [resolve_column(header, name) for name in names]
        if output_columns is None:
            if in_place:
                output_columns = {name: name for name in names}
            else:
                output_columns = {name: f"{name}_transformed" for name in names}
        with ShardedTableExecutor(
            {name: self for name in names},
            header,
            output_columns=output_columns,
            out_format=out_format,
            delimiter=delimiter,
            source=str(dataset.parts[0].path),
            workers=workers,
            chunk_size=chunk_size,
            on_error=on_error,
            fault_policy=FaultPolicy(max_retries=max_retries, shard_timeout=shard_timeout),
            adaptive_target_ms=adaptive_target_ms,
        ) as executor:
            return apply_dataset(
                executor,
                dataset,
                output=output,
                output_dir=output_dir,
                stream=stream,
                shard_bytes=shard_bytes,
                quarantine_dir=quarantine_dir,
                resume=resume,
            )

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------
    @staticmethod
    def transform_table_iter(
        rows: Iterable[Mapping[str, Any]],
        programs: Mapping[str, ProgramLike],
        chunk_size: int = 1024,
    ) -> Iterator[Dict[str, Any]]:
        """Stream a table through one program per column in a single pass.

        The streaming counterpart of :meth:`transform_table`: rows are
        pulled lazily in chunks of ``chunk_size``, every programmed
        column is transformed within the chunk, and finished rows are
        yielded in input order — so a table far larger than memory flows
        through with at most one chunk resident, instead of the
        materialize-then-one-pass-per-column shape of the batch API.

        Args:
            rows: Iterable of row mappings (e.g. ``csv.DictReader`` rows).
                Rows are copied; the input is never mutated.
            programs: Mapping from column name to the
                :class:`TransformEngine` or
                :class:`~repro.engine.compiled.CompiledProgram` that
                transforms it.  ``None`` cells are treated as ``""``.
            chunk_size: Rows resident at a time (must be positive).

        Yields:
            New row dicts with each programmed column replaced by its
            transformed value.

        Raises:
            ValidationError: If a programmed column is missing from some
                row or a program value has an unsupported type.
        """
        from repro.engine.parallel import _apply_columns_to_rows

        chunk_size = validated_chunk_size(chunk_size)
        compiled = [
            (column, _as_engine(column, program).compiled)
            for column, program in programs.items()
        ]

        def generate() -> Iterator[Dict[str, Any]]:
            for base_index, chunk in indexed_chunks(rows, chunk_size):
                yield from _apply_columns_to_rows(compiled, base_index, chunk)

        return generate()

    @staticmethod
    def transform_table(
        rows: Iterable[Mapping[str, Any]],
        programs: Mapping[str, ProgramLike],
        workers: Optional[int] = None,
        chunk_size: int = 8192,
    ) -> List[Dict[str, Any]]:
        """Apply one program per column to a table of rows, in one pass.

        Args:
            rows: Iterable of row mappings (e.g. ``csv.DictReader`` rows).
                Rows are copied; the input is never mutated.
            programs: Mapping from column name to the
                :class:`TransformEngine` or
                :class:`~repro.engine.compiled.CompiledProgram` that
                transforms it.  ``None`` cells are treated as ``""``.
            workers: ``None`` (default) or 1 runs in-process; larger
                values fan chunks of rows across that many worker
                processes (``run_parallel``-style: compiled artifacts
                rebuilt per worker, ordered results, bounded in-flight
                window).  The output is identical either way.
            chunk_size: Rows per chunk / worker task.

        Returns:
            New row dicts with each programmed column replaced by its
            transformed value.

        Raises:
            ValidationError: If a programmed column is missing from some
                row, a program value has an unsupported type, or
                ``workers`` / ``chunk_size`` is invalid.
        """
        resolved = 1 if workers is None else validated_workers(workers)
        chunk_size = validated_chunk_size(chunk_size)
        if resolved <= 1:
            return list(
                TransformEngine.transform_table_iter(rows, programs, chunk_size=chunk_size)
            )
        from repro.engine.parallel import transform_table_parallel

        compiled = [
            (column, _as_engine(column, program).compiled)
            for column, program in programs.items()
        ]
        return list(transform_table_parallel(rows, compiled, resolved, chunk_size))


def _as_engine(column: str, program: ProgramLike) -> TransformEngine:
    if isinstance(program, TransformEngine):
        return program
    if isinstance(program, CompiledProgram):
        return TransformEngine(program)
    raise ValidationError(
        f"column {column!r}: expected TransformEngine or CompiledProgram, "
        f"got {type(program).__name__}"
    )
