"""JSON serialization of UniFi programs and their parts.

A synthesized program is the expensive artifact of a CLX session — the
user verified it once, and the whole economic argument of the paper is
that it is then applied to the *rest* of the data.  This module gives
every program component a stable JSON form so that a program can outlive
the session that produced it:

* patterns serialize as their compact notation string (``"<D>3'-'<D>4"``),
  which :func:`repro.patterns.parse.parse_pattern` round-trips exactly;
* string expressions, plans, guards, and branches serialize as small
  tagged dicts;
* :func:`program_to_dict` / :func:`program_from_dict` handle a whole
  Switch, and :class:`repro.engine.compiled.CompiledProgram` wraps them
  in a versioned artifact envelope.

Decoding is strict: unknown tags, missing fields, or malformed values
raise :class:`~repro.util.errors.SerializationError` rather than
producing a program that silently misbehaves.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.dsl.ast import AtomicPlan, Branch, ConstStr, Extract, StringExpression, UniFiProgram
from repro.dsl.guards import ContainsGuard
from repro.patterns.parse import parse_pattern
from repro.patterns.pattern import Pattern
from repro.util.errors import CLXError, PatternParseError, SerializationError

#: Registry of guard type tags -> decoder.  New guard kinds register here
#: so serialized programs stay forward-extensible.
GUARD_DECODERS: Dict[str, Callable[[dict], Any]] = {
    "contains": ContainsGuard.from_dict,
}


def _require(payload: Any, key: str, context: str) -> Any:
    if not isinstance(payload, dict):
        raise SerializationError(f"{context} must be an object, got {type(payload).__name__}")
    if key not in payload:
        raise SerializationError(f"{context} is missing required field {key!r}")
    return payload[key]


# ----------------------------------------------------------------------
# Patterns
# ----------------------------------------------------------------------
def pattern_to_json(pattern: Pattern) -> str:
    """Serialize a pattern as its notation string (the paper's own syntax)."""
    return pattern.notation()


def pattern_from_json(text: Any) -> Pattern:
    """Parse a serialized pattern, wrapping parse failures as serialization errors."""
    if not isinstance(text, str):
        raise SerializationError(f"pattern must be a notation string, got {type(text).__name__}")
    try:
        return parse_pattern(text)
    except PatternParseError as error:
        raise SerializationError(f"invalid pattern notation {text!r}: {error}") from error


# ----------------------------------------------------------------------
# String expressions and plans
# ----------------------------------------------------------------------
def expression_to_dict(expression: StringExpression) -> dict:
    """Serialize one ``ConstStr`` / ``Extract`` string expression."""
    if isinstance(expression, ConstStr):
        return {"op": "const", "text": expression.text}
    if isinstance(expression, Extract):
        return {"op": "extract", "start": expression.start, "end": expression.end}
    raise SerializationError(f"unsupported string expression {expression!r}")


def expression_from_dict(payload: Any) -> StringExpression:
    """Decode one string expression from its tagged-dict form."""
    op = _require(payload, "op", "string expression")
    try:
        if op == "const":
            text = _require(payload, "text", "ConstStr expression")
            if not isinstance(text, str):
                raise SerializationError(
                    f"ConstStr text must be a string, got {type(text).__name__}"
                )
            return ConstStr(text=text)
        if op == "extract":
            start = _require(payload, "start", "Extract expression")
            end = payload.get("end", start)
            if not isinstance(start, int) or not isinstance(end, int):
                raise SerializationError("Extract start/end must be integers")
            return Extract(start, end)
    except (ValueError, TypeError) as error:
        raise SerializationError(f"invalid string expression {payload!r}: {error}") from error
    raise SerializationError(f"unknown string expression op {op!r}")


def plan_to_dict(plan: AtomicPlan) -> List[dict]:
    """Serialize an atomic plan as the ordered list of its expressions."""
    return [expression_to_dict(expression) for expression in plan.expressions]


def plan_from_dict(payload: Any) -> AtomicPlan:
    """Decode an atomic plan from a list of expression dicts."""
    if not isinstance(payload, list):
        raise SerializationError(f"plan must be a list of expressions, got {type(payload).__name__}")
    return AtomicPlan([expression_from_dict(item) for item in payload])


# ----------------------------------------------------------------------
# Guards
# ----------------------------------------------------------------------
def guard_to_dict(guard: Any) -> Optional[dict]:
    """Serialize a branch guard (``None`` stays ``None``)."""
    if guard is None:
        return None
    to_dict = getattr(guard, "to_dict", None)
    if to_dict is None:
        raise SerializationError(f"guard {guard!r} does not support serialization")
    payload = to_dict()
    if payload.get("type") not in GUARD_DECODERS:
        raise SerializationError(f"guard type {payload.get('type')!r} has no registered decoder")
    return payload


def guard_from_dict(payload: Any) -> Any:
    """Decode a branch guard (``None`` stays ``None``)."""
    if payload is None:
        return None
    kind = _require(payload, "type", "guard")
    decoder = GUARD_DECODERS.get(kind)
    if decoder is None:
        raise SerializationError(f"unknown guard type {kind!r}")
    try:
        return decoder(payload)
    except (KeyError, ValueError, TypeError) as error:
        raise SerializationError(f"invalid guard payload {payload!r}: {error}") from error


# ----------------------------------------------------------------------
# Branches and programs
# ----------------------------------------------------------------------
def branch_to_dict(branch: Branch) -> dict:
    """Serialize one Switch branch."""
    payload = {
        "pattern": pattern_to_json(branch.pattern),
        "plan": plan_to_dict(branch.plan),
    }
    guard = guard_to_dict(branch.guard)
    if guard is not None:
        payload["guard"] = guard
    return payload


def branch_from_dict(payload: Any) -> Branch:
    """Decode one Switch branch."""
    pattern = pattern_from_json(_require(payload, "pattern", "branch"))
    plan = plan_from_dict(_require(payload, "plan", "branch"))
    guard = guard_from_dict(payload.get("guard"))
    return Branch(pattern=pattern, plan=plan, guard=guard)


def program_to_dict(program: UniFiProgram) -> dict:
    """Serialize a whole UniFi program (ordered Switch of branches)."""
    return {"branches": [branch_to_dict(branch) for branch in program.branches]}


def program_from_dict(payload: Any) -> UniFiProgram:
    """Decode a whole UniFi program."""
    branches = _require(payload, "branches", "program")
    if not isinstance(branches, list):
        raise SerializationError("program branches must be a list")
    try:
        return UniFiProgram([branch_from_dict(branch) for branch in branches])
    except SerializationError:
        raise
    except CLXError as error:
        raise SerializationError(f"invalid program payload: {error}") from error


# ----------------------------------------------------------------------
# Sink chunk codecs
# ----------------------------------------------------------------------
# The pipelined table apply ships *encoded* chunks over the worker ->
# parent wire so the parent never runs a codec on its hot path.  Both
# the worker side and the serial (workers=1) path encode through these
# two helpers, so the sink bytes are identical regardless of fan-out.
def _quoted_cell(cell: str, delimiter: str) -> str:
    """Minimal-quote one cell the way csv.QUOTE_MINIMAL would, plus CR."""
    if '"' in cell:
        return '"' + cell.replace('"', '""') + '"'
    if delimiter in cell or "\r" in cell or "\n" in cell:
        return '"' + cell + '"'
    return cell


def encode_rows_csv(rows: List[List[str]], delimiter: str = ",") -> str:
    """Encode rows (lists of cells) as CSV text with ``\\n`` line ends.

    With ``lineterminator="\\n"`` the stdlib writer leaves a bare ``\\r``
    inside a cell unquoted — output the csv module itself then refuses
    to parse back ("new-line character seen in unquoted field").  Rows
    containing ``\\r`` therefore take a manual minimal-quoting path that
    treats ``\\r`` like the line break it is; all other rows keep the
    C writer's exact bytes.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter, lineterminator="\n")
    for row in rows:
        if any(isinstance(cell, str) and "\r" in cell for cell in row):
            buffer.write(
                delimiter.join(_quoted_cell(str(cell), delimiter) for cell in row)
                + "\n"
            )
        else:
            writer.writerow(row)
    return buffer.getvalue()


def encode_rows_jsonl(fieldnames: Sequence[str], rows: List[List[str]]) -> str:
    """Encode rows as JSON Lines, one object per row keyed by the header."""
    return "".join(
        json.dumps(dict(zip(fieldnames, row)), ensure_ascii=False) + "\n" for row in rows
    )
