"""Content-addressed cache of compiled ``.clx.json`` artifacts.

Synthesis is the expensive step of the compile-once/apply-anywhere loop,
and it is a pure function of the profiled column and the labelled
target.  :class:`ArtifactCache` exploits that: artifacts are stored
under a key derived from the **column fingerprint**
(:meth:`~repro.clustering.incremental.ColumnProfile.fingerprint` — a
hash of everything that determines the lowered hierarchy) plus the
target specification and generalization flags, so re-compiling the same
column toward the same target is a file read, zero synthesis.  The CLI
exposes it as ``repro-clx compile --cache-dir DIR``.

Corrupt or unreadable cache entries are treated as misses, never as
errors — the cache can only save work, not introduce failures.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro.engine.compiled import CompiledProgram
from repro.util.errors import CLXError


def cache_key(column_fingerprint: str, target: str, flags: Optional[Mapping[str, Any]] = None) -> str:
    """The content address of one (column, target, flags) compilation.

    Args:
        column_fingerprint: :meth:`ColumnProfile.fingerprint` of the
            profiled column.
        target: The target specification — a pattern notation, or any
            stable encoding of how the target was labelled.
        flags: Extra knobs that change the synthesized program (e.g.
            ``{"generalize": 2}``).  Must be JSON-serializable.
    """
    payload = json.dumps(
        {"column": column_fingerprint, "target": target, "flags": dict(flags or {})},
        sort_keys=True,
        ensure_ascii=False,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ArtifactCache:
    """A directory of compiled artifacts addressed by compilation content.

    Args:
        directory: Cache root; created (with parents) if missing.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)

    @property
    def directory(self) -> Path:
        """The cache root directory."""
        return self._directory

    def path(self, key: str) -> Path:
        """Where the artifact for ``key`` lives (whether or not it exists)."""
        return self._directory / f"{key}.clx.json"

    def load(self, key: str) -> Optional[CompiledProgram]:
        """The cached program for ``key``, or ``None`` on a miss.

        A present-but-corrupt entry (truncated write, foreign file) is a
        miss: it is ignored and will be overwritten by the next
        :meth:`store`.
        """
        path = self.path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            return None
        try:
            return CompiledProgram.loads(text)
        except CLXError:
            return None

    def store(self, key: str, compiled: CompiledProgram) -> Path:
        """Persist ``compiled`` under ``key``, returning the entry path.

        The write goes through a uniquely-named same-directory temporary
        file and an atomic rename, so concurrent compiles — even of the
        same key — never observe a torn entry.
        """
        path = self.path(key)
        descriptor, scratch_name = tempfile.mkstemp(
            prefix=f"{key}.", suffix=".tmp", dir=self._directory
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(compiled.dumps(indent=2) + "\n")
            os.replace(scratch_name, path)
        except BaseException:
            try:
                os.unlink(scratch_name)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return self.path(key).is_file()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactCache({str(self._directory)!r})"
