"""Content-addressed artifact cache + the cross-session artifact registry.

Synthesis is the expensive step of the compile-once/apply-anywhere loop,
and it is a pure function of the profiled column and the labelled
target.  :class:`ArtifactCache` exploits that: artifacts are stored
under a key derived from the **column fingerprint**
(:meth:`~repro.clustering.incremental.ColumnProfile.fingerprint` — a
hash of everything that determines the lowered hierarchy) plus the
target specification and generalization flags, so re-compiling the same
column toward the same target is a file read, zero synthesis.  The CLI
exposes it as ``repro-clx compile --cache-dir DIR``.

:class:`ArtifactRegistry` makes the cache *discoverable*: a
``registry.json`` manifest per cache directory records, for every
compiled artifact, the column fingerprint, source dataset, target,
flags, profile stats, and timestamp.  Sessions look compilations up
through the manifest (``repro-clx artifacts list``, lookup by
fingerprint) and reuse each other's programs; ``repro-clx artifacts gc``
prunes rows whose artifact file vanished and artifact files no manifest
row references.

Corrupt or unreadable cache entries — including a truncated or garbage
manifest — are treated as misses, never as errors: the cache can only
save work, not introduce failures (and ``gc`` deletes nothing when the
manifest itself is unreadable).  All writes (artifacts and manifest
alike) go through same-directory temporary files and atomic renames, so
no reader ever observes a torn entry, and the manifest's
read-merge-write cycles serialize on a POSIX advisory lock so
concurrent writers do not clobber each other's rows.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

try:  # POSIX advisory locking; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.engine.compiled import CompiledProgram
from repro.util.errors import CLXError

#: Manifest file name inside a cache directory.
REGISTRY_NAME = "registry.json"

#: Format marker + schema version of the manifest payload.
REGISTRY_FORMAT = "clx-artifact-registry"
REGISTRY_VERSION = 1


def cache_key(column_fingerprint: str, target: str, flags: Optional[Mapping[str, Any]] = None) -> str:
    """The content address of one (column, target, flags) compilation.

    Args:
        column_fingerprint: :meth:`ColumnProfile.fingerprint` of the
            profiled column.
        target: The target specification — a pattern notation, or any
            stable encoding of how the target was labelled.
        flags: Extra knobs that change the synthesized program (e.g.
            ``{"generalize": 2}``).  Must be JSON-serializable.
    """
    payload = json.dumps(
        {"column": column_fingerprint, "target": target, "flags": dict(flags or {})},
        sort_keys=True,
        ensure_ascii=False,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ArtifactCache:
    """A directory of compiled artifacts addressed by compilation content.

    Args:
        directory: Cache root; created (with parents) if missing.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._registry: Optional["ArtifactRegistry"] = None

    @property
    def directory(self) -> Path:
        """The cache root directory."""
        return self._directory

    def path(self, key: str) -> Path:
        """Where the artifact for ``key`` lives (whether or not it exists)."""
        return self._directory / f"{key}.clx.json"

    def load(self, key: str) -> Optional[CompiledProgram]:
        """The cached program for ``key``, or ``None`` on a miss.

        A present-but-corrupt entry (truncated write, foreign file) is a
        miss: it is ignored and will be overwritten by the next
        :meth:`store`.
        """
        path = self.path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            return None
        try:
            return CompiledProgram.loads(text)
        except CLXError:
            return None

    def store(self, key: str, compiled: CompiledProgram) -> Path:
        """Persist ``compiled`` under ``key``, returning the entry path.

        The write goes through a uniquely-named same-directory temporary
        file and an atomic rename, so concurrent compiles — even of the
        same key — never observe a torn entry.
        """
        path = self.path(key)
        descriptor, scratch_name = tempfile.mkstemp(
            prefix=f"{key}.", suffix=".tmp", dir=self._directory
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(compiled.dumps(indent=2) + "\n")
            os.replace(scratch_name, path)
        except BaseException:
            try:
                os.unlink(scratch_name)
            except OSError:
                pass
            raise
        return path

    def load_registered(self, key: str) -> Optional[CompiledProgram]:
        """Resolve a hit *through the registry manifest*, then the store.

        The manifest row (when present and naming a readable artifact)
        is the authoritative path; a cache directory whose manifest was
        lost or corrupted falls back to the content-addressed file
        layout, so registry damage degrades to plain cache behavior —
        never to an error.  A manifest-resolved hit stamps the row's
        ``last_used_at``, which is what ``artifacts gc --keep-days N``
        ages against.
        """
        entry = self.registry.lookup(key)
        if entry is not None and entry.artifact:
            path = self._directory / entry.artifact
            try:
                compiled = CompiledProgram.loads(path.read_text(encoding="utf-8"))
            except (OSError, UnicodeDecodeError, CLXError):
                compiled = None  # dangling or torn row: fall through to the store
            if compiled is not None:
                self.registry.touch(key, known=entry)
                return compiled
        return self.load(key)

    def store_registered(
        self,
        key: str,
        compiled: CompiledProgram,
        fingerprint: str,
        target: str,
        flags: Optional[Mapping[str, Any]] = None,
        source: str = "",
        stats: Optional[Mapping[str, Any]] = None,
        analysis: Optional[Mapping[str, int]] = None,
    ) -> Path:
        """Persist ``compiled`` and record its manifest row in one call."""
        path = self.store(key, compiled)
        self.registry.record(
            RegistryEntry(
                key=key,
                fingerprint=fingerprint,
                target=target,
                flags=dict(flags or {}),
                source=source,
                stats=dict(stats or {}),
                analysis=dict(analysis or {}),
                artifact=path.name,
            )
        )
        return path

    def __contains__(self, key: str) -> bool:
        return self.path(key).is_file()

    @property
    def registry(self) -> "ArtifactRegistry":
        """The (lazily created) registry manifest of this cache directory."""
        if self._registry is None:
            self._registry = ArtifactRegistry(self._directory)
        return self._registry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactCache({str(self._directory)!r})"


@dataclass(frozen=True)
class RegistryEntry:
    """One manifest row: everything needed to find and trust an artifact.

    Attributes:
        key: The content-address (:func:`cache_key`) of the compilation.
        fingerprint: :meth:`ColumnProfile.fingerprint` of the profiled
            column.
        target: The target specification string.
        flags: The synthesis flags that shaped the program.
        source: Human-readable description of the source dataset.
        stats: Profile statistics (e.g. ``{"rows": N, "clusters": M}``).
        analysis: Linter summary recorded at compile time: severity
            counts plus the flow-analysis verdict, e.g. ``{"error": 0,
            "warn": 1, "info": 2, "verified": 1, "rules": 2}`` —
            ``verified`` is the artifact's conformance proof bit and
            ``rules`` the :data:`repro.analysis.findings.RULESET_VERSION`
            that produced the summary (``artifacts list`` shows rows
            stamped by an older ruleset as *stale*).  Empty for rows
            written before the analyzer existed.
        created_at: Unix timestamp of the recording.
        last_used_at: Unix timestamp of the last cache hit resolved
            through this row (0.0 until the first hit; age eviction
            then falls back to ``created_at``).
        artifact: File name of the ``.clx.json`` entry, relative to the
            cache directory.
    """

    key: str
    fingerprint: str
    target: str
    flags: Dict[str, Any] = field(default_factory=dict)
    source: str = ""
    stats: Dict[str, Any] = field(default_factory=dict)
    analysis: Dict[str, int] = field(default_factory=dict)
    created_at: float = 0.0
    last_used_at: float = 0.0
    artifact: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @property
    def effective_last_used(self) -> float:
        """When this artifact was last touched (falling back to creation)."""
        return self.last_used_at or self.created_at

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RegistryEntry":
        return cls(
            key=str(payload["key"]),
            fingerprint=str(payload.get("fingerprint", "")),
            target=str(payload.get("target", "")),
            flags=dict(payload.get("flags") or {}),
            source=str(payload.get("source", "")),
            stats=dict(payload.get("stats") or {}),
            analysis={
                str(k): int(v) for k, v in (payload.get("analysis") or {}).items()
            },
            created_at=float(payload.get("created_at", 0.0)),
            last_used_at=float(payload.get("last_used_at", 0.0)),
            artifact=str(payload.get("artifact", "")),
        )


class ArtifactRegistry:
    """The ``registry.json`` manifest of one artifact cache directory.

    The manifest is advisory metadata over the content-addressed store:
    a corrupt, truncated, or missing manifest degrades every read to
    "no entries" (cache-miss behavior) and is silently rebuilt by the
    next :meth:`record` — it can never crash a compile.

    Args:
        directory: Cache root; created (with parents) if missing.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)

    @property
    def path(self) -> Path:
        """Where the manifest lives (whether or not it exists yet)."""
        return self._directory / REGISTRY_NAME

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _read_manifest(self) -> "tuple[Dict[str, RegistryEntry], bool]":
        """The manifest rows plus whether the manifest itself is trusted.

        ``trusted`` is False when ``registry.json`` is missing,
        unreadable, or not a valid manifest — readers treat that as "no
        entries" (cache-miss behavior), but :meth:`gc` must not treat
        it as "nothing is referenced" and wipe the store.
        """
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError, UnicodeDecodeError):
            return {}, False
        if not isinstance(payload, dict) or payload.get("format") != REGISTRY_FORMAT:
            return {}, False
        rows = payload.get("entries")
        if not isinstance(rows, dict):
            return {}, False
        entries: Dict[str, RegistryEntry] = {}
        for key, row in rows.items():
            try:
                entries[key] = RegistryEntry.from_dict({**row, "key": key})
            except (TypeError, ValueError, KeyError):
                continue  # one bad row never poisons the rest
        return entries, True

    def _read_entries(self) -> Dict[str, RegistryEntry]:
        """The manifest rows keyed by cache key; {} for corrupt/missing."""
        return self._read_manifest()[0]

    def entries(self) -> List[RegistryEntry]:
        """All manifest rows, sorted by (created_at, key) for stable output."""
        return sorted(
            self._read_entries().values(), key=lambda entry: (entry.created_at, entry.key)
        )

    def lookup(self, key: str) -> Optional[RegistryEntry]:
        """The manifest row for ``key``, or ``None``."""
        return self._read_entries().get(key)

    def lookup_fingerprint(self, fingerprint: str) -> List[RegistryEntry]:
        """Every row compiled from a column with ``fingerprint``.

        This is how sessions discover existing programs for a column
        they just profiled, whatever target those programs aim at.
        """
        return [
            entry for entry in self.entries() if entry.fingerprint == fingerprint
        ]

    def lookup_fingerprint_prefix(self, prefix: str) -> List[RegistryEntry]:
        """Every row whose column fingerprint starts with ``prefix``.

        ``artifacts list`` shows the first 12 hex characters of each
        fingerprint; ``check``/``verify`` accept that prefix (with
        ``--cache-dir``) in place of an artifact path, and this is how
        the pasted prefix resolves back to the full row.  An empty
        prefix matches nothing — it would "resolve" to the whole cache.
        """
        if not prefix:
            return []
        return [
            entry for entry in self.entries() if entry.fingerprint.startswith(prefix)
        ]

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    @contextmanager
    def _manifest_lock(self) -> Iterator[None]:
        """Serialize manifest read-merge-write cycles across processes.

        POSIX advisory locking on a sibling ``.lock`` file; where
        ``fcntl`` is unavailable the lock degrades to a no-op and the
        atomic rename alone still guarantees no *torn* manifest — only
        a lost row under a true simultaneous write, which the loser's
        next compile re-records.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        with (self._directory / f"{REGISTRY_NAME}.lock").open("w") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def _write_entries(self, entries: Mapping[str, RegistryEntry]) -> None:
        payload = {
            "format": REGISTRY_FORMAT,
            "version": REGISTRY_VERSION,
            "entries": {key: entry.to_dict() for key, entry in sorted(entries.items())},
        }
        descriptor, scratch_name = tempfile.mkstemp(
            prefix="registry.", suffix=".tmp", dir=self._directory
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(scratch_name, self.path)
        except BaseException:
            try:
                os.unlink(scratch_name)
            except OSError:
                pass
            raise

    def record(self, entry: RegistryEntry) -> RegistryEntry:
        """Add (or refresh) one manifest row, read-merge-write under a lock.

        The read-merge-write cycle holds the manifest lock, so two
        writers recording different keys both survive; for the same key
        the later write wins, which is correct — the artifact content
        is identical by construction of the key.
        """
        if entry.created_at == 0.0:
            entry = RegistryEntry(**{**entry.to_dict(), "created_at": time.time()})
        with self._manifest_lock():
            entries = self._read_entries()
            entries[entry.key] = entry
            self._write_entries(entries)
        return entry

    #: Repeat hits within this window skip the manifest rewrite — age
    #: eviction works at day granularity, so stamping the read hot path
    #: more than hourly would be pure write amplification.
    TOUCH_INTERVAL_SECONDS = 3600.0

    def touch(self, key: str, known: Optional[RegistryEntry] = None) -> None:
        """Stamp ``last_used_at`` on one row (no-op for unknown keys).

        Called on every manifest-resolved cache hit, so
        :meth:`gc(keep_days=N) <gc>` evicts by actual disuse rather
        than age since compilation.  Strictly best-effort, like every
        cache path: a row already stamped within
        :attr:`TOUCH_INTERVAL_SECONDS` is left alone (``known`` lets
        the caller hand over its already-parsed entry, skipping a
        manifest re-read), and an unwritable cache directory — e.g. a
        shared read-only mount — silently skips the stamp rather than
        failing the hit.
        """
        now = time.time()
        entry = known if known is not None else self.lookup(key)
        if entry is None or now - entry.last_used_at < self.TOUCH_INTERVAL_SECONDS:
            return
        try:
            with self._manifest_lock():
                entries = self._read_entries()
                entry = entries.get(key)
                if entry is None:
                    return
                entries[key] = RegistryEntry(**{**entry.to_dict(), "last_used_at": now})
                self._write_entries(entries)
        except OSError:
            pass  # stamping is advisory; never turn a hit into a failure

    def gc(
        self,
        keep_days: Optional[float] = None,
        max_bytes: Optional[int] = None,
    ) -> Dict[str, List[str]]:
        """Prune dangling rows, unreferenced files, and (optionally) stale rows.

        Removes manifest rows whose artifact file is gone, and artifact
        files (``*.clx.json``) no manifest row references.  With
        ``keep_days``, also evicts rows (and their artifact files)
        whose last use — ``last_used_at`` when a hit ever stamped it,
        ``created_at`` otherwise — is more than that many days old,
        bounding shared cache directories over time.  With
        ``max_bytes``, additionally evicts least-recently-used rows
        (same recency key; ties broken by key, deterministically) until
        the surviving artifact files total at most that many bytes — a
        size budget for shared cache directories.  The manifest is
        re-read immediately before anything is deleted, so an entry
        recorded by a concurrent writer after the first scan — a
        *newer* manifest row — is never deleted.  A missing or corrupt
        manifest deletes **nothing**: "no readable manifest" is not
        "nothing is referenced" (a pre-registry cache directory has
        artifacts but no manifest at all).

        Returns:
            ``{"removed_entries": [keys...], "removed_files": [names...]}``.
        """
        if keep_days is not None and (
            isinstance(keep_days, bool)
            or not math.isfinite(keep_days)  # NaN compares False to everything
            or keep_days < 0
        ):
            raise CLXError(f"keep_days must be a finite number >= 0, got {keep_days!r}")
        if max_bytes is not None and (
            isinstance(max_bytes, bool) or not isinstance(max_bytes, int) or max_bytes < 0
        ):
            raise CLXError(f"max_bytes must be an integer >= 0, got {max_bytes!r}")
        cutoff = None if keep_days is None else time.time() - keep_days * 86_400.0
        candidates = {
            path.name
            for path in self._directory.glob("*.clx.json")
            if path.is_file()
        }
        # Re-read at decision time: rows recorded since any earlier look
        # at the manifest must win over the stale view.
        entries, trusted = self._read_manifest()
        if not trusted:
            return {"removed_entries": [], "removed_files": []}
        referenced = {entry.artifact for entry in entries.values() if entry.artifact}
        removed_files = []
        for name in sorted(candidates - referenced):
            try:
                (self._directory / name).unlink()
                removed_files.append(name)
            except OSError:
                continue
        # Prune dangling and stale rows under the lock with one more
        # fresh read, so the rewrite cannot clobber a row recorded
        # concurrently.
        removed_entries: List[str] = []
        evicted_artifacts: List[str] = []
        with self._manifest_lock():
            entries, trusted = self._read_manifest()
            if trusted:
                kept: Dict[str, RegistryEntry] = {}
                for key, entry in entries.items():
                    if entry.artifact and not (self._directory / entry.artifact).is_file():
                        removed_entries.append(key)
                    elif cutoff is not None and entry.effective_last_used < cutoff:
                        removed_entries.append(key)
                        if entry.artifact:
                            evicted_artifacts.append(entry.artifact)
                    else:
                        kept[key] = entry
                if max_bytes is not None:
                    # Size-budget LRU: evict coldest rows (oldest
                    # effective last use; key breaks ties so the order
                    # is deterministic) until the surviving artifacts
                    # fit the budget.  Rows without an on-disk artifact
                    # occupy no bytes and are never evicted here.
                    sizes: Dict[str, int] = {}
                    for key, entry in kept.items():
                        if not entry.artifact:
                            continue
                        try:
                            sizes[key] = (self._directory / entry.artifact).stat().st_size
                        except OSError:
                            continue
                    total = sum(sizes.values())
                    for key in sorted(
                        sizes, key=lambda k: (kept[k].effective_last_used, k)
                    ):
                        if total <= max_bytes:
                            break
                        entry = kept.pop(key)
                        total -= sizes[key]
                        removed_entries.append(key)
                        evicted_artifacts.append(entry.artifact)
                if removed_entries:
                    self._write_entries(kept)
            for name in evicted_artifacts:
                try:
                    (self._directory / name).unlink()
                    removed_files.append(name)
                except OSError:
                    continue
        return {
            "removed_entries": sorted(removed_entries),
            "removed_files": sorted(removed_files),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactRegistry({str(self._directory)!r})"
