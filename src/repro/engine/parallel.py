"""Sharded, multi-process apply — fan compiled programs across workers.

A :class:`~repro.engine.compiled.CompiledProgram` already crosses process
boundaries for free (it JSON round-trips), so the apply half of CLX
parallelizes trivially: serialize the artifact once, rebuild it in each
worker, and stream chunks through a pool.  What needs care is keeping
the protocol cheap and the memory bounded.  Three executors share the
same discipline (bounded in-flight window, strict input order, dead
workers surfaced as :class:`~repro.util.errors.CLXError` instead of a
hang — see :mod:`repro.util.pools`):

* :class:`ShardedExecutor` — one program over a stream of values.  The
  wire format is compact: each chunk returns ``(outputs,
  pattern_indices)`` where the index points into the program's stable
  pattern table, and the parent rehydrates real patterns from its own
  table.
* :class:`ShardedTableExecutor` — one program per column over a stream
  of **raw CSV lines**.  Workers do their own CSV parse *and*
  serialize: each task carries unparsed physical lines, each result is
  one already-encoded CSV/JSONL text chunk plus row/flagged counts, so
  the parent does no codec work at all — it only splices ordered
  chunks to the sink.  This is what ``repro-clx apply --workers N``
  runs on.
* :func:`transform_table_parallel` — the mapping-rows counterpart
  behind :meth:`TransformEngine.transform_table(workers=N)
  <repro.engine.executor.TransformEngine.transform_table>`.
"""

from __future__ import annotations

import csv
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.result import TransformReport
from repro.dsl.interpreter import TransformOutcome
from repro.engine.compiled import CompiledProgram
from repro.engine.executor import TransformEngine
from repro.engine.serialize import encode_rows_csv, encode_rows_jsonl
from repro.patterns.pattern import Pattern
from repro.util.csvio import record_open_after, resolve_column
from repro.util.errors import CLXError, ValidationError
from repro.util.pools import chunked, indexed_chunks, map_ordered
from repro.util.validate import validated_chunk_size, validated_workers

#: Default number of values per worker task; large enough to amortize
#: pickling and dispatch, small enough to keep the pipeline busy.
DEFAULT_CHUNK_SIZE = 8192

#: Default number of physical CSV lines per table-apply task.
DEFAULT_TABLE_CHUNK_LINES = 4096

#: Sink formats the table executor can encode worker-side.
TABLE_FORMATS = ("csv", "jsonl")

#: Wire format of one processed value chunk: transformed outputs plus,
#: per value, an index into the program's pattern table (-1 = no match).
ChunkResult = Tuple[List[str], List[int]]

#: Wire format of one processed table chunk: the already-encoded sink
#: text plus the row and flagged-cell counts it covers.
TableChunk = Tuple[str, int, int]

# Per-worker state installed by the pool initializers.
_WORKER_STATE: Optional[Tuple[CompiledProgram, Dict[Pattern, int]]] = None
_TABLE_STATE: Optional[Tuple["TableSpec", List[Tuple[int, int, CompiledProgram]]]] = None
_ROWS_STATE: Optional[List[Tuple[str, CompiledProgram]]] = None


def _coerce_program(program: Union[CompiledProgram, TransformEngine], owner: str) -> CompiledProgram:
    if isinstance(program, TransformEngine):
        program = program.compiled
    if not isinstance(program, CompiledProgram):
        raise ValidationError(
            f"{owner} requires a CompiledProgram or TransformEngine, "
            f"got {type(program).__name__}"
        )
    return program


def _pattern_table(compiled: CompiledProgram) -> List[Pattern]:
    """The stable pattern table: target first, then branch patterns."""
    return [compiled.target] + [branch.pattern for branch in compiled.program.branches]


def _init_worker(artifact: str) -> None:
    """Pool initializer: rebuild the compiled program once per worker."""
    global _WORKER_STATE
    compiled = CompiledProgram.loads(artifact)
    index: Dict[Pattern, int] = {}
    for position, pattern in enumerate(_pattern_table(compiled)):
        index.setdefault(pattern, position)
    _WORKER_STATE = (compiled, index)


def _apply_chunk(values: List[str]) -> ChunkResult:
    """Transform one chunk in a worker, returning the compact wire form."""
    assert _WORKER_STATE is not None, "worker used before initialization"
    compiled, index = _WORKER_STATE
    report = compiled.run(values)
    indices = [
        -1 if pattern is None else index[pattern]
        for pattern in report.matched_pattern
    ]
    return report.outputs, indices


class ShardedExecutor:
    """Apply one compiled program across worker processes.

    The executor owns a lazily-created worker pool (so constructing one
    is free until the first run) and can be reused across runs and
    datasets, like the single-process engine.  Use it as a context
    manager, or call :meth:`close` when done.

    Args:
        program: The :class:`CompiledProgram` to execute, or a
            :class:`TransformEngine` wrapping one.
        workers: Worker process count; defaults to ``os.cpu_count()``.
        chunk_size: Values per worker task.
    """

    def __init__(
        self,
        program: Union[CompiledProgram, TransformEngine],
        workers: Optional[int] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        program = _coerce_program(program, "ShardedExecutor")
        self._workers = validated_workers(workers)
        self._chunk_size = validated_chunk_size(chunk_size)
        self._compiled = program
        self._artifact = program.dumps()
        self._table = _pattern_table(program)
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def compiled(self) -> CompiledProgram:
        """The compiled program this executor fans out."""
        return self._compiled

    @property
    def workers(self) -> int:
        """Number of worker processes."""
        return self._workers

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._workers,
                initializer=_init_worker,
                initargs=(self._artifact,),
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedExecutor(target={self._compiled.target.notation()!r}, "
            f"workers={self._workers}, chunk_size={self._chunk_size})"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _rehydrate(self, result: ChunkResult) -> Iterator[TransformOutcome]:
        outputs, indices = result
        table = self._table
        for output, position in zip(outputs, indices):
            if position < 0:
                yield TransformOutcome(output=output, matched=False, pattern=None)
            else:
                yield TransformOutcome(output=output, matched=True, pattern=table[position])

    def run_iter(self, values: Iterable[str]) -> Iterator[TransformOutcome]:
        """Stream ``values`` through the worker pool, in input order.

        Chunks are submitted through a bounded window (a few more than
        there are workers), so the input iterable is consumed at the
        pace results are drained and memory stays proportional to
        ``workers * chunk_size`` regardless of input size.
        """
        pool = self._ensure_pool()
        results = map_ordered(
            pool, _apply_chunk, chunked(values, self._chunk_size), self._workers + 2
        )
        for result in results:
            yield from self._rehydrate(result)

    def run(self, values: Iterable[str]) -> TransformReport:
        """Batch-apply across the pool, returning the usual report.

        Semantically identical to :meth:`TransformEngine.run` — same
        outputs, same matched patterns, same order.
        """
        inputs = list(values)
        outputs: List[str] = []
        matched: List[Optional[Pattern]] = []
        for outcome in self.run_iter(inputs):
            outputs.append(outcome.output)
            matched.append(outcome.pattern)
        return TransformReport(
            inputs=inputs,
            outputs=outputs,
            matched_pattern=matched,
            target=self._compiled.target,
        )


# ----------------------------------------------------------------------
# Pipelined table apply: raw lines in, encoded chunks out
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TableSpec:
    """Everything a worker needs to parse, transform, and re-encode rows.

    Attributes:
        fieldnames: The input CSV header, in file order.
        output_fields: The sink's columns — the header plus any added
            ``<column>_transformed``-style columns.
        transforms: ``(input_index, output_index)`` per programmed
            column, indices into ``fieldnames`` / ``output_fields``
            (equal for an in-place transform), in program order.
        delimiter: CSV delimiter for both parse and encode.
        out_format: ``"csv"`` or ``"jsonl"``.
        source: Input name used in error messages (e.g. the CSV path).
    """

    fieldnames: Tuple[str, ...]
    output_fields: Tuple[str, ...]
    transforms: Tuple[Tuple[int, int], ...]
    delimiter: str = ","
    out_format: str = "csv"
    source: str = "<table>"


def _transform_lines(
    spec: TableSpec,
    engines: Sequence[Tuple[int, int, CompiledProgram]],
    first_line: int,
    lines: List[str],
    source: Optional[str] = None,
) -> TableChunk:
    """Parse, transform, and encode one chunk of physical CSV lines.

    This is the whole per-chunk pipeline and runs identically inline
    (``workers=1``) and inside a pool worker, so the serial and sharded
    paths cannot drift apart.  ``source`` overrides ``spec.source`` in
    error messages when one executor streams several partition files.
    """
    width = len(spec.fieldnames)
    out_width = len(spec.output_fields)
    label = source or spec.source
    reader = csv.reader(lines, delimiter=spec.delimiter)
    rows: List[List[str]] = []
    for row in reader:
        if not row:
            continue  # csv.DictReader skips blank lines; so do we
        if len(row) > width:
            line = first_line + reader.line_num - 1
            raise CLXError(
                f"{label} line {line}: row has {len(row)} cells "
                f"but the header has {width} columns; fix the row or "
                "re-export the CSV"
            )
        if len(row) < width:
            row.extend([""] * (width - len(row)))
        row.extend([""] * (out_width - width))
        rows.append(row)

    flagged = 0
    for (input_index, output_index), compiled in zip(spec.transforms, engines):
        run_one = compiled.run_one
        for row in rows:
            outcome = run_one(row[input_index])
            row[output_index] = outcome.output
            if not outcome.matched:
                flagged += 1

    if spec.out_format == "jsonl":
        encoded = encode_rows_jsonl(spec.output_fields, rows)
    else:
        encoded = encode_rows_csv(rows, delimiter=spec.delimiter)
    return encoded, len(rows), flagged


def _init_table_worker(spec: TableSpec, artifacts: Tuple[str, ...]) -> None:
    """Pool initializer: rebuild every column's program once per worker."""
    global _TABLE_STATE
    _TABLE_STATE = (spec, [CompiledProgram.loads(artifact) for artifact in artifacts])


def _transform_table_chunk(task: Tuple[int, List[str], Optional[str]]) -> TableChunk:
    assert _TABLE_STATE is not None, "worker used before initialization"
    spec, engines = _TABLE_STATE
    return _transform_lines(spec, engines, task[0], task[1], task[2])


def _record_aligned_chunks(
    lines: Iterable[str], chunk_size: int, first_line: int, delimiter: str
) -> Iterator[Tuple[int, List[str]]]:
    """Group physical lines into chunks, never splitting a quoted record.

    A CSV record spans multiple physical lines only while a quoted
    field is open; :func:`~repro.util.csvio.record_open_after` tracks
    that state with the csv module's own quoting rules (a stray ``"``
    in an unquoted cell is data, not a delimiter), so chunks close at
    the first record boundary at or past ``chunk_size`` lines.
    """
    chunk: List[str] = []
    chunk_first = first_line
    line_number = first_line - 1
    record_open = False
    for line in lines:
        line_number += 1
        chunk.append(line)
        record_open = record_open_after(line, delimiter, record_open)
        if len(chunk) >= chunk_size and not record_open:
            yield chunk_first, chunk
            chunk = []
            chunk_first = line_number + 1
    if chunk:
        yield chunk_first, chunk


class ShardedTableExecutor:
    """One-pass, multi-column table apply over raw CSV lines.

    The parent feeds **unparsed physical lines**; workers parse their
    own chunk, run every column's compiled program, and hand back one
    already-encoded CSV/JSONL text chunk.  Results come back in input
    order through a bounded in-flight window, so the parent's whole job
    is splicing strings into the sink — the CSV codec never runs on the
    parent's hot path.  With ``workers=1`` the same per-chunk pipeline
    runs inline and no pool is spawned.

    Args:
        programs: Mapping from input column name to the
            :class:`CompiledProgram` / :class:`TransformEngine` that
            transforms it.
        header: The input CSV header, in file order.
        output_columns: Optional mapping from input column to sink
            column; a sink column equal to the input column transforms
            in place, anything else is appended to the header.  Defaults
            to ``<column>_transformed`` for every programmed column.
        out_format: ``"csv"`` (default) or ``"jsonl"``.
        delimiter: CSV delimiter for both parse and encode.
        source: Input name used in error messages.
        workers: Worker process count; ``None`` means ``os.cpu_count()``.
        chunk_size: Physical lines per worker task.
    """

    def __init__(
        self,
        programs: Mapping[str, Union[CompiledProgram, TransformEngine]],
        header: Sequence[str],
        output_columns: Optional[Mapping[str, str]] = None,
        out_format: str = "csv",
        delimiter: str = ",",
        source: str = "<table>",
        workers: Optional[int] = None,
        chunk_size: int = DEFAULT_TABLE_CHUNK_LINES,
    ) -> None:
        if not programs:
            raise ValidationError("ShardedTableExecutor needs at least one column program")
        if out_format not in TABLE_FORMATS:
            raise ValidationError(
                f"unsupported output format {out_format!r}; choose from {', '.join(TABLE_FORMATS)}"
            )
        self._workers = validated_workers(workers)
        self._chunk_size = validated_chunk_size(chunk_size)

        fieldnames = tuple(header)
        named_outputs = dict(output_columns or {})
        output_fields = list(fieldnames)
        transforms: List[Tuple[int, int]] = []
        compiled_programs: List[CompiledProgram] = []
        for column, program in programs.items():
            column = resolve_column(fieldnames, column)
            sink = named_outputs.get(column, f"{column}_transformed")
            if sink == column:
                output_index = fieldnames.index(column)
            else:
                if sink in output_fields:
                    raise ValidationError(
                        f"output column {sink!r} already exists in the CSV header; "
                        "pick a different output column"
                    )
                output_index = len(output_fields)
                output_fields.append(sink)
            transforms.append((fieldnames.index(column), output_index))
            compiled_programs.append(_coerce_program(program, "ShardedTableExecutor"))

        self._spec = TableSpec(
            fieldnames=fieldnames,
            output_fields=tuple(output_fields),
            transforms=tuple(transforms),
            delimiter=delimiter,
            out_format=out_format,
            source=source,
        )
        self._programs = compiled_programs
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def spec(self) -> TableSpec:
        """The resolved parse/transform/encode specification."""
        return self._spec

    @property
    def workers(self) -> int:
        """Number of worker processes (1 = inline, no pool)."""
        return self._workers

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            artifacts = tuple(program.dumps() for program in self._programs)
            self._pool = ProcessPoolExecutor(
                max_workers=self._workers,
                initializer=_init_table_worker,
                initargs=(self._spec, artifacts),
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ShardedTableExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def header_text(self) -> str:
        """The encoded sink header (empty for JSONL, which has none)."""
        if self._spec.out_format == "jsonl":
            return ""
        return encode_rows_csv([list(self._spec.output_fields)], delimiter=self._spec.delimiter)

    def run_chunks(
        self,
        lines: Iterable[str],
        first_line: int = 2,
        source: Optional[str] = None,
    ) -> Iterator[TableChunk]:
        """Stream raw data lines through the pipeline, in input order.

        Args:
            lines: Physical lines of the CSV *data region* (no header),
                with or without trailing newlines.
            first_line: 1-based physical line number of the first data
                line in the source file, for error messages.
            source: Input name for error messages, overriding the
                spec's (used when one executor streams several files).

        Yields:
            ``(encoded_text, row_count, flagged_count)`` per chunk.
        """
        tasks = (
            (start, chunk, source)
            for start, chunk in _record_aligned_chunks(
                lines, self._chunk_size, first_line, self._spec.delimiter
            )
        )
        if self._workers == 1:
            engines = self._programs
            for start, chunk, label in tasks:
                yield _transform_lines(self._spec, engines, start, chunk, label)
            return
        pool = self._ensure_pool()
        yield from map_ordered(pool, _transform_table_chunk, tasks, self._workers + 2)

    def run_csv_file(self, path: Union[str, Path]) -> Iterator[TableChunk]:
        """Stream one CSV file through the pipeline, checking its header.

        The partition-aware entry point: the executor (and its worker
        pool) is built once and reused across every part of a
        partitioned dataset, each part's header verified against the
        spec so two partitions with drifted schemas cannot be spliced
        into one sink silently.

        Raises:
            CLXError: If ``path`` has no header row or its header does
                not match the executor's fieldnames.
        """
        source = Path(path)
        with source.open(newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle, delimiter=self._spec.delimiter)
            try:
                header = next(reader)
            except StopIteration:
                raise CLXError(f"{source} has no header row") from None
            if tuple(header) != self._spec.fieldnames:
                raise CLXError(
                    f"{source} header ({', '.join(header)}) does not match the "
                    f"dataset header ({', '.join(self._spec.fieldnames)}); "
                    "partitions of one dataset must share a header"
                )
            yield from self.run_chunks(
                handle, first_line=reader.line_num + 1, source=str(source)
            )


# ----------------------------------------------------------------------
# Mapping-rows fan-out behind TransformEngine.transform_table(workers=N)
# ----------------------------------------------------------------------
def _init_rows_worker(payload: Tuple[Tuple[str, str], ...]) -> None:
    global _ROWS_STATE
    _ROWS_STATE = [(column, CompiledProgram.loads(artifact)) for column, artifact in payload]


def _transform_rows_chunk(task: Tuple[int, List[Dict[str, Any]]]) -> List[Dict[str, Any]]:
    assert _ROWS_STATE is not None, "worker used before initialization"
    base_index, rows = task
    return _apply_columns_to_rows(_ROWS_STATE, base_index, rows)


def _apply_columns_to_rows(
    programs: Sequence[Tuple[str, CompiledProgram]],
    base_index: int,
    rows: Sequence[Mapping[str, Any]],
) -> List[Dict[str, Any]]:
    """Apply every column program to a chunk of row mappings (copied)."""
    out_rows = [dict(row) for row in rows]
    for column, compiled in programs:
        run_one = compiled.run_one
        for offset, row in enumerate(out_rows):
            if column not in row:
                raise ValidationError(f"row {base_index + offset} has no column {column!r}")
            value = "" if row[column] is None else str(row[column])
            row[column] = run_one(value).output
    return out_rows


def transform_table_parallel(
    rows: Iterable[Mapping[str, Any]],
    programs: Sequence[Tuple[str, CompiledProgram]],
    workers: int,
    chunk_size: int,
) -> Iterator[Dict[str, Any]]:
    """Fan chunks of row mappings across workers, one pass, ordered.

    The engine-level counterpart of :class:`ShardedTableExecutor` for
    callers that hold row dicts rather than a CSV file.  Used by
    :meth:`TransformEngine.transform_table` when ``workers > 1``.
    """
    payload = tuple((column, compiled.dumps()) for column, compiled in programs)
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_rows_worker,
        initargs=(payload,),
    ) as pool:
        results = map_ordered(
            pool, _transform_rows_chunk, indexed_chunks(rows, chunk_size), workers + 2
        )
        for chunk in results:
            yield from chunk
