"""Sharded, multi-process apply — fan compiled programs across workers.

A :class:`~repro.engine.compiled.CompiledProgram` already crosses process
boundaries for free (it JSON round-trips), so the apply half of CLX
parallelizes trivially: serialize the artifact once, rebuild it in each
worker, and stream chunks through a pool.  What needs care is keeping
the protocol cheap and the memory bounded.  Three executors share the
same discipline (bounded in-flight window, strict input order, dead
workers surfaced as :class:`~repro.util.errors.CLXError` instead of a
hang — see :mod:`repro.util.pools`):

* :class:`ShardedExecutor` — one program over a stream of values.  The
  wire format is compact: each chunk returns ``(outputs,
  pattern_indices)`` where the index points into the program's stable
  pattern table, and the parent rehydrates real patterns from its own
  table.
* :class:`ShardedTableExecutor` — one program per column over a stream
  of **raw physical lines**, CSV or JSON Lines.  Workers do their own
  parse *and* serialize: each task carries unparsed lines plus their
  input format, each result is one already-encoded CSV/JSONL text
  chunk plus row/flagged counts, so the parent does no codec work at
  all — it only splices ordered chunks to the sink.  This is what
  ``repro-clx apply --workers N`` runs on.
* :meth:`ShardedTableExecutor.run_dataset` — the cross-partition
  dispatch layer: whole parts of a partitioned dataset (or byte-range
  shards of large parts, record-aligned via
  :func:`~repro.util.csvio.record_cut_points`) are handed to the same
  worker pool, so small-file latencies overlap and every core stays
  busy across partition boundaries while results still splice in
  deterministic (part, offset) order.  :func:`apply_dataset` wraps it
  with sink orchestration (one spliced sink, or one output per
  partition) shared by the CLI and the session/engine APIs.
* :func:`transform_table_parallel` — the mapping-rows counterpart
  behind :meth:`TransformEngine.transform_table(workers=N)
  <repro.engine.executor.TransformEngine.transform_table>`.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from types import TracebackType
from typing import (
    IO,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from repro.core.result import TransformReport
from repro.dataset.backends import (
    backend_by_name,
    input_format_names,
    open_locator,
    sink_format_names,
)
from repro.dsl.interpreter import TransformOutcome
from repro.engine.compiled import CompiledProgram
from repro.engine.executor import TransformEngine
from repro.engine.resilience import (
    QuarantinedRecord,
    QuarantineWriter,
    RunManifest,
    resynthesis_hint,
)
from repro.patterns.pattern import Pattern
from repro.util.csvio import iter_record_cut_points, record_open_after, resolve_column
from repro.util.errors import CLXError, ValidationError
from repro.util.faults import maybe_fire
from repro.util.pools import (
    FaultPolicy,
    ResilientPool,
    chunked,
    indexed_chunks,
    map_ordered,
)
from repro.util.sinks import AtomicSink
from repro.util.timing import Stopwatch
from repro.util.validate import (
    validated_adaptive_target,
    validated_chunk_size,
    validated_workers,
)

#: Default number of values per worker task; large enough to amortize
#: pickling and dispatch, small enough to keep the pipeline busy.
DEFAULT_CHUNK_SIZE = 8192

#: Default number of physical CSV lines per table-apply task.
DEFAULT_TABLE_CHUNK_LINES = 4096

#: Default byte size of one cross-partition apply shard: parts larger
#: than this split into several record-aligned byte ranges, so one huge
#: partition cannot serialize the whole dataset behind a single worker.
DEFAULT_APPLY_SHARD_BYTES = 1 << 20

#: Error modes for record-level failures during a table apply.
ERROR_MODES = ("abort", "quarantine")

#: Wire format of one processed value chunk: transformed outputs plus,
#: per value, an index into the program's pattern table (-1 = no match).
ChunkResult = Tuple[List[str], List[int]]


class TableChunk(NamedTuple):
    """Wire format of one processed table chunk.

    ``text`` is the already-encoded sink text, ``rows``/``flagged`` the
    row and flagged-cell counts it covers, and ``quarantined`` the
    records diverted from the sink (always empty in abort mode).  The
    quarantine tuple rides the same ordered result stream as the good
    bytes, so both stay deterministic at any worker count.
    """

    text: str
    rows: int
    flagged: int
    quarantined: Tuple[QuarantinedRecord, ...] = ()

class AdaptiveChunker:
    """Latency-driven task sizing for the parallel apply pipeline.

    The static ``chunk_size`` / ``shard_bytes`` knobs assume every
    column costs the same per row; a slow program (deep backtracking,
    many guarded branches) can turn a "reasonable" chunk into a
    multi-second task that starves the ordered drain.  An
    ``AdaptiveChunker`` instead steers the next task's size toward a
    per-task latency band around ``target_seconds``: a task slower than
    twice the target halves the size, one faster than half the target
    doubles it, both clamped to ``[minimum, maximum]``.  Every observed
    latency is also recorded into a :class:`~repro.util.timing.Stopwatch`
    so callers can report what the pipeline actually saw.

    Sizing never changes *what* is computed — chunk boundaries only
    group rows into tasks, and the sink bytes are an ordered
    concatenation of per-row encodings — so adaptive runs stay
    byte-identical to static ones.
    """

    __slots__ = ("_size", "_minimum", "_maximum", "_target", "stopwatch", "name")

    def __init__(
        self,
        initial: int,
        minimum: int,
        maximum: int,
        target_seconds: float,
        name: str = "chunk",
    ) -> None:
        if minimum < 1 or maximum < minimum:
            raise ValidationError(
                f"adaptive bounds must satisfy 1 <= minimum <= maximum, "
                f"got [{minimum}, {maximum}]"
            )
        if target_seconds <= 0:
            raise ValidationError(
                f"adaptive target must be positive, got {target_seconds}"
            )
        self._size = min(max(initial, minimum), maximum)
        self._minimum = minimum
        self._maximum = maximum
        self._target = target_seconds
        self.stopwatch = Stopwatch()
        self.name = name

    @property
    def size(self) -> int:
        """The size the next task should use."""
        return self._size

    @property
    def target_seconds(self) -> float:
        """Center of the per-task latency band."""
        return self._target

    def observe(self, seconds: float) -> None:
        """Feed one observed per-task latency back into the sizer."""
        self.stopwatch.record(self.name, seconds)
        if seconds > self._target * 2 and self._size > self._minimum:
            self._size = max(self._minimum, self._size // 2)
        elif seconds < self._target / 2 and self._size < self._maximum:
            self._size = min(self._maximum, self._size * 2)

    def stats(self) -> Dict[str, float]:
        """Aggregate view: samples seen, mean latency, current size."""
        return {
            "samples": float(self.stopwatch.count(self.name)),
            "mean_seconds": self.stopwatch.mean(self.name),
            "size": float(self._size),
        }


# Per-worker state installed by the pool initializers.
_WORKER_STATE: Optional[Tuple[CompiledProgram, Dict[Pattern, int]]] = None
_TABLE_STATE: Optional[Tuple["TableSpec", List[CompiledProgram], int]] = None
_ROWS_STATE: Optional[List[Tuple[str, CompiledProgram]]] = None


def _coerce_program(program: Union[CompiledProgram, TransformEngine], owner: str) -> CompiledProgram:
    if isinstance(program, TransformEngine):
        program = program.compiled
    if not isinstance(program, CompiledProgram):
        raise ValidationError(
            f"{owner} requires a CompiledProgram or TransformEngine, "
            f"got {type(program).__name__}"
        )
    return program


def _pattern_table(compiled: CompiledProgram) -> List[Pattern]:
    """The stable pattern table: target first, then branch patterns."""
    return [compiled.target] + [branch.pattern for branch in compiled.program.branches]


#: Wire form of one program for a pool initializer: the JSON artifact
#: plus the runtime dispatch knobs (memo bound, merged dispatch), which
#: are not part of the artifact but must match the parent's program so
#: every worker runs the same hot path.
ProgramWire = Tuple[str, int, bool]


def _program_wire(compiled: CompiledProgram) -> ProgramWire:
    return (compiled.dumps(), compiled.memo_size, compiled.merged_dispatch)


def _program_from_wire(wire: ProgramWire) -> CompiledProgram:
    artifact, memo_size, merged_dispatch = wire
    return CompiledProgram.loads(
        artifact, memo_size=memo_size, merged_dispatch=merged_dispatch
    )


def _init_worker(wire: ProgramWire) -> None:
    """Pool initializer: rebuild the compiled program once per worker."""
    global _WORKER_STATE
    compiled = _program_from_wire(wire)
    index: Dict[Pattern, int] = {}
    for position, pattern in enumerate(_pattern_table(compiled)):
        index.setdefault(pattern, position)
    _WORKER_STATE = (compiled, index)


def _apply_chunk(values: List[str]) -> ChunkResult:
    """Transform one chunk in a worker, returning the compact wire form."""
    assert _WORKER_STATE is not None, "worker used before initialization"
    compiled, index = _WORKER_STATE
    report = compiled.run(values)
    indices = [
        -1 if pattern is None else index[pattern]
        for pattern in report.matched_pattern
    ]
    return report.outputs, indices


class ShardedExecutor:
    """Apply one compiled program across worker processes.

    The executor owns a lazily-created worker pool (so constructing one
    is free until the first run) and can be reused across runs and
    datasets, like the single-process engine.  Use it as a context
    manager, or call :meth:`close` when done.

    Args:
        program: The :class:`CompiledProgram` to execute, or a
            :class:`TransformEngine` wrapping one.
        workers: Worker process count; defaults to ``os.cpu_count()``.
        chunk_size: Values per worker task.
    """

    def __init__(
        self,
        program: Union[CompiledProgram, TransformEngine],
        workers: Optional[int] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        program = _coerce_program(program, "ShardedExecutor")
        self._workers = validated_workers(workers)
        self._chunk_size = validated_chunk_size(chunk_size)
        self._compiled = program
        self._wire = _program_wire(program)
        self._table = _pattern_table(program)
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def compiled(self) -> CompiledProgram:
        """The compiled program this executor fans out."""
        return self._compiled

    @property
    def workers(self) -> int:
        """Number of worker processes."""
        return self._workers

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._workers,
                initializer=_init_worker,
                initargs=(self._wire,),
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedExecutor(target={self._compiled.target.notation()!r}, "
            f"workers={self._workers}, chunk_size={self._chunk_size})"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _rehydrate(self, result: ChunkResult) -> Iterator[TransformOutcome]:
        outputs, indices = result
        table = self._table
        for output, position in zip(outputs, indices):
            if position < 0:
                yield TransformOutcome(output=output, matched=False, pattern=None)
            else:
                yield TransformOutcome(output=output, matched=True, pattern=table[position])

    def run_iter(self, values: Iterable[str]) -> Iterator[TransformOutcome]:
        """Stream ``values`` through the worker pool, in input order.

        Chunks are submitted through a bounded window (a few more than
        there are workers), so the input iterable is consumed at the
        pace results are drained and memory stays proportional to
        ``workers * chunk_size`` regardless of input size.
        """
        pool = self._ensure_pool()
        results = map_ordered(
            pool, _apply_chunk, chunked(values, self._chunk_size), self._workers + 2
        )
        for result in results:
            yield from self._rehydrate(result)

    def run(self, values: Iterable[str]) -> TransformReport:
        """Batch-apply across the pool, returning the usual report.

        Semantically identical to :meth:`TransformEngine.run` — same
        outputs, same matched patterns, same order.
        """
        inputs = list(values)
        outputs: List[str] = []
        matched: List[Optional[Pattern]] = []
        for outcome in self.run_iter(inputs):
            outputs.append(outcome.output)
            matched.append(outcome.pattern)
        return TransformReport(
            inputs=inputs,
            outputs=outputs,
            matched_pattern=matched,
            target=self._compiled.target,
        )


# ----------------------------------------------------------------------
# Pipelined table apply: raw lines in, encoded chunks out
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TableSpec:
    """Everything a worker needs to parse, transform, and re-encode rows.

    Attributes:
        fieldnames: The input CSV header, in file order.
        output_fields: The sink's columns — the header plus any added
            ``<column>_transformed``-style columns.
        transforms: ``(input_index, output_index)`` per programmed
            column, indices into ``fieldnames`` / ``output_fields``
            (equal for an in-place transform), in program order.
        delimiter: CSV delimiter for both parse and encode.
        out_format: ``"csv"`` or ``"jsonl"``.
        source: Input name used in error messages (e.g. the CSV path).
        on_error: ``"abort"`` (first bad record raises) or
            ``"quarantine"`` (bad records are diverted into the chunk's
            ``quarantined`` tuple and the rest of the chunk survives).
    """

    fieldnames: Tuple[str, ...]
    output_fields: Tuple[str, ...]
    transforms: Tuple[Tuple[int, int], ...]
    delimiter: str = ","
    out_format: str = "csv"
    source: str = "<table>"
    on_error: str = "abort"


def _encode_rows(spec: TableSpec, rows: List[List[str]]) -> str:
    """Encode transformed rows through the sink format's backend."""
    return backend_by_name(spec.out_format).encode_rows(
        spec.output_fields, rows, spec.delimiter
    )


def _transform_lines_strict(
    spec: TableSpec,
    engines: Sequence[CompiledProgram],
    first_line: int,
    lines: List[str],
    label: str,
    in_format: str,
) -> TableChunk:
    """The fast whole-chunk pipeline: first bad record raises."""
    rows = backend_by_name(in_format).parse_rows(spec, first_line, lines, label)

    flagged = 0
    for (input_index, output_index), compiled in zip(spec.transforms, engines):
        run_one = compiled.run_one
        for row in rows:
            outcome = run_one(row[input_index])
            row[output_index] = outcome.output
            if not outcome.matched:
                flagged += 1

    return TableChunk(_encode_rows(spec, rows), len(rows), flagged)


def _iter_records(
    lines: List[str],
    first_line: int,
    delimiter: str,
    csv_quoting: bool,
) -> Iterator[Tuple[int, List[str]]]:
    """Group physical lines into records, tagged with their first line.

    A CSV record spans several physical lines only while a quoted field
    is open; with ``csv_quoting=False`` (JSONL) every line is a record.
    """
    record: List[str] = []
    number = first_line
    line_number = first_line - 1
    record_open = False
    for line in lines:
        line_number += 1
        if not record:
            number = line_number
        record.append(line)
        if csv_quoting:
            record_open = record_open_after(line, delimiter, record_open)
        if not record_open:
            yield number, record
            record = []
    if record:
        yield number, record


def _record_raw(record_lines: List[str]) -> str:
    """A record's raw text with its final line terminator stripped."""
    raw = "".join(record_lines)
    if raw.endswith("\n"):
        raw = raw[:-1]
    return raw


def _transform_lines_salvage(
    spec: TableSpec,
    engines: Sequence[CompiledProgram],
    first_line: int,
    lines: List[str],
    label: str,
    in_format: str,
) -> TableChunk:
    """Record-by-record replay of a failed chunk in quarantine mode.

    Runs only after :func:`_transform_lines_strict` raised, so the
    common all-clean chunk never pays per-record dispatch.  Each record
    parses and transforms in isolation; a failure quarantines exactly
    that record (absolute line number, original error, raw text) and
    every clean record lands in the sink bytes exactly as the strict
    path would have emitted it.
    """
    backend = backend_by_name(in_format)
    good: List[List[str]] = []
    flagged = 0
    quarantined: List[QuarantinedRecord] = []
    for number, record_lines in _iter_records(
        lines, first_line, spec.delimiter, csv_quoting=backend.csv_quoting
    ):
        try:
            rows = backend.parse_rows(spec, number, record_lines, label)
            record_flagged = 0
            for (input_index, output_index), compiled in zip(spec.transforms, engines):
                for row in rows:
                    outcome = compiled.run_one(row[input_index])
                    row[output_index] = outcome.output
                    if not outcome.matched:
                        record_flagged += 1
        except CLXError as error:
            quarantined.append(
                QuarantinedRecord(label, number, str(error), _record_raw(record_lines))
            )
            continue
        good.extend(rows)
        flagged += record_flagged
    return TableChunk(_encode_rows(spec, good), len(good), flagged, tuple(quarantined))


def _transform_lines(
    spec: TableSpec,
    engines: Sequence[CompiledProgram],
    first_line: int,
    lines: List[str],
    source: Optional[str] = None,
    in_format: str = "csv",
) -> TableChunk:
    """Parse, transform, and encode one chunk of physical lines.

    This is the whole per-chunk pipeline and runs identically inline
    (``workers=1``) and inside a pool worker, so the serial and sharded
    paths cannot drift apart.  ``source`` overrides ``spec.source`` in
    error messages when one executor streams several partition files;
    ``in_format`` names the input backend that parses the chunk, so one
    executor applies a mixed-format dataset.

    In quarantine mode a chunk with at least one bad record falls back
    to a record-by-record salvage pass; since chunk boundaries depend
    only on ``chunk_size`` (never on worker count), the surviving sink
    bytes and the quarantine tuple are deterministic at any parallelism.
    """
    label = source or spec.source
    maybe_fire("worker.chunk", key=f"{label}:{first_line}")
    try:
        return _transform_lines_strict(spec, engines, first_line, lines, label, in_format)
    except CLXError:
        if spec.on_error != "quarantine":
            raise
        return _transform_lines_salvage(spec, engines, first_line, lines, label, in_format)


def _init_table_worker(
    spec: TableSpec,
    wires: Tuple[ProgramWire, ...],
    chunk_size: int = DEFAULT_TABLE_CHUNK_LINES,
) -> None:
    """Pool initializer: rebuild every column's program once per worker.

    Each worker gets its own dispatch memo (the wire form carries the
    parent's ``memo_size`` / ``merged_dispatch`` knobs), so memoization
    scales with the pool instead of being a parent-only optimization.
    """
    global _TABLE_STATE
    maybe_fire("worker.init")
    _TABLE_STATE = (
        spec,
        [_program_from_wire(wire) for wire in wires],
        chunk_size,
    )


def _transform_table_chunk(
    task: Tuple[int, List[str], Optional[str], str]
) -> TableChunk:
    assert _TABLE_STATE is not None, "worker used before initialization"
    spec, engines, _ = _TABLE_STATE
    return _transform_lines(spec, engines, task[0], task[1], task[2], task[3])


def _record_aligned_chunks(
    lines: Iterable[str],
    chunk_size: Union[int, AdaptiveChunker],
    first_line: int,
    delimiter: str,
    csv_quoting: bool = True,
) -> Iterator[Tuple[int, List[str]]]:
    """Group physical lines into chunks, never splitting a quoted record.

    A CSV record spans multiple physical lines only while a quoted
    field is open; :func:`~repro.util.csvio.record_open_after` tracks
    that state with the csv module's own quoting rules (a stray ``"``
    in an unquoted cell is data, not a delimiter), so chunks close at
    the first record boundary at or past ``chunk_size`` lines.  With
    ``csv_quoting=False`` (JSON Lines) every physical line is a record
    and chunks close exactly at ``chunk_size``.

    ``chunk_size`` may be an :class:`AdaptiveChunker`, whose current
    size is re-read at every chunk boundary — latency feedback observed
    while this generator is being drained resizes the *next* chunk.
    """
    sizer = chunk_size if isinstance(chunk_size, AdaptiveChunker) else None
    limit = sizer.size if sizer is not None else chunk_size
    assert isinstance(limit, int)
    chunk: List[str] = []
    chunk_first = first_line
    line_number = first_line - 1
    record_open = False
    for line in lines:
        line_number += 1
        chunk.append(line)
        if csv_quoting:
            record_open = record_open_after(line, delimiter, record_open)
        if len(chunk) >= limit and not record_open:
            yield chunk_first, chunk
            chunk = []
            chunk_first = line_number + 1
            if sizer is not None:
                limit = sizer.size
    if chunk:
        yield chunk_first, chunk


@dataclass(frozen=True)
class _ApplyShard:
    """One picklable unit of cross-partition apply work.

    For line-record backends both bounds are exact byte offsets at
    record boundaries (the planner aligns them with a quote-parity
    scan), so the worker owns precisely the lines beginning in
    ``[start, end)`` and ``first_line`` is the true physical line number
    at ``start``.  For rowgroup backends (parquet/arrow) the bounds are
    **row-group index ranges** and ``first_line`` is the 1-based index
    of the span's first row — either way, error messages stay exact at
    any shard geometry.
    """

    path: str
    in_format: str
    start: int
    end: int
    first_line: int
    source: str


def _transform_shard(
    spec: TableSpec,
    engines: Sequence[CompiledProgram],
    chunk_size: int,
    shard: _ApplyShard,
) -> TableChunk:
    """Run one shard through the per-chunk pipeline.

    The shard's wire lines stream through :func:`_record_aligned_chunks`
    at ``chunk_size`` lines per transform batch — the same knob the
    parent-fed paths honor — so a byte-planned shard never materializes
    more than one batch of parsed rows at a time.
    """
    backend = backend_by_name(shard.in_format)
    pieces: List[str] = []
    rows = 0
    flagged = 0
    quarantined: List[QuarantinedRecord] = []
    lines = backend.read_shard_lines(
        shard.path,
        shard.start,
        shard.end,
        collect_bad=spec.on_error == "quarantine",
        first_line=shard.first_line,
    )
    for start, chunk in _record_aligned_chunks(
        lines,
        chunk_size,
        shard.first_line,
        spec.delimiter,
        csv_quoting=backend.csv_quoting,
    ):
        piece = _transform_lines(spec, engines, start, chunk, shard.source, shard.in_format)
        pieces.append(piece.text)
        rows += piece.rows
        flagged += piece.flagged
        quarantined.extend(piece.quarantined)
    return TableChunk("".join(pieces), rows, flagged, tuple(quarantined))


def _apply_file_shard(shard: _ApplyShard) -> TableChunk:
    """Read, parse, transform, and encode one byte-range shard in a worker."""
    assert _TABLE_STATE is not None, "worker used before initialization"
    spec, engines, chunk_size = _TABLE_STATE
    maybe_fire("worker.shard", key=f"{shard.source}:{shard.start}")
    return _transform_shard(spec, engines, chunk_size, shard)


class ShardedTableExecutor:
    """One-pass, multi-column table apply over raw CSV lines.

    The parent feeds **unparsed physical lines**; workers parse their
    own chunk, run every column's compiled program, and hand back one
    already-encoded CSV/JSONL text chunk.  Results come back in input
    order through a bounded in-flight window, so the parent's whole job
    is splicing strings into the sink — the CSV codec never runs on the
    parent's hot path.  With ``workers=1`` the same per-chunk pipeline
    runs inline and no pool is spawned.

    Args:
        programs: Mapping from input column name to the
            :class:`CompiledProgram` / :class:`TransformEngine` that
            transforms it.
        header: The input CSV header, in file order.
        output_columns: Optional mapping from input column to sink
            column; a sink column equal to the input column transforms
            in place, anything else is appended to the header.  Defaults
            to ``<column>_transformed`` for every programmed column.
        out_format: ``"csv"`` (default) or ``"jsonl"``.
        delimiter: CSV delimiter for both parse and encode.
        source: Input name used in error messages.
        workers: Worker process count; ``None`` means ``os.cpu_count()``.
        chunk_size: Physical lines per worker task.
        on_error: ``"abort"`` (default — first bad record raises) or
            ``"quarantine"`` (bad records divert into each chunk's
            ``quarantined`` tuple; the run continues).
        fault_policy: Retry/timeout policy for infrastructure faults
            (dead or hung workers).  The default retries nothing, which
            is the historical behaviour.  A policy with retries or a
            timeout forces pool execution even at ``workers=1`` so the
            knobs keep their meaning.
        adaptive_target_ms: When set, ``chunk_size`` and ``shard_bytes``
            become starting points instead of fixed sizes: an
            :class:`AdaptiveChunker` resizes tasks toward this per-task
            latency target from observed pipeline latencies.  ``None``
            (default) keeps the static knobs.  Sink bytes are identical
            either way — sizing only regroups rows into tasks.
    """

    def __init__(
        self,
        programs: Mapping[str, Union[CompiledProgram, TransformEngine]],
        header: Sequence[str],
        output_columns: Optional[Mapping[str, str]] = None,
        out_format: str = "csv",
        delimiter: str = ",",
        source: str = "<table>",
        workers: Optional[int] = None,
        chunk_size: int = DEFAULT_TABLE_CHUNK_LINES,
        on_error: str = "abort",
        fault_policy: Optional[FaultPolicy] = None,
        adaptive_target_ms: Optional[int] = None,
    ) -> None:
        if not programs:
            raise ValidationError("ShardedTableExecutor needs at least one column program")
        if out_format not in sink_format_names():
            raise ValidationError(
                f"unsupported output format {out_format!r}; "
                f"choose from {', '.join(sink_format_names())}"
            )
        # Fail at construction when the sink format needs an extra the
        # parent process cannot import (e.g. parquet without pyarrow).
        backend_by_name(out_format).require_sink()
        if on_error not in ERROR_MODES:
            raise ValidationError(
                f"unsupported error mode {on_error!r}; choose from {', '.join(ERROR_MODES)}"
            )
        self._workers = validated_workers(workers)
        self._chunk_size = validated_chunk_size(chunk_size)
        self._fault_policy = fault_policy or FaultPolicy()
        self._adaptive_target_ms = validated_adaptive_target(
            adaptive_target_ms, "adaptive_target_ms"
        )
        self._line_sizer: Optional[AdaptiveChunker] = None
        self._shard_sizer: Optional[AdaptiveChunker] = None
        if self._adaptive_target_ms is not None:
            self._line_sizer = AdaptiveChunker(
                initial=self._chunk_size,
                minimum=max(1, self._chunk_size // 16),
                maximum=self._chunk_size * 64,
                target_seconds=self._adaptive_target_ms / 1000.0,
                name="chunk",
            )

        fieldnames = tuple(header)
        named_outputs = dict(output_columns or {})
        output_fields = list(fieldnames)
        transforms: List[Tuple[int, int]] = []
        compiled_programs: List[CompiledProgram] = []
        for column, program in programs.items():
            column = resolve_column(fieldnames, column)
            sink = named_outputs.get(column, f"{column}_transformed")
            if sink == column:
                output_index = fieldnames.index(column)
            else:
                if sink in output_fields:
                    raise ValidationError(
                        f"output column {sink!r} already exists in the CSV header; "
                        "pick a different output column"
                    )
                output_index = len(output_fields)
                output_fields.append(sink)
            transforms.append((fieldnames.index(column), output_index))
            compiled_programs.append(_coerce_program(program, "ShardedTableExecutor"))

        self._spec = TableSpec(
            fieldnames=fieldnames,
            output_fields=tuple(output_fields),
            transforms=tuple(transforms),
            delimiter=delimiter,
            out_format=out_format,
            source=source,
            on_error=on_error,
        )
        self._programs = compiled_programs
        self._rpool: Optional[ResilientPool[Any, TableChunk]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def spec(self) -> TableSpec:
        """The resolved parse/transform/encode specification."""
        return self._spec

    @property
    def workers(self) -> int:
        """Number of worker processes (1 = inline, no pool)."""
        return self._workers

    @property
    def fault_policy(self) -> FaultPolicy:
        """The infrastructure-fault retry/timeout policy."""
        return self._fault_policy

    @property
    def adaptive_target_ms(self) -> Optional[int]:
        """The adaptive latency target, or ``None`` for static sizing."""
        return self._adaptive_target_ms

    def adaptive_stats(self) -> Dict[str, Dict[str, float]]:
        """Observed latency + current size per adaptive sizer (if any)."""
        stats: Dict[str, Dict[str, float]] = {}
        if self._line_sizer is not None:
            stats["chunk_lines"] = self._line_sizer.stats()
        if self._shard_sizer is not None:
            stats["shard_bytes"] = self._shard_sizer.stats()
        return stats

    def _build_pool(self) -> ProcessPoolExecutor:
        wires = tuple(_program_wire(program) for program in self._programs)
        return ProcessPoolExecutor(
            max_workers=self._workers,
            initializer=_init_table_worker,
            initargs=(self._spec, wires, self._chunk_size),
        )

    def _ensure_pool(self) -> ResilientPool[Any, TableChunk]:
        if self._rpool is None:
            self._rpool = ResilientPool(self._build_pool, self._fault_policy)
        return self._rpool

    @property
    def _use_pool(self) -> bool:
        # A fault policy with teeth needs out-of-process execution even
        # at workers=1: you cannot time out or retry your own process.
        return self._workers > 1 or self._fault_policy.wants_pool

    def close(self) -> None:
        """Shut the worker pool down gracefully (idempotent)."""
        if self._rpool is not None:
            self._rpool.close()
            self._rpool = None

    def kill(self) -> None:
        """Hard-kill the worker pool without waiting on running tasks."""
        if self._rpool is not None:
            self._rpool.kill()
            self._rpool = None

    def __enter__(self) -> "ShardedTableExecutor":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        # On KeyboardInterrupt/SystemExit a graceful shutdown would wait
        # on (possibly hung) running tasks; tear down hard instead so
        # Ctrl-C never orphans workers or hangs the parent.
        if exc_type is not None and not issubclass(exc_type, Exception):
            self.kill()
        else:
            self.close()

    # ------------------------------------------------------------------
    # Poison-work handling (a task that still fails after its retries)
    # ------------------------------------------------------------------
    def _fault_reason(self, kind: str, attempts: int) -> str:
        if kind == "hung":
            timeout = self._fault_policy.shard_timeout
            return (
                f"a worker exceeded the {timeout:g}s shard timeout "
                f"{attempts} time(s)"
            )
        return f"a worker process died running it {attempts} time(s)"

    def _quarantine_whole(
        self,
        first_line: int,
        lines: List[str],
        label: str,
        in_format: str,
        reason: str,
    ) -> TableChunk:
        """Quarantine every record of a poison chunk/shard, parent-side."""
        error = f"poison work quarantined whole: {reason}"
        records = tuple(
            QuarantinedRecord(label, number, error, _record_raw(record_lines))
            for number, record_lines in _iter_records(
                lines,
                first_line,
                self._spec.delimiter,
                csv_quoting=backend_by_name(in_format).csv_quoting,
            )
        )
        return TableChunk("", 0, 0, records)

    def _chunk_failure(
        self, key: Any, task: Tuple[int, List[str], Optional[str], str], kind: str, attempts: int
    ) -> TableChunk:
        first_line, lines, source, in_format = task
        label = source or self._spec.source
        reason = self._fault_reason(kind, attempts)
        if self._spec.on_error == "quarantine":
            return self._quarantine_whole(first_line, lines, label, in_format, reason)
        raise CLXError(
            f"{label} lines {first_line}..{first_line + len(lines) - 1}: {reason}; "
            "the chunk looks poisoned and the run was aborted"
        )

    def _shard_failure(
        self, key: Any, shard: _ApplyShard, kind: str, attempts: int
    ) -> TableChunk:
        reason = self._fault_reason(kind, attempts)
        if self._spec.on_error == "quarantine":
            lines = list(
                backend_by_name(shard.in_format).read_shard_lines(
                    shard.path,
                    shard.start,
                    shard.end,
                    collect_bad=True,
                    first_line=shard.first_line,
                )
            )
            return self._quarantine_whole(
                shard.first_line, lines, shard.source, shard.in_format, reason
            )
        raise CLXError(
            f"{shard.source} bytes [{shard.start}, {shard.end}) "
            f"(line {shard.first_line} onward): {reason}; "
            "the shard looks poisoned and the run was aborted"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def header_text(self) -> str:
        """The encoded sink header ("" for formats without one)."""
        return backend_by_name(self._spec.out_format).header_text(
            self._spec.output_fields, self._spec.delimiter
        )

    def run_chunks(
        self,
        lines: Iterable[str],
        first_line: int = 2,
        source: Optional[str] = None,
        in_format: str = "csv",
    ) -> Iterator[TableChunk]:
        """Stream raw data lines through the pipeline, in input order.

        Args:
            lines: Physical lines of the *data region* (no CSV header),
                with or without trailing newlines.
            first_line: 1-based physical line number of the first data
                line in the source file, for error messages.
            source: Input name for error messages, overriding the
                spec's (used when one executor streams several files).
            in_format: The input backend that parses the lines —
                ``"csv"`` (default), ``"jsonl"``, or a rowgroup backend
                name when the lines are its JSONL wire rendering.

        Yields:
            One :class:`TableChunk` per chunk (encoded sink text, row
            and flagged counts, quarantined records if in quarantine
            mode).
        """
        if in_format not in input_format_names():
            raise ValidationError(
                f"unsupported input format {in_format!r}; "
                f"choose from {', '.join(input_format_names())}"
            )
        sizer = self._line_sizer
        tasks = (
            (start, chunk, source, in_format)
            for start, chunk in _record_aligned_chunks(
                lines,
                sizer if sizer is not None else self._chunk_size,
                first_line,
                self._spec.delimiter,
                csv_quoting=backend_by_name(in_format).csv_quoting,
            )
        )
        if not self._use_pool:
            engines = self._programs
            for start, chunk, label, fmt in tasks:
                began = time.perf_counter()
                result = _transform_lines(self._spec, engines, start, chunk, label, fmt)
                if sizer is not None:
                    sizer.observe(time.perf_counter() - began)
                yield result
            return
        # The key carries the submission stamp parent-side (the wire
        # format stays untouched); the ordered drain turns it into the
        # per-task pipeline latency the sizer steers on.
        keyed = (((task[0], time.perf_counter()), task) for task in tasks)
        pool = self._ensure_pool()
        for key, result in pool.map_ordered_keyed(
            _transform_table_chunk, keyed, self._workers + 2, on_failure=self._chunk_failure
        ):
            if sizer is not None:
                sizer.observe(time.perf_counter() - key[1])
            yield result

    def _run_file(self, locator: str, in_format: str) -> Iterator[TableChunk]:
        """Stream one partition file through the pipeline via its backend.

        Line backends read their data region (checking the header, when
        the format has one, against the spec so two partitions with
        drifted schemas cannot be spliced into one sink silently);
        rowgroup backends render every row group as JSONL wire lines.
        Either way the lines split exactly like the byte-range shard
        reader's, so ``run_part`` and ``run_dataset`` agree on every
        file.
        """
        backend = backend_by_name(in_format)
        backend.require()
        data_start, first_line = 0, 1
        if backend.line_records:
            header, data_start, first_line = backend.data_region(
                locator, self._spec.delimiter
            )
            if header is not None:
                self._check_part_header(locator, header)
        lines = backend.read_shard_lines(
            locator,
            data_start,
            None,
            collect_bad=self._spec.on_error == "quarantine",
            first_line=first_line,
        )
        yield from self.run_chunks(
            lines, first_line=first_line, source=locator, in_format=in_format
        )

    def run_csv_file(self, path: Union[str, Path]) -> Iterator[TableChunk]:
        """Stream one CSV file through the pipeline, checking its header.

        The partition-aware entry point: the executor (and its worker
        pool) is built once and reused across every part of a
        partitioned dataset.

        Raises:
            CLXError: If ``path`` has no header row or its header does
                not match the executor's fieldnames.
        """
        yield from self._run_file(str(Path(path)), "csv")

    def run_jsonl_file(self, path: Union[str, Path]) -> Iterator[TableChunk]:
        """Stream one JSON Lines file through the pipeline.

        JSONL parts carry no header row; instead every record's keys
        are reconciled against the dataset field order inside the
        workers (missing key or ``null`` → ``""``, unknown key →
        :class:`~repro.util.errors.CLXError` naming the file and line).
        """
        yield from self._run_file(str(Path(path)), "jsonl")

    def run_part(self, part: "DatasetPart") -> Iterator[TableChunk]:
        """Stream one resolved dataset partition, dispatching on format."""
        yield from self._run_file(part.locator, part.format)

    def _check_part_header(
        self, source: Union[str, Path], header: Sequence[str]
    ) -> None:
        if tuple(header) != self._spec.fieldnames:
            raise CLXError(
                f"{source} header ({', '.join(header)}) does not match the "
                f"dataset header ({', '.join(self._spec.fieldnames)}); "
                "partitions of one dataset must share a header"
            )

    # ------------------------------------------------------------------
    # Cross-partition dispatch
    # ------------------------------------------------------------------
    def _plan_part_shards(
        self, part: "DatasetPart", shard_bytes: int
    ) -> Iterator[_ApplyShard]:
        """Split one partition into record-aligned shards via its backend.

        Small parts become one whole-part shard — the parent reads
        nothing but a CSV header, so dispatching many small files
        overlaps their open/parse latencies.  Line-record parts larger
        than ``shard_bytes`` are split with one
        :func:`~repro.util.csvio.iter_record_cut_points` scan, which
        also yields the exact first line number of every shard, so
        error messages stay precise however the bytes were divided.
        Shards are **yielded as cuts are found**: on a huge single
        file, workers start transforming the head while the parent is
        still scanning the tail — no cold-start bubble proportional to
        file size.  Rowgroup parts (parquet/arrow) shard on their own
        record-aligned cut points instead: row-group index ranges sized
        so each span covers roughly ``shard_bytes`` of storage.
        """
        backend = backend_by_name(part.format)
        backend.require()
        locator = part.locator

        def shard(start: int, line: int, end: int) -> _ApplyShard:
            return _ApplyShard(
                path=locator,
                in_format=part.format,
                start=start,
                end=end,
                first_line=line,
                source=locator,
            )

        if not backend.line_records:
            for start, end, first_row in backend.plan_shards(locator, shard_bytes):
                yield shard(start, first_row, end)
            return

        size = part.size
        header, data_start, first_line = backend.data_region(
            locator, self._spec.delimiter
        )
        if header is not None:
            self._check_part_header(locator, header)
        if size <= data_start:
            return

        span = size - data_start
        pieces = (span + shard_bytes - 1) // shard_bytes
        previous = (data_start, first_line)
        if pieces > 1:
            step = (span + pieces - 1) // pieces
            targets = list(range(data_start + step, size, step))
            for cut, line in iter_record_cut_points(
                locator,
                data_start,
                size,
                targets,
                delimiter=self._spec.delimiter,
                first_line=first_line,
                csv_quoting=backend.csv_quoting,
                opener=open_locator,
            ):
                if previous[0] < cut:
                    yield shard(previous[0], previous[1], cut)
                    previous = (cut, line)
        if previous[0] < size:
            yield shard(previous[0], previous[1], size)

    def run_dataset(
        self,
        dataset: Iterable["DatasetPart"],
        shard_bytes: int = DEFAULT_APPLY_SHARD_BYTES,
    ) -> Iterator[Tuple[int, TableChunk]]:
        """Fan a whole partitioned dataset across the worker pool.

        Unlike draining :meth:`run_part` one partition at a time —
        which barriers the pool at every part boundary — this plans
        record-aligned shards lazily (one part ahead of the in-flight
        window) and keeps shards of *different* partitions in flight
        together.  Workers read their own byte ranges, parse (CSV or
        JSONL per part), transform, and encode — in batches of the
        executor's ``chunk_size`` lines, so both knobs keep their
        meaning (``shard_bytes`` sizes I/O and dispatch, ``chunk_size``
        bounds rows resident per transform batch); the parent does no
        row I/O at all.  Results arrive strictly in (part, offset)
        order, so the sink bytes are identical at any worker count.

        Args:
            dataset: A resolved :class:`~repro.dataset.dataset.Dataset`
                (or any iterable of :class:`DatasetPart`).
            shard_bytes: Byte-range size above which a part is split.

        Yields:
            ``(part_index, TableChunk)`` per chunk, in deterministic
            order.
        """
        validated_chunk_size(shard_bytes, "shard_bytes")
        sizer: Optional[AdaptiveChunker] = None
        if self._adaptive_target_ms is not None:
            sizer = AdaptiveChunker(
                initial=shard_bytes,
                minimum=max(1, shard_bytes // 16),
                maximum=shard_bytes * 64,
                target_seconds=self._adaptive_target_ms / 1000.0,
                name="shard",
            )
            self._shard_sizer = sizer

        def plan() -> Iterator[Tuple[int, _ApplyShard]]:
            for index, part in enumerate(dataset):
                # Shard geometry is fixed within a part (the cut targets
                # are planned in one scan), so the sizer steers between
                # parts; chunk-line adaptation handles intra-part pacing.
                size = sizer.size if sizer is not None else shard_bytes
                for shard in self._plan_part_shards(part, size):
                    yield index, shard

        if not self._use_pool:
            for index, shard in plan():
                began = time.perf_counter()
                chunk = _transform_shard(
                    self._spec, self._programs, self._chunk_size, shard
                )
                if sizer is not None:
                    sizer.observe(time.perf_counter() - began)
                yield index, chunk
            return
        pool = self._ensure_pool()
        if sizer is None:
            yield from pool.map_ordered_keyed(
                _apply_file_shard, plan(), self._workers + 2, on_failure=self._shard_failure
            )
            return
        stamped = (
            ((index, time.perf_counter()), shard) for index, shard in plan()
        )
        for key, chunk in pool.map_ordered_keyed(
            _apply_file_shard, stamped, self._workers + 2, on_failure=self._shard_failure
        ):
            sizer.observe(time.perf_counter() - key[1])
            yield key[0], chunk


# ----------------------------------------------------------------------
# Dataset apply orchestration (shared by the CLI and the library APIs)
# ----------------------------------------------------------------------
def partition_output_name(part: "DatasetPart", out_format: str) -> str:
    """The sink file name for one partition: swap only the final extension.

    ``part.2024.csv`` keeps its dotted stem (``part.2024.jsonl`` under a
    JSONL sink), and an extensionless partition gains the sink suffix.
    """
    return part.path.stem + backend_by_name(out_format).sink_suffix


class _PartSink:
    """One output file behind a uniform write/commit/abort surface.

    Text sink formats write straight into an :class:`AtomicSink` (the
    header first); binary sink formats (parquet/arrow) route the worker
    wire text through the backend's
    :class:`~repro.dataset.backends.base.SinkWriter` onto a binary
    :class:`AtomicSink`, whose atomic rename still only happens after
    the format's own footer is written.
    """

    def __init__(self, target: Path, executor: ShardedTableExecutor) -> None:
        backend = backend_by_name(executor.spec.out_format)
        self.path = target
        self._atomic = AtomicSink(target, binary=backend.binary_sink).open()
        self._writer = None
        if backend.binary_sink:
            self._writer = backend.open_sink_writer(
                self._atomic.handle, executor.spec.output_fields
            )
        else:
            self._atomic.write(executor.header_text())

    def write(self, text: str) -> None:
        if self._writer is not None:
            self._writer.write(text)
        else:
            self._atomic.write(text)

    def commit(self) -> None:
        if self._writer is not None:
            self._writer.finish()
        self._atomic.commit()

    def abort(self) -> None:
        self._atomic.abort()


@dataclass
class DatasetApplyResult:
    """What one :func:`apply_dataset` run did.

    Attributes:
        rows: Data rows written across every partition.
        flagged: Cells no program branch matched (left unchanged).
        parts: Number of input partitions applied.
        outputs: Files written (empty when splicing to a stream).
        quarantined: Records diverted to the quarantine sink.
        quarantine_files: Quarantine files written (one per partition
            that quarantined at least one record).
        skipped_parts: Partitions skipped by ``resume`` because the run
            manifest already records them as complete.
        hint: A re-synthesis hint when the quarantined records share a
            token pattern, else ``None``.
    """

    rows: int = 0
    flagged: int = 0
    parts: int = 0
    outputs: List[Path] = field(default_factory=list)
    quarantined: int = 0
    quarantine_files: List[Path] = field(default_factory=list)
    skipped_parts: int = 0
    hint: Optional[str] = None


def apply_dataset(
    executor: ShardedTableExecutor,
    dataset: "Dataset",
    output: Optional[Union[str, Path]] = None,
    output_dir: Optional[Union[str, Path]] = None,
    stream: Optional[IO[str]] = None,
    shard_bytes: int = DEFAULT_APPLY_SHARD_BYTES,
    quarantine_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
) -> DatasetApplyResult:
    """Apply a dataset through ``executor`` into exactly one sink shape.

    The one implementation of apply-anywhere sink plumbing, shared by
    ``repro-clx apply``, :meth:`TransformEngine.apply_dataset
    <repro.engine.executor.TransformEngine.apply_dataset>`, and
    :meth:`CLXSession.apply_dataset
    <repro.core.session.CLXSession.apply_dataset>`:

    * ``output`` / ``stream`` — every partition splices into one sink
      in stable part order behind a single header;
    * ``output_dir`` — one output file per partition, preserving
      partition names (final extension swapped to the sink format).

    Either way the chunks come from :meth:`ShardedTableExecutor.run_dataset`,
    so partitions stream through the worker pool concurrently while the
    sink bytes stay deterministic.

    File sinks are crash-safe: every output (and quarantine) file is
    written to a same-directory temp file and atomically renamed into
    place on completion, so a failed or interrupted run never leaves a
    partial file at a final path.  In ``output_dir`` mode a
    ``.clx-apply.json`` manifest records each completed partition;
    ``resume=True`` skips partitions the manifest still vouches for
    (same source path and size, output present).

    With the executor in quarantine mode (``on_error="quarantine"``),
    ``quarantine_dir`` collects one JSONL file per partition that had
    failing records; sink bytes and quarantine contents are both
    deterministic at any worker count.

    Raises:
        ValidationError: If not exactly one destination is given, if
            quarantine mode and ``quarantine_dir`` are not paired, or
            if ``resume`` is used without ``output_dir``.
        CLXError: If writing would clobber an input partition, or two
            partitions map to the same output name.
    """
    destinations = [value for value in (output, output_dir, stream) if value is not None]
    if len(destinations) != 1:
        raise ValidationError(
            "apply_dataset needs exactly one of output, output_dir, or stream"
        )
    out_backend = backend_by_name(executor.spec.out_format)
    if stream is not None and out_backend.binary_sink:
        raise ValidationError(
            f"{executor.spec.out_format} output is a binary format and cannot "
            "be spliced into a text stream; use output or output_dir"
        )
    quarantining = executor.spec.on_error == "quarantine"
    if quarantining and quarantine_dir is None:
        raise ValidationError(
            "on_error='quarantine' needs a quarantine_dir to divert records into"
        )
    if quarantine_dir is not None and not quarantining:
        raise ValidationError(
            "quarantine_dir is only meaningful with on_error='quarantine'"
        )
    if resume and output_dir is None:
        raise ValidationError(
            "resume only applies to output_dir runs (they keep the run manifest)"
        )
    parts = dataset.parts
    result = DatasetApplyResult(parts=len(parts))
    quarantine = QuarantineWriter(Path(quarantine_dir)) if quarantine_dir is not None else None

    def record_quarantined(part: "DatasetPart", chunk: TableChunk) -> None:
        if quarantine is not None and chunk.quarantined:
            quarantine.add(part.name, part.locator, chunk.quarantined)

    def finish_quarantine() -> None:
        if quarantine is not None:
            quarantine.finish()
            result.quarantined = quarantine.total
            result.quarantine_files = quarantine.files
            if quarantine.samples:
                result.hint = resynthesis_hint(quarantine.samples)

    if output_dir is not None:
        directory = Path(output_dir)
        directory.mkdir(parents=True, exist_ok=True)
        names = set()
        for part in parts:
            name = partition_output_name(part, executor.spec.out_format)
            if name in names:
                raise CLXError(
                    f"two partitions would write the same output file {name!r}; "
                    "rename the partitions or apply them separately"
                )
            names.add(name)
            if part.url is None and (directory / name).resolve() == part.path.resolve():
                raise CLXError(
                    f"--output-dir would overwrite input partition {part.path}; "
                    "choose a different directory"
                )
        manifest = RunManifest(directory, executor.spec.out_format, resume=resume)
        pending: List["DatasetPart"] = []
        for part in parts:
            name = partition_output_name(part, executor.spec.out_format)
            if (
                resume
                and manifest.completed(
                    name, part.locator, part.size, backend=part.format
                )
                is not None
            ):
                result.skipped_parts += 1
                continue
            pending.append(part)

        sink: Optional[_PartSink] = None
        open_through = -1  # highest pending-part index whose sink is open
        part_rows = part_flagged = part_quarantined = 0

        def finalize_open_part() -> None:
            # Commit the finished partition's output, then its manifest
            # entry and quarantine file — in that order, so the manifest
            # never vouches for bytes that have not landed.
            nonlocal sink
            assert sink is not None
            part = pending[open_through]
            sink.commit()
            sink = None
            manifest.mark(
                partition_output_name(part, executor.spec.out_format),
                part.locator,
                part.size,
                part_rows,
                part_flagged,
                part_quarantined,
                backend=part.format,
            )
            if quarantine is not None:
                quarantine.finish_part(part.name)

        def advance_to(index: int) -> _PartSink:
            # Open sinks for every part up to `index`, so a partition
            # with no data rows still produces its (header-only) file.
            nonlocal sink, open_through, part_rows, part_flagged, part_quarantined
            while open_through < index:
                if sink is not None:
                    finalize_open_part()
                open_through += 1
                part = pending[open_through]
                target = directory / partition_output_name(
                    part, executor.spec.out_format
                )
                sink = _PartSink(target, executor)
                result.outputs.append(target)
                part_rows = part_flagged = part_quarantined = 0
            assert sink is not None
            return sink

        try:
            for part_index, chunk in executor.run_dataset(
                pending, shard_bytes=shard_bytes
            ):
                maybe_fire("sink.write", key=pending[part_index].name)
                advance_to(part_index).write(chunk.text)
                result.rows += chunk.rows
                result.flagged += chunk.flagged
                part_rows += chunk.rows
                part_flagged += chunk.flagged
                part_quarantined += len(chunk.quarantined)
                record_quarantined(pending[part_index], chunk)
            if pending:
                advance_to(len(pending) - 1)
                finalize_open_part()
        except BaseException:
            if sink is not None:
                sink.abort()
            if quarantine is not None:
                quarantine.abort()
            raise
        finish_quarantine()
        return result

    destination = Path(output) if output is not None else None
    if destination is not None:
        # The sink replaces the destination on success — refuse before
        # destroying an input partition (easy to hit when the glob
        # covers the destination, e.g. re-running the same command).
        resolved = destination.resolve()
        for part in parts:
            if part.url is None and resolved == part.path.resolve():
                raise CLXError(
                    f"--output {destination} is also an input partition; "
                    "writing would destroy the source — choose a different "
                    "output path"
                )
    file_sink = _PartSink(destination, executor) if destination is not None else None
    try:
        if file_sink is None:
            assert stream is not None
            stream.write(executor.header_text())
        for part_index, chunk in executor.run_dataset(
            dataset, shard_bytes=shard_bytes
        ):
            maybe_fire("sink.write", key=parts[part_index].name)
            if file_sink is not None:
                file_sink.write(chunk.text)
            else:
                assert stream is not None
                stream.write(chunk.text)
            result.rows += chunk.rows
            result.flagged += chunk.flagged
            record_quarantined(parts[part_index], chunk)
    except BaseException:
        # A failed spliced run must never leave a partial output file:
        # the temp is unlinked and the final path stays untouched.
        if file_sink is not None:
            file_sink.abort()
        if quarantine is not None:
            quarantine.abort()
        raise
    if file_sink is not None:
        file_sink.commit()
        assert destination is not None
        result.outputs.append(destination)
    finish_quarantine()
    return result


# ----------------------------------------------------------------------
# Mapping-rows fan-out behind TransformEngine.transform_table(workers=N)
# ----------------------------------------------------------------------
def _init_rows_worker(payload: Tuple[Tuple[str, ProgramWire], ...]) -> None:
    global _ROWS_STATE
    _ROWS_STATE = [(column, _program_from_wire(wire)) for column, wire in payload]


def _transform_rows_chunk(task: Tuple[int, List[Dict[str, Any]]]) -> List[Dict[str, Any]]:
    assert _ROWS_STATE is not None, "worker used before initialization"
    base_index, rows = task
    return _apply_columns_to_rows(_ROWS_STATE, base_index, rows)


def _apply_columns_to_rows(
    programs: Sequence[Tuple[str, CompiledProgram]],
    base_index: int,
    rows: Sequence[Mapping[str, Any]],
) -> List[Dict[str, Any]]:
    """Apply every column program to a chunk of row mappings (copied)."""
    out_rows = [dict(row) for row in rows]
    for column, compiled in programs:
        run_one = compiled.run_one
        for offset, row in enumerate(out_rows):
            if column not in row:
                raise ValidationError(f"row {base_index + offset} has no column {column!r}")
            value = "" if row[column] is None else str(row[column])
            row[column] = run_one(value).output
    return out_rows


def transform_table_parallel(
    rows: Iterable[Mapping[str, Any]],
    programs: Sequence[Tuple[str, CompiledProgram]],
    workers: int,
    chunk_size: int,
) -> Iterator[Dict[str, Any]]:
    """Fan chunks of row mappings across workers, one pass, ordered.

    The engine-level counterpart of :class:`ShardedTableExecutor` for
    callers that hold row dicts rather than a CSV file.  Used by
    :meth:`TransformEngine.transform_table` when ``workers > 1``.
    """
    payload = tuple((column, _program_wire(compiled)) for column, compiled in programs)
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_rows_worker,
        initargs=(payload,),
    ) as pool:
        results = map_ordered(
            pool, _transform_rows_chunk, indexed_chunks(rows, chunk_size), workers + 2
        )
        for chunk in results:
            yield from chunk
