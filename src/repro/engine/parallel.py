"""Sharded, multi-process apply — fan one compiled program across workers.

A :class:`~repro.engine.compiled.CompiledProgram` already crosses process
boundaries for free (it JSON round-trips), so the apply half of CLX
parallelizes trivially: serialize the artifact once, rebuild it in each
worker, and stream chunks of values through a pool.  What needs care is
keeping the protocol cheap and the memory bounded:

* workers never pickle :class:`~repro.patterns.pattern.Pattern` objects
  back — each chunk returns ``(outputs, pattern_indices)`` where the
  index points into the program's stable pattern table (target first,
  then branch patterns in order), and the parent rehydrates real
  patterns from its own table;
* :meth:`ShardedExecutor.run_iter` submits chunks through a bounded
  in-flight window instead of ``Pool.imap`` (whose feeder thread drains
  the input greedily), so a generator over a huge file is pulled at the
  pace results are consumed and only ``O(workers * chunk_size)`` rows
  are ever buffered;
* results are yielded strictly in input order, so sharded apply is a
  drop-in replacement for :meth:`TransformEngine.run_iter`.

The executor is exposed through
:meth:`repro.engine.executor.TransformEngine.run_parallel` and the CLI's
``apply --workers N``.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import deque
from itertools import islice
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.core.result import TransformReport
from repro.dsl.interpreter import TransformOutcome
from repro.engine.compiled import CompiledProgram
from repro.engine.executor import TransformEngine
from repro.patterns.pattern import Pattern
from repro.util.errors import ValidationError

#: Default number of values per worker task; large enough to amortize
#: pickling and dispatch, small enough to keep the pipeline busy.
DEFAULT_CHUNK_SIZE = 8192

#: Wire format of one processed chunk: transformed outputs plus, per
#: value, an index into the program's pattern table (-1 = no match).
ChunkResult = Tuple[List[str], List[int]]

# Per-worker state installed by the pool initializer: the rebuilt program
# and the pattern -> table-index mapping.
_WORKER_STATE: Optional[Tuple[CompiledProgram, Dict[Pattern, int]]] = None


def _pattern_table(compiled: CompiledProgram) -> List[Pattern]:
    """The stable pattern table: target first, then branch patterns."""
    return [compiled.target] + [branch.pattern for branch in compiled.program.branches]


def _init_worker(artifact: str) -> None:
    """Pool initializer: rebuild the compiled program once per worker."""
    global _WORKER_STATE
    compiled = CompiledProgram.loads(artifact)
    index: Dict[Pattern, int] = {}
    for position, pattern in enumerate(_pattern_table(compiled)):
        index.setdefault(pattern, position)
    _WORKER_STATE = (compiled, index)


def _apply_chunk(values: List[str]) -> ChunkResult:
    """Transform one chunk in a worker, returning the compact wire form."""
    assert _WORKER_STATE is not None, "worker used before initialization"
    compiled, index = _WORKER_STATE
    report = compiled.run(values)
    indices = [
        -1 if pattern is None else index[pattern]
        for pattern in report.matched_pattern
    ]
    return report.outputs, indices


def _chunked(values: Iterable[str], chunk_size: int) -> Iterator[List[str]]:
    iterator = iter(values)
    while True:
        chunk = list(islice(iterator, chunk_size))
        if not chunk:
            return
        yield chunk


class ShardedExecutor:
    """Apply one compiled program across ``multiprocessing`` workers.

    The executor owns a lazily-created worker pool (so constructing one
    is free until the first run) and can be reused across runs and
    datasets, like the single-process engine.  Use it as a context
    manager, or call :meth:`close` when done.

    Args:
        program: The :class:`CompiledProgram` to execute, or a
            :class:`TransformEngine` wrapping one.
        workers: Worker process count; defaults to ``os.cpu_count()``.
        chunk_size: Values per worker task.
    """

    def __init__(
        self,
        program: Union[CompiledProgram, TransformEngine],
        workers: Optional[int] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if isinstance(program, TransformEngine):
            program = program.compiled
        if not isinstance(program, CompiledProgram):
            raise ValidationError(
                "ShardedExecutor requires a CompiledProgram or TransformEngine, "
                f"got {type(program).__name__}"
            )
        resolved = workers if workers is not None else (os.cpu_count() or 1)
        if resolved < 1:
            raise ValidationError(f"workers must be positive, got {resolved}")
        if chunk_size < 1:
            raise ValidationError(f"chunk_size must be positive, got {chunk_size}")
        self._compiled = program
        self._artifact = program.dumps()
        self._table = _pattern_table(program)
        self._workers = resolved
        self._chunk_size = chunk_size
        self._pool: Optional[multiprocessing.pool.Pool] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def compiled(self) -> CompiledProgram:
        """The compiled program this executor fans out."""
        return self._compiled

    @property
    def workers(self) -> int:
        """Number of worker processes."""
        return self._workers

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            self._pool = multiprocessing.get_context().Pool(
                processes=self._workers,
                initializer=_init_worker,
                initargs=(self._artifact,),
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedExecutor(target={self._compiled.target.notation()!r}, "
            f"workers={self._workers}, chunk_size={self._chunk_size})"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _rehydrate(self, result: ChunkResult) -> Iterator[TransformOutcome]:
        outputs, indices = result
        table = self._table
        for output, position in zip(outputs, indices):
            if position < 0:
                yield TransformOutcome(output=output, matched=False, pattern=None)
            else:
                yield TransformOutcome(output=output, matched=True, pattern=table[position])

    def run_iter(self, values: Iterable[str]) -> Iterator[TransformOutcome]:
        """Stream ``values`` through the worker pool, in input order.

        Chunks are submitted through a bounded window (a few more than
        there are workers), so the input iterable is consumed at the
        pace results are drained and memory stays proportional to
        ``workers * chunk_size`` regardless of input size.
        """
        pool = self._ensure_pool()
        pending: Deque = deque()
        max_pending = self._workers + 2
        for chunk in _chunked(values, self._chunk_size):
            pending.append(pool.apply_async(_apply_chunk, (chunk,)))
            if len(pending) >= max_pending:
                yield from self._rehydrate(pending.popleft().get())
        while pending:
            yield from self._rehydrate(pending.popleft().get())

    def run(self, values: Iterable[str]) -> TransformReport:
        """Batch-apply across the pool, returning the usual report.

        Semantically identical to :meth:`TransformEngine.run` — same
        outputs, same matched patterns, same order.
        """
        inputs = list(values)
        outputs: List[str] = []
        matched: List[Optional[Pattern]] = []
        for outcome in self.run_iter(inputs):
            outputs.append(outcome.output)
            matched.append(outcome.pattern)
        return TransformReport(
            inputs=inputs,
            outputs=outputs,
            matched_pattern=matched,
            target=self._compiled.target,
        )
