"""Compiled UniFi programs: the serializable compile-once artifact.

The interpreter in :mod:`repro.dsl.interpreter` re-resolves everything
per value: every branch match goes through the pattern-keyed regex cache
(hashing the pattern each time) and every plan expression is re-dispatched
with ``isinstance`` checks.  That is fine inside an interactive session
but wrong for CLX's economics — the program is synthesized *once* under
user verification and then applied to the rest of the data, so the apply
half should be as close to raw regex matching as Python allows.

:class:`CompiledProgram` is that artifact.  Compiling resolves, up front:

* the target pattern into a single anchored pass-through regex,
* every branch pattern into a precompiled regex with one capture group
  per token,
* every plan into a flat tuple of ops — constant strings and 0-based
  capture-group slices — with ``Extract`` ranges bounds-checked against
  the branch pattern at compile time,
* every guard into a bound predicate (unguarded branches pay nothing),
* the maximal leading run of *unguarded* branches into one merged
  dispatch regex (an alternation with per-branch group namespaces), so
  dispatch costs a single scan instead of one ``match`` per branch.

At run time two further optimizations apply:

* **Merged dispatch.**  Branch order is first-match-wins, which is
  exactly the semantics of a regex alternation — but only while no
  guard can veto a branch.  The merged regex therefore covers the
  leading unguarded branches; ``match.lastindex`` always lands inside
  the alternative that matched (backtracking clears the groups of
  failed alternatives), so a precomputed group→branch table identifies
  the winner without re-matching.  Guarded branches, and every branch
  after the first guard, fall back to the sequential per-branch loop.
* **Value memo.**  Guards and plans are pure functions of the input
  value, so the full :class:`TransformOutcome` for a value can be
  cached.  Real columns are heavy-hitter distributed; a small bounded
  LRU (``memo_size`` entries, least-recently-used eviction) lets
  repeated values skip regex work entirely.  The memo is a runtime
  knob — it is not part of the artifact, does not affect equality or
  serialization, and ``memo_size=0`` disables it.

A compiled program is immutable in its observable behaviour, safe to
share across threads (the memo tolerates concurrent access: entries are
pure and eviction races are swallowed), and round-trips through JSON via
:meth:`to_dict` / :meth:`from_dict` / :meth:`dumps` / :meth:`loads`, so
it can be saved to disk and applied by a process that never saw the
original data or session.
"""

from __future__ import annotations

import json
import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.result import TransformReport
from repro.dsl.ast import AtomicPlan, Branch, ConstStr, Extract, UniFiProgram
from repro.dsl.interpreter import TransformOutcome
from repro.engine.serialize import (
    pattern_from_json,
    pattern_to_json,
    program_from_dict,
    program_to_dict,
)
from repro.patterns.matching import compiled_with_groups
from repro.patterns.pattern import Pattern
from repro.patterns.regex import compile_pattern
from repro.util.errors import SerializationError, TransformError
from repro.util.validate import validated_memo_size

#: One plan op: a constant output string, or a 0-based ``(start, stop)``
#: slice over the branch regex's capture groups.
PlanOp = Union[str, Tuple[int, int]]

#: Default bounded-LRU size for the per-program value memo.
DEFAULT_MEMO_SIZE = 4096

#: Batch misses tolerated before :meth:`CompiledProgram.run` checks the
#: hit rate and bypasses a memo that is clearly not paying for itself.
_MEMO_BYPASS_WINDOW = 1024


def _compile_plan_ops(
    plan: AtomicPlan, token_count: int, pattern: Pattern, branch_index: int
) -> Tuple[PlanOp, ...]:
    """Flatten ``plan`` into ops, bounds-checking extracts at compile time.

    ``Extract`` carries 1-based, inclusive token indices.  The AST
    constructor validates them, but artifacts rebuilt from the JSON wire
    format (or any other out-of-band construction) can smuggle a
    malformed range past it — and a ``start < 1`` would compile to a
    negative slice that wraps around the capture groups and silently
    emits wrong output.  Every range is therefore re-checked here, and
    rejected with an error naming the branch.
    """
    ops: List[PlanOp] = []
    for expression in plan.expressions:
        if isinstance(expression, ConstStr):
            ops.append(expression.text)
        elif isinstance(expression, Extract):
            if expression.start < 1 or expression.end < expression.start:
                raise TransformError(
                    f"branch {branch_index + 1}: {expression} has an invalid "
                    f"token range (indices are 1-based and end >= start)"
                )
            if expression.end > token_count:
                raise TransformError(
                    f"branch {branch_index + 1}: {expression} out of range for "
                    f"source pattern {pattern.notation()} with {token_count} tokens"
                )
            ops.append((expression.start - 1, expression.end))
        else:  # pragma: no cover - AtomicPlan already rejects these
            raise TransformError(f"unsupported expression {expression!r}")
    return tuple(ops)


class _CompiledBranch:
    """One precompiled Switch arm of the dispatch table."""

    __slots__ = ("pattern", "match", "guard", "ops")

    def __init__(self, branch: Branch, index: int) -> None:
        self.pattern = branch.pattern
        self.match = compiled_with_groups(branch.pattern).match
        self.guard: Optional[Callable[[str], bool]] = (
            branch.guard.holds if branch.guard is not None else None
        )
        self.ops = _compile_plan_ops(
            branch.plan, len(branch.pattern), branch.pattern, index
        )


def _build_merged_dispatch(
    branches: Sequence[_CompiledBranch],
) -> Tuple[Optional[Callable[[str], Optional[re.Match[str]]]], Tuple[int, ...], Tuple[Tuple[PlanOp, ...], ...], int]:
    """Merge the leading unguarded branches into one alternation regex.

    Returns ``(match, group_to_branch, shifted_plans, prefix)`` where
    ``prefix`` is how many leading branches the merged regex covers.
    ``group_to_branch`` maps a 1-based capture-group number to the index
    of the branch that owns it, and ``shifted_plans[i]`` is branch
    ``i``'s op tuple with every group slice offset by the branch's group
    base, so the ops index directly into the merged match's ``groups()``.

    A merged regex is only built when at least two leading branches are
    unguarded — a guard is a per-value veto the alternation cannot
    express, so the first guarded branch (and everything after it, which
    must not be tried before it) stays on the sequential loop.
    """
    prefix = 0
    for branch in branches:
        if branch.guard is not None:
            break
        prefix += 1
    if prefix < 2:
        return None, (), (), 0
    alternatives: List[str] = []
    group_to_branch: List[int] = [-1]  # capture-group numbers are 1-based
    shifted_plans: List[Tuple[PlanOp, ...]] = []
    for index in range(prefix):
        branch = branches[index]
        tokens = branch.pattern.tokens
        base = len(group_to_branch) - 1  # 0-based offset into match.groups()
        if tokens:
            alternatives.append(
                "(?:" + "".join(f"({token.to_regex()})" for token in tokens) + ")"
            )
            group_to_branch.extend([index] * len(tokens))
        else:
            # An empty pattern matches only "": an empty capture group
            # participates on that match, keeping lastindex dispatch valid.
            alternatives.append("()")
            group_to_branch.append(index)
        shifted_plans.append(
            tuple(
                op if type(op) is str else (op[0] + base, op[1] + base)
                for op in branch.ops
            )
        )
    merged = re.compile("^(?:" + "|".join(alternatives) + ")$")
    return merged.match, tuple(group_to_branch), tuple(shifted_plans), prefix


class CompiledProgram:
    """A UniFi program + target pattern compiled into a regex dispatch table.

    Args:
        program: The synthesized (and user-verified) UniFi program.
        target: The target pattern; values already matching it pass
            through untouched, exactly as
            :func:`repro.core.transformer.transform_column` does.
        metadata: Optional JSON-serializable annotations (source column
            name, provenance, …) carried through serialization verbatim.
        memo_size: Bound on the value→outcome LRU memo; ``0`` disables
            memoization.  A runtime knob — not serialized, and excluded
            from equality/hashing.
        merged_dispatch: Whether to build the merged dispatch regex over
            the leading unguarded branches.  Disabling it (together with
            ``memo_size=0``) recovers the naive sequential branch loop,
            which the differential test suite uses as its oracle.

    Raises:
        TransformError: If any plan extracts token indices that do not
            exist in its branch's source pattern.
        ValidationError: If ``memo_size`` is not a non-negative integer.
    """

    #: Artifact envelope markers checked on load.
    FORMAT = "clx/compiled-program"
    VERSION = 1

    __slots__ = (
        "_program",
        "_target",
        "_metadata",
        "_target_match",
        "_branches",
        "_memo",
        "_memo_size",
        "_memo_hits",
        "_memo_misses",
        "_merged_match",
        "_group_to_branch",
        "_merged_plans",
        "_merged_prefix",
    )

    def __init__(
        self,
        program: UniFiProgram,
        target: Pattern,
        metadata: Optional[Dict[str, Any]] = None,
        *,
        memo_size: int = DEFAULT_MEMO_SIZE,
        merged_dispatch: bool = True,
    ) -> None:
        self._program = program
        self._target = target
        self._metadata: Dict[str, Any] = dict(metadata) if metadata else {}
        # Validate serializability up front: a bad metadata value must
        # fail here, at the call site that supplied it, not later inside
        # dumps() deep in a compile --cache-dir store.
        if self._metadata:
            try:
                # allow_nan=False: NaN/Infinity serialize to non-JSON
                # literals that other readers reject.
                json.dumps(self._metadata, allow_nan=False)
            except (TypeError, ValueError) as error:
                raise SerializationError(
                    f"artifact metadata must be JSON-serializable: {error}"
                ) from error
        self._target_match = compile_pattern(target).match
        self._branches = tuple(
            _CompiledBranch(branch, index)
            for index, branch in enumerate(program.branches)
        )
        self._memo_size = validated_memo_size(memo_size)
        self._memo: Optional[Dict[str, TransformOutcome]] = (
            {} if self._memo_size else None
        )
        self._memo_hits = 0
        self._memo_misses = 0
        if merged_dispatch:
            (
                self._merged_match,
                self._group_to_branch,
                self._merged_plans,
                self._merged_prefix,
            ) = _build_merged_dispatch(self._branches)
        else:
            self._merged_match = None
            self._group_to_branch = ()
            self._merged_plans = ()
            self._merged_prefix = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def program(self) -> UniFiProgram:
        """The source UniFi program."""
        return self._program

    @property
    def target(self) -> Pattern:
        """The target pattern."""
        return self._target

    @property
    def metadata(self) -> Dict[str, Any]:
        """A copy of the artifact's metadata annotations."""
        return dict(self._metadata)

    @property
    def memo_size(self) -> int:
        """The configured memo bound (``0`` = memoization disabled)."""
        return self._memo_size

    @property
    def merged_dispatch(self) -> bool:
        """Whether a merged dispatch regex is active."""
        return self._merged_match is not None

    @property
    def merged_prefix(self) -> int:
        """How many leading branches the merged regex covers (0 if none)."""
        return self._merged_prefix

    def memo_stats(self) -> Dict[str, int]:
        """Memo counters: hits, misses, live entries, and the bound."""
        return {
            "hits": self._memo_hits,
            "misses": self._memo_misses,
            "entries": len(self._memo) if self._memo is not None else 0,
            "size": self._memo_size,
        }

    def clear_memo(self) -> None:
        """Drop all memo entries and reset the hit/miss counters."""
        if self._memo is not None:
            self._memo.clear()
        self._memo_hits = 0
        self._memo_misses = 0

    def __len__(self) -> int:
        return len(self._program)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompiledProgram):
            return NotImplemented
        return self._program == other._program and self._target == other._target

    def __hash__(self) -> int:
        return hash((self._program, self._target))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledProgram(target={self._target.notation()!r}, "
            f"branches={len(self._branches)})"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _transform(self, value: str) -> TransformOutcome:
        """Compute one value's outcome, without consulting the memo."""
        if self._target_match(value) is not None:
            return TransformOutcome(output=value, matched=True, pattern=self._target)
        merged_match = self._merged_match
        if merged_match is not None:
            match = merged_match(value)
            if match is not None:
                last = match.lastindex
                assert last is not None  # every alternative has >= 1 group
                index = self._group_to_branch[last]
                groups = match.groups()
                output = "".join(
                    op if type(op) is str else "".join(groups[op[0] : op[1]])
                    for op in self._merged_plans[index]
                )
                return TransformOutcome(
                    output=output, matched=True, pattern=self._branches[index].pattern
                )
        for branch in self._branches[self._merged_prefix :]:
            guard = branch.guard
            if guard is not None and not guard(value):
                continue
            match = branch.match(value)
            if match is None:
                continue
            groups = match.groups()
            output = "".join(
                op if type(op) is str else "".join(groups[op[0] : op[1]])
                for op in branch.ops
            )
            return TransformOutcome(output=output, matched=True, pattern=branch.pattern)
        return TransformOutcome(output=value, matched=False, pattern=None)

    def run_one(self, value: str) -> TransformOutcome:
        """Transform one value (memo, then merged dispatch, then branch loop)."""
        memo = self._memo
        if memo is None:
            return self._transform(value)
        outcome = memo.pop(value, None)
        if outcome is not None:
            memo[value] = outcome  # re-insert: most-recently-used position
            self._memo_hits += 1
            return outcome
        outcome = self._transform(value)
        self._memo_misses += 1
        memo[value] = outcome
        if len(memo) > self._memo_size:
            try:
                del memo[next(iter(memo))]  # oldest = least recently used
            except (KeyError, StopIteration):  # pragma: no cover - thread race
                pass
        return outcome

    def run(self, values: Sequence[str]) -> TransformReport:
        """Batch-transform ``values`` into a :class:`TransformReport`.

        Semantically identical to calling :meth:`run_one` per value, but
        with the dispatch table and memo bound to locals for the tight
        loop.
        """
        inputs = list(values)
        outputs: List[str] = []
        matched: List[Optional[Pattern]] = []
        append_output = outputs.append
        append_matched = matched.append
        target = self._target
        target_match = self._target_match
        branches = self._branches
        tail = branches[self._merged_prefix :]
        merged_match = self._merged_match
        group_to_branch = self._group_to_branch
        merged_plans = self._merged_plans
        memo = self._memo
        memo_size = self._memo_size
        memo_pop = memo.pop if memo is not None else None
        hits = 0
        misses = 0
        join = "".join
        for value in inputs:
            if memo_pop is not None:
                cached = memo_pop(value, None)
                if cached is not None:
                    memo[value] = cached  # type: ignore[index]
                    hits += 1
                    append_output(cached.output)
                    append_matched(cached.pattern)
                    continue
            pattern: Optional[Pattern]
            if target_match(value) is not None:
                output = value
                pattern = target
            else:
                output = value
                pattern = None
                if merged_match is not None:
                    merged = merged_match(value)
                    if merged is not None:
                        last = merged.lastindex
                        assert last is not None
                        index = group_to_branch[last]
                        groups = merged.groups()
                        output = join(
                            op if type(op) is str else join(groups[op[0] : op[1]])
                            for op in merged_plans[index]
                        )
                        pattern = branches[index].pattern
                if pattern is None:
                    for branch in tail:
                        guard = branch.guard
                        if guard is not None and not guard(value):
                            continue
                        match = branch.match(value)
                        if match is None:
                            continue
                        groups = match.groups()
                        output = join(
                            op if type(op) is str else join(groups[op[0] : op[1]])
                            for op in branch.ops
                        )
                        pattern = branch.pattern
                        break
            if memo is not None:
                misses += 1
                if memo_pop is not None:
                    memo[value] = TransformOutcome(
                        output=output, matched=pattern is not None, pattern=pattern
                    )
                    if len(memo) > memo_size:
                        try:
                            del memo[next(iter(memo))]
                        except (KeyError, StopIteration):  # pragma: no cover - thread race
                            pass
                    # Mostly-distinct batches turn the memo into pure
                    # dict churn (an LRU sees a cyclic stream larger
                    # than itself as 100% misses), so once a warm-up
                    # window shows the hit rate stuck under ~5%, stop
                    # consulting it for the rest of this batch.  Misses
                    # still count, so memo_stats() reflects the stream.
                    if misses > _MEMO_BYPASS_WINDOW and hits * 19 < misses:
                        memo_pop = None
            append_output(output)
            append_matched(pattern)
        if memo is not None:
            self._memo_hits += hits
            self._memo_misses += misses
        return TransformReport(
            inputs=inputs,
            outputs=outputs,
            matched_pattern=matched,
            target=target,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The versioned JSON-serializable artifact envelope."""
        payload = {
            "format": self.FORMAT,
            "version": self.VERSION,
            "target": pattern_to_json(self._target),
            "program": program_to_dict(self._program),
        }
        if self._metadata:
            payload["metadata"] = dict(self._metadata)
        return payload

    @classmethod
    def from_dict(
        cls,
        payload: Any,
        *,
        memo_size: int = DEFAULT_MEMO_SIZE,
        merged_dispatch: bool = True,
    ) -> "CompiledProgram":
        """Rebuild (and recompile) a program from its :meth:`to_dict` form.

        ``memo_size`` and ``merged_dispatch`` configure the rebuilt
        program's runtime dispatch; they are not part of the artifact.

        Raises:
            SerializationError: On a wrong format marker, unsupported
                version, or malformed program payload.
        """
        if not isinstance(payload, dict):
            raise SerializationError(
                f"compiled-program artifact must be an object, got {type(payload).__name__}"
            )
        marker = payload.get("format")
        if marker != cls.FORMAT:
            raise SerializationError(f"unexpected artifact format {marker!r} (want {cls.FORMAT!r})")
        version = payload.get("version")
        if version != cls.VERSION:
            raise SerializationError(f"unsupported artifact version {version!r} (want {cls.VERSION})")
        metadata = payload.get("metadata")
        if metadata is not None and not isinstance(metadata, dict):
            raise SerializationError("artifact metadata must be an object")
        if "target" not in payload or "program" not in payload:
            raise SerializationError("artifact is missing 'target' or 'program'")
        return cls(
            program=program_from_dict(payload["program"]),
            target=pattern_from_json(payload["target"]),
            metadata=metadata,
            memo_size=memo_size,
            merged_dispatch=merged_dispatch,
        )

    def dumps(self, indent: Optional[int] = None) -> str:
        """Serialize the artifact to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def loads(
        cls,
        text: str,
        *,
        memo_size: int = DEFAULT_MEMO_SIZE,
        merged_dispatch: bool = True,
    ) -> "CompiledProgram":
        """Parse a JSON string produced by :meth:`dumps`.

        Raises:
            SerializationError: On malformed JSON or an invalid artifact.
        """
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SerializationError(f"artifact is not valid JSON: {error}") from error
        return cls.from_dict(
            payload, memo_size=memo_size, merged_dispatch=merged_dispatch
        )


def compile_program(
    program: UniFiProgram,
    target: Pattern,
    metadata: Optional[Dict[str, Any]] = None,
    *,
    memo_size: int = DEFAULT_MEMO_SIZE,
    merged_dispatch: bool = True,
) -> CompiledProgram:
    """Functional spelling of :class:`CompiledProgram`'s constructor."""
    return CompiledProgram(
        program,
        target,
        metadata=metadata,
        memo_size=memo_size,
        merged_dispatch=merged_dispatch,
    )
