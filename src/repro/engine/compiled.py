"""Compiled UniFi programs: the serializable compile-once artifact.

The interpreter in :mod:`repro.dsl.interpreter` re-resolves everything
per value: every branch match goes through the pattern-keyed regex cache
(hashing the pattern each time) and every plan expression is re-dispatched
with ``isinstance`` checks.  That is fine inside an interactive session
but wrong for CLX's economics — the program is synthesized *once* under
user verification and then applied to the rest of the data, so the apply
half should be as close to raw regex matching as Python allows.

:class:`CompiledProgram` is that artifact.  Compiling resolves, up front:

* the target pattern into a single anchored pass-through regex,
* every branch pattern into a precompiled regex with one capture group
  per token,
* every plan into a flat tuple of ops — constant strings and 0-based
  capture-group slices — with ``Extract`` ranges bounds-checked against
  the branch pattern at compile time,
* every guard into a bound predicate (unguarded branches pay nothing).

A compiled program is immutable, safe to share across threads, and
round-trips through JSON via :meth:`to_dict` / :meth:`from_dict` /
:meth:`dumps` / :meth:`loads`, so it can be saved to disk and applied by
a process that never saw the original data or session.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.result import TransformReport
from repro.dsl.ast import AtomicPlan, Branch, ConstStr, Extract, UniFiProgram
from repro.dsl.interpreter import TransformOutcome
from repro.engine.serialize import (
    pattern_from_json,
    pattern_to_json,
    program_from_dict,
    program_to_dict,
)
from repro.patterns.matching import compiled_with_groups
from repro.patterns.pattern import Pattern
from repro.patterns.regex import compile_pattern
from repro.util.errors import SerializationError, TransformError

#: One plan op: a constant output string, or a 0-based ``(start, stop)``
#: slice over the branch regex's capture groups.
PlanOp = Union[str, Tuple[int, int]]


def _compile_plan_ops(plan: AtomicPlan, token_count: int, pattern: Pattern) -> Tuple[PlanOp, ...]:
    """Flatten ``plan`` into ops, bounds-checking extracts at compile time."""
    ops: List[PlanOp] = []
    for expression in plan.expressions:
        if isinstance(expression, ConstStr):
            ops.append(expression.text)
        elif isinstance(expression, Extract):
            if expression.end > token_count:
                raise TransformError(
                    f"{expression} out of range for source pattern "
                    f"{pattern.notation()} with {token_count} tokens"
                )
            ops.append((expression.start - 1, expression.end))
        else:  # pragma: no cover - AtomicPlan already rejects these
            raise TransformError(f"unsupported expression {expression!r}")
    return tuple(ops)


class _CompiledBranch:
    """One precompiled Switch arm of the dispatch table."""

    __slots__ = ("pattern", "match", "guard", "ops")

    def __init__(self, branch: Branch) -> None:
        self.pattern = branch.pattern
        self.match = compiled_with_groups(branch.pattern).match
        self.guard: Optional[Callable[[str], bool]] = (
            branch.guard.holds if branch.guard is not None else None
        )
        self.ops = _compile_plan_ops(branch.plan, len(branch.pattern), branch.pattern)


class CompiledProgram:
    """A UniFi program + target pattern compiled into a regex dispatch table.

    Args:
        program: The synthesized (and user-verified) UniFi program.
        target: The target pattern; values already matching it pass
            through untouched, exactly as
            :func:`repro.core.transformer.transform_column` does.
        metadata: Optional JSON-serializable annotations (source column
            name, provenance, …) carried through serialization verbatim.

    Raises:
        TransformError: If any plan extracts token indices that do not
            exist in its branch's source pattern.
    """

    #: Artifact envelope markers checked on load.
    FORMAT = "clx/compiled-program"
    VERSION = 1

    __slots__ = ("_program", "_target", "_metadata", "_target_match", "_branches")

    def __init__(
        self,
        program: UniFiProgram,
        target: Pattern,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._program = program
        self._target = target
        self._metadata: Dict[str, Any] = dict(metadata) if metadata else {}
        # Validate serializability up front: a bad metadata value must
        # fail here, at the call site that supplied it, not later inside
        # dumps() deep in a compile --cache-dir store.
        if self._metadata:
            try:
                # allow_nan=False: NaN/Infinity serialize to non-JSON
                # literals that other readers reject.
                json.dumps(self._metadata, allow_nan=False)
            except (TypeError, ValueError) as error:
                raise SerializationError(
                    f"artifact metadata must be JSON-serializable: {error}"
                ) from error
        self._target_match = compile_pattern(target).match
        self._branches = tuple(_CompiledBranch(branch) for branch in program.branches)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def program(self) -> UniFiProgram:
        """The source UniFi program."""
        return self._program

    @property
    def target(self) -> Pattern:
        """The target pattern."""
        return self._target

    @property
    def metadata(self) -> Dict[str, Any]:
        """A copy of the artifact's metadata annotations."""
        return dict(self._metadata)

    def __len__(self) -> int:
        return len(self._program)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompiledProgram):
            return NotImplemented
        return self._program == other._program and self._target == other._target

    def __hash__(self) -> int:
        return hash((self._program, self._target))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledProgram(target={self._target.notation()!r}, "
            f"branches={len(self._branches)})"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_one(self, value: str) -> TransformOutcome:
        """Transform one value (pass-through check, then first matching branch)."""
        if self._target_match(value) is not None:
            return TransformOutcome(output=value, matched=True, pattern=self._target)
        for branch in self._branches:
            guard = branch.guard
            if guard is not None and not guard(value):
                continue
            match = branch.match(value)
            if match is None:
                continue
            groups = match.groups()
            output = "".join(
                op if type(op) is str else "".join(groups[op[0] : op[1]])
                for op in branch.ops
            )
            return TransformOutcome(output=output, matched=True, pattern=branch.pattern)
        return TransformOutcome(output=value, matched=False, pattern=None)

    def run(self, values: Sequence[str]) -> TransformReport:
        """Batch-transform ``values`` into a :class:`TransformReport`.

        Semantically identical to calling :meth:`run_one` per value, but
        with the dispatch table bound to locals for the tight loop.
        """
        inputs = list(values)
        outputs: List[str] = []
        matched: List[Optional[Pattern]] = []
        append_output = outputs.append
        append_matched = matched.append
        target = self._target
        target_match = self._target_match
        branches = self._branches
        join = "".join
        for value in inputs:
            if target_match(value) is not None:
                append_output(value)
                append_matched(target)
                continue
            for branch in branches:
                guard = branch.guard
                if guard is not None and not guard(value):
                    continue
                match = branch.match(value)
                if match is None:
                    continue
                groups = match.groups()
                append_output(
                    join(
                        op if type(op) is str else join(groups[op[0] : op[1]])
                        for op in branch.ops
                    )
                )
                append_matched(branch.pattern)
                break
            else:
                append_output(value)
                append_matched(None)
        return TransformReport(
            inputs=inputs,
            outputs=outputs,
            matched_pattern=matched,
            target=target,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The versioned JSON-serializable artifact envelope."""
        payload = {
            "format": self.FORMAT,
            "version": self.VERSION,
            "target": pattern_to_json(self._target),
            "program": program_to_dict(self._program),
        }
        if self._metadata:
            payload["metadata"] = dict(self._metadata)
        return payload

    @classmethod
    def from_dict(cls, payload: Any) -> "CompiledProgram":
        """Rebuild (and recompile) a program from its :meth:`to_dict` form.

        Raises:
            SerializationError: On a wrong format marker, unsupported
                version, or malformed program payload.
        """
        if not isinstance(payload, dict):
            raise SerializationError(
                f"compiled-program artifact must be an object, got {type(payload).__name__}"
            )
        marker = payload.get("format")
        if marker != cls.FORMAT:
            raise SerializationError(f"unexpected artifact format {marker!r} (want {cls.FORMAT!r})")
        version = payload.get("version")
        if version != cls.VERSION:
            raise SerializationError(f"unsupported artifact version {version!r} (want {cls.VERSION})")
        metadata = payload.get("metadata")
        if metadata is not None and not isinstance(metadata, dict):
            raise SerializationError("artifact metadata must be an object")
        if "target" not in payload or "program" not in payload:
            raise SerializationError("artifact is missing 'target' or 'program'")
        return cls(
            program=program_from_dict(payload["program"]),
            target=pattern_from_json(payload["target"]),
            metadata=metadata,
        )

    def dumps(self, indent: Optional[int] = None) -> str:
        """Serialize the artifact to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "CompiledProgram":
        """Parse a JSON string produced by :meth:`dumps`.

        Raises:
            SerializationError: On malformed JSON or an invalid artifact.
        """
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SerializationError(f"artifact is not valid JSON: {error}") from error
        return cls.from_dict(payload)


def compile_program(
    program: UniFiProgram,
    target: Pattern,
    metadata: Optional[Dict[str, Any]] = None,
) -> CompiledProgram:
    """Functional spelling of :class:`CompiledProgram`'s constructor."""
    return CompiledProgram(program, target, metadata=metadata)
