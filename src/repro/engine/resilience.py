"""Resilient-apply support: quarantine sinks, run manifests, hints.

The pieces :func:`~repro.engine.parallel.apply_dataset` leans on when a
run must survive bad records or bad infrastructure:

* :class:`QuarantinedRecord` — the per-record diagnostic a worker
  returns alongside its good output bytes in quarantine mode.
* :class:`QuarantineWriter` — one crash-safe JSONL file per source
  partition under ``--quarantine-dir``, each line recording the source
  file, absolute line number, error, and the raw record text, so a
  quarantined record can be re-examined, re-profiled, or replayed.
* :class:`RunManifest` — the ``.clx-apply.json`` completion record an
  ``--output-dir`` run keeps, so ``--resume`` skips partitions whose
  outputs already landed (matched by source path and size).
* :func:`resynthesis_hint` — when the quarantined raw records cluster
  under one token pattern, say so: the fix is usually to re-profile and
  re-synthesize with that shape included, not to eyeball N rejects.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Sequence

from repro.util.errors import CLXError
from repro.util.sinks import AtomicSink, write_json_atomic

#: File name of the per-directory apply-run manifest.
MANIFEST_NAME = ".clx-apply.json"

#: Manifest schema version; bump on incompatible layout changes.
MANIFEST_VERSION = 1


class QuarantinedRecord(NamedTuple):
    """One record diverted from the sink instead of aborting the run.

    Attributes:
        source: The original partition path (never a shard-relative name).
        line: Absolute 1-based physical line number of the record's
            first line in ``source``.
        error: The error message that disqualified the record.
        record: The raw record text, trailing newline stripped.
    """

    source: str
    line: int
    error: str
    record: str


def quarantine_file_name(part_name: str) -> str:
    """The quarantine file for one partition: full name + marker suffix.

    The full partition file name (extension included) is kept so
    ``a.csv`` and ``a.jsonl`` quarantine separately.
    """
    return f"{part_name}.quarantine.jsonl"


class QuarantineWriter:
    """Crash-safe per-partition quarantine sinks under one directory.

    Each partition's records stream into an :class:`AtomicSink`, so a
    quarantine file appears only once its partition finishes cleanly —
    an aborted run leaves no partial quarantine files, matching the
    contract of the data sinks.  Records are JSONL::

        {"source": "...", "line": 7, "error": "...", "record": "..."}
    """

    def __init__(self, directory: Path, sample_limit: int = 128) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._open: Dict[str, AtomicSink] = {}
        self._owner: Dict[str, str] = {}
        self.counts: Dict[str, int] = {}
        self.files: List[Path] = []
        self.samples: List[str] = []
        self._sample_limit = sample_limit

    @property
    def total(self) -> int:
        """Quarantined records across every partition so far."""
        return sum(self.counts.values())

    @property
    def parts(self) -> int:
        """Number of partitions that quarantined at least one record."""
        return len(self.counts)

    def add(self, part_name: str, source: str, records: Iterable[QuarantinedRecord]) -> None:
        """Append ``records`` to the quarantine file for one partition."""
        batch = list(records)
        if not batch:
            return
        name = quarantine_file_name(part_name)
        owner = self._owner.setdefault(name, source)
        if owner != source:
            raise CLXError(
                f"two partitions ({owner} and {source}) would share quarantine "
                f"file {name!r}; rename the partitions or quarantine them separately"
            )
        sink = self._open.get(name)
        if sink is None:
            sink = AtomicSink(self.directory / name).open()
            self._open[name] = sink
        for record in batch:
            sink.write(
                json.dumps(
                    {
                        "source": record.source,
                        "line": record.line,
                        "error": record.error,
                        "record": record.record,
                    },
                    ensure_ascii=False,
                )
                + "\n"
            )
            if len(self.samples) < self._sample_limit:
                self.samples.append(record.record)
        self.counts[name] = self.counts.get(name, 0) + len(batch)

    def finish_part(self, part_name: str) -> None:
        """Commit the quarantine file of a finished partition (if any)."""
        sink = self._open.pop(quarantine_file_name(part_name), None)
        if sink is not None:
            sink.commit()
            self.files.append(sink.path)

    def finish(self) -> None:
        """Commit every still-open quarantine file (end of a clean run)."""
        for name in sorted(self._open):
            sink = self._open.pop(name)
            sink.commit()
            self.files.append(sink.path)

    def abort(self) -> None:
        """Discard every uncommitted quarantine file (failed run)."""
        for sink in self._open.values():
            sink.abort()
        self._open.clear()


class RunManifest:
    """Per-partition completion record for ``--output-dir`` apply runs.

    Written atomically after every finished partition, so however the
    run dies, the manifest names exactly the partitions whose outputs
    are complete.  A ``--resume`` run trusts an entry only when the
    source path and byte size still match and the output file exists.
    """

    def __init__(self, directory: Path, out_format: str, resume: bool = False) -> None:
        self.directory = Path(directory)
        self.path = self.directory / MANIFEST_NAME
        self._out_format = out_format
        self._entries: Dict[str, Any] = {}
        if resume and self.path.exists():
            try:
                payload = json.loads(self.path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                payload = {}
            if (
                isinstance(payload, dict)
                and payload.get("version") == MANIFEST_VERSION
                and payload.get("out_format") == out_format
                and isinstance(payload.get("parts"), dict)
            ):
                self._entries = payload["parts"]

    def completed(
        self, output_name: str, source: str, size: int, backend: Optional[str] = None
    ) -> Optional[Dict[str, Any]]:
        """The matching completion entry for a partition, if trustworthy.

        ``backend`` is the part's resolved input backend name; an entry
        written under a different backend (the same bytes re-resolved as
        another format, e.g. after an ``--assume-csv`` rename) is not
        trusted — the output would have been parsed differently.
        """
        entry = self._entries.get(output_name)
        if not isinstance(entry, dict):
            return None
        if entry.get("source") != source or entry.get("size") != size:
            return None
        if backend is not None and entry.get("backend") != backend:
            return None
        if not (self.directory / output_name).exists():
            return None
        return entry

    def mark(
        self,
        output_name: str,
        source: str,
        size: int,
        rows: int,
        flagged: int,
        quarantined: int,
        backend: Optional[str] = None,
    ) -> None:
        """Record one finished partition and atomically rewrite the file."""
        self._entries[output_name] = {
            "source": source,
            "size": size,
            "backend": backend,
            "rows": rows,
            "flagged": flagged,
            "quarantined": quarantined,
        }
        write_json_atomic(
            self.path,
            {
                "version": MANIFEST_VERSION,
                "out_format": self._out_format,
                "parts": self._entries,
            },
        )


def resynthesis_hint(samples: Sequence[str], threshold: float = 0.5) -> Optional[str]:
    """A one-line hint when quarantined records share a token pattern.

    Tokenizes each sampled raw record the way the profiler would; when
    one pattern covers at least ``threshold`` of the sample (and at
    least two records), the shared shape is worth a re-profile +
    re-synthesis pass rather than record-by-record triage.
    """
    from repro.patterns.pattern import Pattern
    from repro.tokens.tokenizer import tokenize

    shapes: "Counter[str]" = Counter()
    for sample in samples:
        try:
            shapes[Pattern(tokenize(sample)).notation()] += 1
        except Exception:  # noqa: BLE001 - a hint must never fail the run
            continue
    if not shapes:
        return None
    notation, count = shapes.most_common(1)[0]
    total = sum(shapes.values())
    if count < 2 or count < threshold * total:
        return None
    return (
        f"{count}/{total} sampled quarantined records share the pattern {notation}; "
        "consider re-profiling with these records and re-synthesizing the program"
    )
