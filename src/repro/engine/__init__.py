"""The execution half of CLX: compile once, apply anywhere.

The interactive :class:`~repro.core.session.CLXSession` covers the
Cluster–Label half of the paradigm — profiling data and synthesizing a
program under user verification.  This package is the Transform half at
production scale:

* :mod:`repro.engine.serialize` — JSON codecs for programs, branches,
  plans, guards, and patterns;
* :mod:`repro.engine.compiled` — :class:`CompiledProgram`, a verified
  program + target pattern lowered to a precompiled regex dispatch table
  with full JSON round-trip;
* :mod:`repro.engine.executor` — :class:`TransformEngine`, the stateless
  batch/streaming/table executor;
* :mod:`repro.engine.parallel` — :class:`ShardedExecutor`, which fans a
  compiled program across worker processes with ordered, chunked,
  bounded-memory results (also reachable as
  :meth:`TransformEngine.run_parallel`), and
  :class:`ShardedTableExecutor`, the pipelined multi-column table apply
  whose workers parse and re-encode CSV/JSONL chunks themselves —
  including whole mixed-format datasets via
  :meth:`ShardedTableExecutor.run_dataset` and the
  :func:`apply_dataset` sink orchestration;
* :mod:`repro.engine.cache` — :class:`ArtifactCache`, a
  content-addressed store of compiled artifacts keyed on (column
  fingerprint, target, flags).

Typical flow::

    session = CLXSession(sample_values)
    session.label_target_from_string("734-422-8073")
    artifact = session.compile().dumps()        # persist next to the data

    engine = TransformEngine.loads(artifact)    # any process, any time
    for outcome in engine.run_iter(huge_column_iterable):
        ...
"""

from repro.engine.cache import ArtifactCache, ArtifactRegistry, RegistryEntry, cache_key
from repro.engine.compiled import CompiledProgram, compile_program
from repro.engine.executor import TransformEngine
from repro.engine.parallel import (
    DatasetApplyResult,
    ShardedExecutor,
    ShardedTableExecutor,
    TableSpec,
    apply_dataset,
    partition_output_name,
)
from repro.engine.serialize import (
    branch_from_dict,
    branch_to_dict,
    expression_from_dict,
    expression_to_dict,
    guard_from_dict,
    guard_to_dict,
    pattern_from_json,
    pattern_to_json,
    plan_from_dict,
    plan_to_dict,
    program_from_dict,
    program_to_dict,
)

__all__ = [
    "ArtifactCache",
    "ArtifactRegistry",
    "CompiledProgram",
    "DatasetApplyResult",
    "RegistryEntry",
    "ShardedExecutor",
    "ShardedTableExecutor",
    "TableSpec",
    "TransformEngine",
    "apply_dataset",
    "branch_from_dict",
    "cache_key",
    "partition_output_name",
    "branch_to_dict",
    "compile_program",
    "expression_from_dict",
    "expression_to_dict",
    "guard_from_dict",
    "guard_to_dict",
    "pattern_from_json",
    "pattern_to_json",
    "plan_from_dict",
    "plan_to_dict",
    "program_from_dict",
    "program_to_dict",
]
