"""Exact language queries over token patterns (the decidable core).

A :class:`~repro.patterns.pattern.Pattern` denotes a regular language of
a very restricted shape: a concatenation of character-class tokens, each
repeated exactly ``k`` times or one-or-more times, plus literal strings.
Every character set involved is a union drawn from a *finite* universe —
the five base classes of Table 2 plus the individual literal characters
of the patterns under analysis — so language questions (inclusion,
overlap, emptiness under a containment guard) are decidable by subset
simulation over a small **atom alphabet**: one representative character
per distinguishable character group.

This is what makes the artifact linter's dead-arm and coverage verdicts
*exact* rather than heuristic: ``CompiledProgram.run_one`` dispatches
first-match over these languages, so "branch j can never fire" is
precisely "L(branch_j) ⊆ L(target) ∪ ⋃ L(earlier unguarded branches)",
which :func:`subsumed_by_union` decides.

The machinery is deliberately tiny: patterns compile to chain NFAs (one
state per consumed character position, a self-loop for ``+`` tokens, no
epsilon transitions), and all queries run one breadth-first subset
simulation over tuples of state sets (:func:`_search`).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.patterns.pattern import Pattern
from repro.tokens.token import Token

#: A chain NFA: transitions[state][atom] = set of next states; state 0 is
#: the start, ``accept`` the single accepting state.
Transitions = List[Dict[str, Set[int]]]


class ChainNFA:
    """A pattern (or containment query) lowered to an NFA over atoms."""

    __slots__ = ("transitions", "accept")

    def __init__(self, transitions: Transitions, accept: int) -> None:
        self.transitions = transitions
        self.accept = accept

    def step(self, states: FrozenSet[int], atom: str) -> FrozenSet[int]:
        """All states reachable from ``states`` by consuming ``atom``."""
        nexts: Set[int] = set()
        transitions = self.transitions
        for state in states:
            nexts |= transitions[state].get(atom, _EMPTY)
        return frozenset(nexts)

    def accepts_state(self, states: FrozenSet[int]) -> bool:
        """Whether the subset contains the accepting state."""
        return self.accept in states


_EMPTY: Set[int] = set()

#: Representative pools per base character group.  ``-`` and ``_`` are
#: singled out because ``<AN>`` accepts them while no other class does.
_REPRESENTATIVE_POOLS: Tuple[str, ...] = (
    "0123456789",
    "abcdefghijklmnopqrstuvwxyz",
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ",
    "-",
    "_",
)


def atom_alphabet(patterns: Iterable[Pattern], extra_text: Iterable[str] = ()) -> Tuple[str, ...]:
    """The atom alphabet distinguishing every character set in play.

    One atom per literal character appearing in any pattern (or in
    ``extra_text``, e.g. guard keywords), plus — per base character
    group — one representative character *not* claimed by a literal, so
    "some other digit/letter" stays expressible.  Characters outside
    every base class only matter when a literal names them, so no
    generic "garbage" atom is needed: no token can consume one.
    """
    literals: Set[str] = set()
    for pattern in patterns:
        for token in pattern.tokens:
            if token.is_literal and token.literal:
                literals.update(token.literal)
    for text in extra_text:
        literals.update(text)
    atoms: Set[str] = set(literals)
    for pool in _REPRESENTATIVE_POOLS:
        for char in pool:
            if char not in literals:
                atoms.add(char)
                break
    return tuple(sorted(atoms))


def pattern_nfa(pattern: Pattern, atoms: Sequence[str]) -> ChainNFA:
    """Lower ``pattern`` to a chain NFA over the atom alphabet."""
    transitions: Transitions = [{}]

    def _new_state() -> int:
        transitions.append({})
        return len(transitions) - 1

    def _add(source: int, atom: str, destination: int) -> None:
        transitions[source].setdefault(atom, set()).add(destination)

    current = 0
    for token in pattern.tokens:
        if token.is_literal:
            assert token.literal is not None
            for char in token.literal:
                nxt = _new_state()
                _add(current, char, nxt)
                current = nxt
            continue
        accepted = [atom for atom in atoms if token.klass.accepts_char(atom)]
        if token.is_plus:
            nxt = _new_state()
            for atom in accepted:
                _add(current, atom, nxt)
                _add(nxt, atom, nxt)
            current = nxt
        else:
            for _ in range(int(token.quantifier)):
                nxt = _new_state()
                for atom in accepted:
                    _add(current, atom, nxt)
                current = nxt
    return ChainNFA(transitions, accept=current)


def contains_nfa(keyword: str, atoms: Sequence[str], case_sensitive: bool = True) -> ChainNFA:
    """NFA for ``.*keyword.*`` over the atom alphabet (substring search)."""
    transitions: Transitions = [{} for _ in range(len(keyword) + 1)]
    accept = len(keyword)
    for atom in atoms:
        transitions[0].setdefault(atom, set()).add(0)
        transitions[accept].setdefault(atom, set()).add(accept)
    for index, char in enumerate(keyword):
        if case_sensitive:
            matching = [atom for atom in atoms if atom == char]
        else:
            matching = [atom for atom in atoms if atom.lower() == char.lower()]
        for atom in matching:
            transitions[index].setdefault(atom, set()).add(index + 1)
    return ChainNFA(transitions, accept=accept)


def _search(
    machines: Sequence[ChainNFA],
    atoms: Sequence[str],
    hit: Callable[[Tuple[FrozenSet[int], ...]], bool],
    prune: Callable[[Tuple[FrozenSet[int], ...]], bool],
) -> Optional[str]:
    """Breadth-first subset simulation of several NFAs in lockstep.

    Explores every reachable tuple of state subsets; returns a
    *shortest* witness string (over the atom alphabet) as soon as
    ``hit`` holds for one, skipping successors where ``prune`` holds
    (subsets from which no interesting string can extend).  Returns
    ``None`` when no reachable joint state satisfies ``hit``.
    """
    start = tuple(frozenset((0,)) for _ in machines)
    if hit(start):
        return ""
    seen = {start}
    frontier: List[Tuple[Tuple[FrozenSet[int], ...], str]] = [(start, "")]
    while frontier:
        next_frontier: List[Tuple[Tuple[FrozenSet[int], ...], str]] = []
        for joint, prefix in frontier:
            for atom in atoms:
                advanced = tuple(
                    machine.step(states, atom) for machine, states in zip(machines, joint)
                )
                if advanced in seen or prune(advanced):
                    continue
                text = prefix + atom
                if hit(advanced):
                    return text
                seen.add(advanced)
                next_frontier.append((advanced, text))
        frontier = next_frontier
    return None


def difference_witness(
    child: ChainNFA, parents: Sequence[ChainNFA], atoms: Sequence[str]
) -> Optional[str]:
    """A shortest string in ``L(child) \\ ⋃ L(parents)``, or ``None``.

    The witness-producing form of :func:`subsumed_by_union`: ``None``
    means the child language is covered; a string is a concrete
    counterexample (over the atom alphabet) usable directly in finding
    messages.
    """
    machines = [child, *parents]

    def _violation(joint: Tuple[FrozenSet[int], ...]) -> bool:
        if not child.accepts_state(joint[0]):
            return False
        return not any(
            parent.accepts_state(states) for parent, states in zip(parents, joint[1:])
        )

    def _prune(joint: Tuple[FrozenSet[int], ...]) -> bool:
        return not joint[0]  # child can no longer accept anything

    return _search(machines, atoms, hit=_violation, prune=_prune)


def subsumed_by_union(child: ChainNFA, parents: Sequence[ChainNFA], atoms: Sequence[str]) -> bool:
    """Whether every string of ``child`` is accepted by *some* parent.

    ``L(child) ⊆ ⋃ L(parents)``.  With a single parent this is plain
    language inclusion; with several it is the exact dead-arm /
    coverage condition of first-match dispatch.
    """
    return difference_witness(child, parents, atoms) is None


def overlap_witness(
    first: ChainNFA,
    second: ChainNFA,
    atoms: Sequence[str],
    excluding: Sequence[ChainNFA] = (),
) -> Optional[str]:
    """A shortest string in ``L(first) ∩ L(second) \\ ⋃ L(excluding)``.

    The witness-producing form of :func:`languages_overlap`; ``None``
    means the (residual) intersection is empty.
    """
    machines = [first, second, *excluding]

    def _hit(joint: Tuple[FrozenSet[int], ...]) -> bool:
        if not (first.accepts_state(joint[0]) and second.accepts_state(joint[1])):
            return False
        return not any(
            machine.accepts_state(states) for machine, states in zip(excluding, joint[2:])
        )

    def _prune(joint: Tuple[FrozenSet[int], ...]) -> bool:
        return not joint[0] or not joint[1]

    return _search(machines, atoms, hit=_hit, prune=_prune)


def languages_overlap(
    first: ChainNFA,
    second: ChainNFA,
    atoms: Sequence[str],
    excluding: Sequence[ChainNFA] = (),
) -> bool:
    """Whether some string is in both languages (and in no excluded one).

    ``L(first) ∩ L(second) \\ ⋃ L(excluding) ≠ ∅``.  The exclusion set
    lets the overlap pass ignore strings the target's pass-through check
    intercepts before any branch is consulted.
    """
    return overlap_witness(first, second, atoms, excluding=excluding) is not None


def guard_satisfiable(
    pattern_machine: ChainNFA,
    keyword: str,
    atoms: Sequence[str],
    case_sensitive: bool = True,
) -> bool:
    """Whether any string matching the pattern also contains ``keyword``."""
    return languages_overlap(
        pattern_machine, contains_nfa(keyword, atoms, case_sensitive), atoms
    )


def keyword_always_present(pattern: Pattern, keyword: str, case_sensitive: bool = True) -> bool:
    """Exact check that every match of ``pattern`` contains ``keyword``.

    Decides ``L(pattern) ⊆ L(.*keyword.*)`` by subset simulation over an
    atom alphabet that distinguishes every keyword character (and, for
    case-insensitive guards, both its case foldings), so keywords that
    span literal runs *and* class tokens are handled, not just keywords
    inside a single literal run.
    """
    if not keyword:
        return True
    if case_sensitive:
        variants: Tuple[str, ...] = (keyword,)
    else:
        variants = (keyword, keyword.lower(), keyword.upper())
    atoms = atom_alphabet([pattern], extra_text=variants)
    machine = pattern_nfa(pattern, atoms)
    return subsumed_by_union(machine, [contains_nfa(keyword, atoms, case_sensitive)], atoms)


def nfa_accepts(nfa: ChainNFA, text: str) -> bool:
    """Concrete membership: whether ``nfa`` accepts ``text``.

    Only meaningful when every character of ``text`` is an atom of the
    alphabet the NFA was built over — pass ``extra_text=[text]`` to
    :func:`atom_alphabet` when building it.  (Extra literal atoms only
    refine the quotient, so this never changes the language denoted.)
    """
    states = frozenset((0,))
    for char in text:
        states = nfa.step(states, char)
        if not states:
            return False
    return nfa.accepts_state(states)


def random_sample_string(pattern: Pattern, rng: random.Random, plus_cap: int = 4) -> str:
    """A random concrete string matching ``pattern``.

    Class tokens draw uniformly from all accepted base-class characters;
    ``+`` tokens repeat between 1 and ``plus_cap`` times.  Used by the
    differential property suites to exercise the language machinery on
    inputs :func:`sample_string` would never produce.
    """
    pieces: List[str] = []
    for token in pattern.tokens:
        if token.is_literal:
            assert token.literal is not None
            pieces.append(token.literal)
            continue
        accepted = [
            char
            for pool in _REPRESENTATIVE_POOLS
            for char in pool
            if token.klass.accepts_char(char)
        ]
        count = rng.randint(1, plus_cap) if token.is_plus else int(token.quantifier)
        pieces.append("".join(rng.choice(accepted) for _ in range(count)))
    return "".join(pieces)


def sample_string(pattern: Pattern, plus_length: int = 1) -> str:
    """A concrete string matching ``pattern`` (``+`` tokens repeated
    ``plus_length`` times), used for counterexample hints in findings."""
    pieces: List[str] = []
    for token in pattern.tokens:
        if token.is_literal:
            assert token.literal is not None
            pieces.append(token.literal)
            continue
        char = _class_representative(token)
        count = plus_length if token.is_plus else int(token.quantifier)
        pieces.append(char * count)
    return "".join(pieces)


def _class_representative(token: Token) -> str:
    for pool in _REPRESENTATIVE_POOLS:
        for char in pool:
            if token.klass.accepts_char(char):
                return char
    raise AssertionError(f"no representative character for {token!r}")  # pragma: no cover
