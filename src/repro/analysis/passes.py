"""The analyzer's individual passes over one (or several) compiled programs.

Each pass takes a :class:`~repro.engine.compiled.CompiledProgram` (plus
shared language machinery from :mod:`repro.analysis.lang`) and yields
:class:`~repro.analysis.findings.Finding` objects.  The passes mirror
exactly how ``CompiledProgram.run_one`` dispatches — target pass-through
first, then first matching branch, guards checked before patterns — so
"dead" here means dead *in that dispatch order*, not merely similar.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence, Tuple

if TYPE_CHECKING:  # hierarchy types only flow in, never out
    from repro.clustering.hierarchy import PatternHierarchy

from repro.analysis.findings import Finding, finding
from repro.analysis.flow import check_flow, plan_is_identity
from repro.analysis.lang import (
    ChainNFA,
    atom_alphabet,
    guard_satisfiable,
    keyword_always_present,
    languages_overlap,
    pattern_nfa,
    subsumed_by_union,
)
from repro.analysis.redos import analyze_regex
from repro.dsl.ast import ConstStr, Extract
from repro.dsl.guards import ContainsGuard
from repro.engine.compiled import CompiledProgram
from repro.patterns.matching import compiled_with_groups
from repro.patterns.pattern import Pattern
from repro.patterns.regex import compile_pattern, pattern_to_regex


def _branch_location(name: str, index: int) -> str:
    """1-based branch anchor, matching how programs are explained."""
    return f"{name}:branch[{index + 1}]"


class ProgramLanguages:
    """Shared atom alphabet + NFA cache for one program's patterns.

    Built once per analyzed program; extra patterns (profiled clusters
    for the coverage audit) can be folded in via :meth:`including`.
    """

    def __init__(self, compiled: CompiledProgram, extra_patterns: Sequence[Pattern] = ()) -> None:
        self.compiled = compiled
        patterns = [compiled.target, *(branch.pattern for branch in compiled.program.branches)]
        patterns.extend(extra_patterns)
        keywords: List[str] = []
        for branch in compiled.program.branches:
            guard = branch.guard
            if isinstance(guard, ContainsGuard):
                keywords.extend((guard.keyword, guard.keyword.lower(), guard.keyword.upper()))
        self.atoms = atom_alphabet(patterns, extra_text=keywords)
        self._nfas: Dict[Pattern, ChainNFA] = {}

    def nfa(self, pattern: Pattern) -> ChainNFA:
        machine = self._nfas.get(pattern)
        if machine is None:
            machine = pattern_nfa(pattern, self.atoms)
            self._nfas[pattern] = machine
        return machine

    def including(self, extra_patterns: Sequence[Pattern]) -> "ProgramLanguages":
        """A copy whose alphabet also distinguishes ``extra_patterns``."""
        return ProgramLanguages(self.compiled, extra_patterns=extra_patterns)


# ----------------------------------------------------------------------
# Pass 1+2: dispatch reachability and overlap/ambiguity
# ----------------------------------------------------------------------

def check_reachability(
    compiled: CompiledProgram, languages: ProgramLanguages, name: str
) -> List[Finding]:
    """Dead arms (CLX001/CLX002) under first-match dispatch — exact.

    A branch is dead iff its language is contained in the union of the
    target's language (the pass-through check runs first) and the
    languages of all *earlier unguarded* branches (an earlier guarded
    branch may decline a value, so it shadows nothing for sure).
    """
    findings: List[Finding] = []
    atoms = languages.atoms
    target_nfa = languages.nfa(compiled.target)
    earlier_unguarded: List[Tuple[int, ChainNFA]] = []
    for index, branch in enumerate(compiled.program.branches):
        machine = languages.nfa(branch.pattern)
        location = _branch_location(name, index)
        if subsumed_by_union(machine, [target_nfa], atoms):
            findings.append(
                finding(
                    "CLX001",
                    location,
                    f"branch pattern {branch.pattern.notation()} is subsumed by the "
                    f"target {compiled.target.notation()}; every match passes through "
                    "before this branch is consulted",
                    pattern=branch.pattern.notation(),
                    target=compiled.target.notation(),
                )
            )
        elif earlier_unguarded and subsumed_by_union(
            machine, [target_nfa] + [m for _, m in earlier_unguarded], atoms
        ):
            shadowers = [
                i + 1
                for i, earlier in earlier_unguarded
                if subsumed_by_union(machine, [earlier], atoms)
            ]
            if shadowers:
                reason = f"shadowed by earlier branch(es) {shadowers}"
            else:
                reason = "jointly shadowed by the target and earlier branches"
            findings.append(
                finding(
                    "CLX002",
                    location,
                    f"branch pattern {branch.pattern.notation()} can never fire: {reason}",
                    pattern=branch.pattern.notation(),
                    shadowed_by=shadowers,
                )
            )
        if branch.guard is None:
            earlier_unguarded.append((index, machine))
    return findings


def check_overlap(
    compiled: CompiledProgram, languages: ProgramLanguages, name: str,
    dead_indices: Iterable[int] = (),
) -> List[Finding]:
    """Order-dependent unguarded overlaps (CLX003).

    Two live unguarded branches with different plans whose languages
    intersect *outside* the target language (pass-through values never
    reach the dispatch table) make the program's output depend on
    branch order — legal, but worth a warning.
    """
    findings: List[Finding] = []
    dead = set(dead_indices)
    branches = compiled.program.branches
    target_nfa = languages.nfa(compiled.target)
    for second in range(len(branches)):
        if second in dead or branches[second].guard is not None:
            continue
        for first in range(second):
            if first in dead or branches[first].guard is not None:
                continue
            if branches[first].plan == branches[second].plan:
                continue
            if languages_overlap(
                languages.nfa(branches[first].pattern),
                languages.nfa(branches[second].pattern),
                languages.atoms,
                excluding=[target_nfa],
            ):
                findings.append(
                    finding(
                        "CLX003",
                        _branch_location(name, second),
                        f"pattern {branches[second].pattern.notation()} overlaps "
                        f"branch {first + 1} ({branches[first].pattern.notation()}) "
                        "with a different plan; output depends on branch order",
                        pattern=branches[second].pattern.notation(),
                        overlaps_branch=first + 1,
                    )
                )
                break  # one overlap report per branch is enough
    return findings


# ----------------------------------------------------------------------
# Pass 3: regex safety
# ----------------------------------------------------------------------

def check_regex_safety(
    compiled: CompiledProgram, name: str, probe: bool = True
) -> List[Finding]:
    """ReDoS-prone structure (CLX004/CLX005) + empirical probe (CLX006).

    Walks the exact regex sources the compiled program matches with:
    the anchored target regex and every branch's grouped dispatch
    regex.  Only structurally flagged regexes are probed, so clean
    programs pay nothing and the probe itself is time-bounded.
    """
    findings: List[Finding] = []
    subjects: List[Tuple[str, str]] = [
        (name, pattern_to_regex(compiled.target))
    ]
    for index, branch in enumerate(compiled.program.branches):
        subjects.append(
            (_branch_location(name, index), compiled_with_groups(branch.pattern).pattern)
        )
    for location, source in subjects:
        issues, measured = analyze_regex(source)
        if not issues:
            continue
        kinds = {issue.kind for issue in issues}
        if "nested" in kinds:
            detail = next(issue.detail for issue in issues if issue.kind == "nested")
            findings.append(
                finding("CLX004", location, f"ReDoS-prone regex: {detail}", regex=source)
            )
        if "ambiguous" in kinds:
            detail = next(issue.detail for issue in issues if issue.kind == "ambiguous")
            findings.append(
                finding("CLX005", location, f"ambiguous repetition: {detail}", regex=source)
            )
        if probe and measured is not None and measured.slow:
            findings.append(
                finding(
                    "CLX006",
                    location,
                    f"adversarial input of {measured.input_length} chars took "
                    f"{measured.seconds * 1000:.0f}ms to reject; applying this "
                    "artifact can stall on hostile values",
                    input_length=measured.input_length,
                    seconds=round(measured.seconds, 4),
                )
            )
    return findings


# ----------------------------------------------------------------------
# Pass 4: plan and guard sanity
# ----------------------------------------------------------------------

def check_plan_sanity(
    compiled: CompiledProgram, languages: ProgramLanguages, name: str
) -> List[Finding]:
    """Identity plans, constant outputs, unused tokens, degenerate guards."""
    findings: List[Finding] = []
    target_match = compile_pattern(compiled.target).match
    for index, branch in enumerate(compiled.program.branches):
        location = _branch_location(name, index)
        expressions = branch.plan.expressions

        if plan_is_identity(branch):
            findings.append(
                finding(
                    "CLX007",
                    location,
                    f"plan rewrites every match of {branch.pattern.notation()} to "
                    "itself; the branch only flips the matched flag",
                    pattern=branch.pattern.notation(),
                )
            )
        elif expressions and all(isinstance(e, ConstStr) for e in expressions):
            constant = "".join(e.text for e in expressions)  # type: ignore[union-attr]
            duplicates = target_match(constant) is not None
            suffix = " (the constant already matches the target)" if duplicates else ""
            findings.append(
                finding(
                    "CLX008",
                    location,
                    f"plan maps every match of {branch.pattern.notation()} to the "
                    f"constant {constant!r}{suffix}",
                    constant=constant,
                    matches_target=duplicates,
                )
            )

        used: set = set()
        constant_only = bool(expressions) and all(
            isinstance(e, ConstStr) for e in expressions
        )
        for expression in expressions:
            if isinstance(expression, Extract):
                used.update(range(expression.start, expression.end + 1))
        unused = [
            position + 1
            for position, token in enumerate(branch.pattern.tokens)
            if not token.is_literal and (position + 1) not in used
        ]
        if unused and not constant_only and not plan_is_identity(branch):
            notations = ", ".join(
                branch.pattern.tokens[position - 1].notation() for position in unused
            )
            findings.append(
                finding(
                    "CLX009",
                    location,
                    f"data token(s) {notations} at position(s) {unused} are never "
                    "extracted by the plan",
                    unused_tokens=unused,
                )
            )

        guard = branch.guard
        if isinstance(guard, ContainsGuard):
            machine = languages.nfa(branch.pattern)
            if not guard_satisfiable(
                machine, guard.keyword, languages.atoms, guard.case_sensitive
            ):
                findings.append(
                    finding(
                        "CLX010",
                        location,
                        f"guard {guard.describe()} can never hold for "
                        f"{branch.pattern.notation()}; the branch is dead",
                        keyword=guard.keyword,
                    )
                )
            elif keyword_always_present(branch.pattern, guard.keyword, guard.case_sensitive):
                findings.append(
                    finding(
                        "CLX011",
                        location,
                        f"guard {guard.describe()} holds for every match of "
                        f"{branch.pattern.notation()}; the guard is redundant",
                        keyword=guard.keyword,
                    )
                )
    return findings


# ----------------------------------------------------------------------
# Pass 5: coverage audit against a profile
# ----------------------------------------------------------------------

def check_coverage(
    compiled: CompiledProgram,
    hierarchy: "PatternHierarchy",
    name: str,
    max_samples: int = 3,
) -> List[Finding]:
    """Profiled clusters no branch (nor the target) matches — CLX012.

    ``hierarchy`` is a :class:`~repro.clustering.hierarchy.PatternHierarchy`
    (e.g. lowered from a :class:`~repro.clustering.incremental.ColumnProfile`).
    Residual clusters would silently pass through an apply unchanged;
    the finding carries row counts so drift quarantine can budget.
    """
    leaves = list(hierarchy.leaf_nodes)
    languages = ProgramLanguages(compiled, extra_patterns=[leaf.pattern for leaf in leaves])
    atoms = languages.atoms
    unguarded = [
        languages.nfa(branch.pattern)
        for branch in compiled.program.branches
        if branch.guard is None
    ]
    cover = [languages.nfa(compiled.target)] + unguarded
    findings: List[Finding] = []
    for leaf in leaves:
        if subsumed_by_union(languages.nfa(leaf.pattern), cover, atoms):
            continue
        samples: List[str] = []
        if leaf.cluster is not None:
            samples = leaf.cluster.sample(max_samples)
        findings.append(
            finding(
                "CLX012",
                name,
                f"profiled cluster {leaf.pattern.notation()} ({leaf.size} row(s)) "
                "matches no branch; those rows pass through unchanged",
                pattern=leaf.pattern.notation(),
                rows=leaf.size,
                samples=samples,
            )
        )
    return findings


# ----------------------------------------------------------------------
# Pass 6: multi-artifact conflicts
# ----------------------------------------------------------------------

def check_conflicts(named: Sequence[Tuple[str, CompiledProgram]]) -> List[Finding]:
    """Cross-artifact conflicts when several artifacts apply together.

    CLX013: two artifacts record the same source column — a joint apply
    refuses this outright.  CLX014: one artifact's source column equals
    another's default output column (``<column>_transformed``), so the
    result depends on which artifact ran first.
    """
    findings: List[Finding] = []
    columns: Dict[str, List[str]] = {}
    for name, compiled in named:
        column = compiled.metadata.get("column")
        if isinstance(column, str) and column:
            columns.setdefault(column, []).append(name)
    for column, owners in sorted(columns.items()):
        if len(owners) > 1:
            findings.append(
                finding(
                    "CLX013",
                    owners[0],
                    f"column {column!r} is targeted by {len(owners)} artifacts "
                    f"({', '.join(owners)}); applying them together is rejected",
                    column=column,
                    artifacts=owners,
                )
            )
    for column, owners in sorted(columns.items()):
        produced = f"{column}_transformed"
        consumers = columns.get(produced)
        if consumers:
            findings.append(
                finding(
                    "CLX014",
                    consumers[0],
                    f"artifact reads column {produced!r}, which is the default "
                    f"output column of {owners[0]} (source {column!r}); results "
                    "depend on apply order",
                    column=produced,
                    produced_by=owners,
                )
            )
    return findings


def reachability_only(
    compiled: CompiledProgram, name: str
) -> List[Finding]:
    """The cheap pre-flight used by ``apply``: reachability, no probes."""
    languages = ProgramLanguages(compiled)
    return check_reachability(compiled, languages, name)


def analyze_compiled(
    compiled: CompiledProgram,
    name: str = "<program>",
    probe: bool = True,
    hierarchy: "PatternHierarchy | None" = None,
) -> List[Finding]:
    """Run every single-artifact pass over ``compiled``."""
    languages = ProgramLanguages(compiled)
    findings = check_reachability(compiled, languages, name)
    dead = {
        int(f.location.rsplit("[", 1)[1].rstrip("]")) - 1
        for f in findings
        if f.rule_id in ("CLX001", "CLX002")
    }
    findings.extend(check_overlap(compiled, languages, name, dead_indices=dead))
    findings.extend(check_flow(compiled, name))
    findings.extend(check_regex_safety(compiled, name, probe=probe))
    findings.extend(check_plan_sanity(compiled, languages, name))
    if hierarchy is not None:
        findings.extend(check_coverage(compiled, hierarchy, name))
    return findings
