"""Regex safety analysis: ReDoS-prone structure + bounded-time probes.

``CompiledProgram`` matches every non-pass-through value against one
anchored regex per branch, so a pathological branch regex turns a blind
million-row apply into a hang.  This module walks the compiled regex
*source strings* (a tiny recursive-descent parser covering exactly the
constructs the token renderer and Python's ``re`` share) and flags:

* **nested unbounded quantifiers** — ``(x+)+`` shapes, exponential
  backtracking (rule CLX004);
* **ambiguous unbounded repetition** — an alternation with overlapping
  arms under an unbounded quantifier, or two adjacent unbounded repeats
  whose character sets overlap, e.g. ``([a-z]+)([a-z0-9]+)`` — the
  token-level spelling of the same ambiguity (rule CLX005);

and then *confirms* severity empirically: structurally flagged regexes
are probed with synthesized adversarial inputs (greedy pump + poison
byte) on a short length ladder with a hard per-match time budget, so a
merely-theoretical ambiguity stays a WARN while a regex that actually
exhibits superlinear matching is reported as CLX006 at ERROR severity.
Only flagged regexes are probed — clean regexes cost nothing and the
probe can never hang: the ladder aborts at the first budget overrun.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple, Union

# ----------------------------------------------------------------------
# Tiny regex AST
# ----------------------------------------------------------------------

#: Sentinel charset meaning "any character" (``.``, negated classes, …).
ANY = "ANY"

CharSet = Union[FrozenSet[str], str]  # frozenset of chars, or the ANY sentinel


@dataclass(frozen=True)
class Chars:
    """A single-character matcher (literal, escape class, or ``[...]``)."""

    chars: CharSet


@dataclass(frozen=True)
class Seq:
    items: Tuple["Node", ...]


@dataclass(frozen=True)
class Alt:
    arms: Tuple["Node", ...]


@dataclass(frozen=True)
class Repeat:
    body: "Node"
    minimum: int
    maximum: Optional[int]  # None = unbounded

    @property
    def unbounded(self) -> bool:
        return self.maximum is None


@dataclass(frozen=True)
class Group:
    """Capturing or non-capturing group — transparent for analysis."""

    body: "Node"


@dataclass(frozen=True)
class Look:
    """Zero-width assertion ``(?=…)`` / ``(?!…)`` — off the match path."""

    body: "Node"


@dataclass(frozen=True)
class Empty:
    pass


Node = Union[Chars, Seq, Alt, Repeat, Group, Look, Empty]


class RegexParseError(ValueError):
    """The regex uses a construct the analyzer does not model."""


_ESCAPE_CLASSES = {
    "d": frozenset("0123456789"),
    "w": frozenset(
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_"
    ),
    "s": frozenset(" \t\n\r\f\v"),
}

#: Cap on expanded ``[a-…]`` range size; wider ranges degrade to ANY.
_RANGE_CAP = 512


class _Parser:
    """Recursive-descent parser for the analyzer's regex subset."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.position = 0

    def parse(self) -> Node:
        node = self._alternation()
        if self.position != len(self.source):
            raise RegexParseError(f"trailing input at {self.position}")
        return node

    # -- grammar -------------------------------------------------------
    def _alternation(self) -> Node:
        arms = [self._sequence()]
        while self._peek() == "|":
            self.position += 1
            arms.append(self._sequence())
        if len(arms) == 1:
            return arms[0]
        return Alt(tuple(arms))

    def _sequence(self) -> Node:
        items: List[Node] = []
        while True:
            char = self._peek()
            if char is None or char in "|)":
                break
            items.append(self._quantified())
        if not items:
            return Empty()
        if len(items) == 1:
            return items[0]
        return Seq(tuple(items))

    def _quantified(self) -> Node:
        atom = self._atom()
        char = self._peek()
        if char == "*":
            self.position += 1
            node: Node = Repeat(atom, 0, None)
        elif char == "+":
            self.position += 1
            node = Repeat(atom, 1, None)
        elif char == "?":
            self.position += 1
            node = Repeat(atom, 0, 1)
        elif char == "{":
            node = self._braced(atom)
        else:
            return atom
        if self._peek() == "?":  # lazy variant: same language, same risks
            self.position += 1
        return node

    def _braced(self, atom: Node) -> Node:
        closing = self.source.find("}", self.position)
        if closing < 0:
            raise RegexParseError("unterminated {…} quantifier")
        inner = self.source[self.position + 1 : closing]
        self.position = closing + 1
        if "," not in inner:
            count = int(inner)
            return Repeat(atom, count, count)
        low, _, high = inner.partition(",")
        minimum = int(low) if low else 0
        maximum = int(high) if high else None
        return Repeat(atom, minimum, maximum)

    def _atom(self) -> Node:
        char = self._peek()
        if char is None:
            return Empty()
        if char == "^" or char == "$":
            self.position += 1
            return Empty()  # anchors are zero-width
        if char == ".":
            self.position += 1
            return Chars(ANY)
        if char == "[":
            return self._char_class()
        if char == "(":
            return self._group()
        if char == "\\":
            return self._escape()
        if char in "*+?{":
            raise RegexParseError(f"dangling quantifier at {self.position}")
        self.position += 1
        return Chars(frozenset(char))

    def _group(self) -> Node:
        assert self.source[self.position] == "("
        self.position += 1
        lookahead = False
        if self._peek() == "?":
            self.position += 1
            marker = self._peek()
            if marker == ":":
                self.position += 1
            elif marker in ("=", "!"):
                self.position += 1
                lookahead = True
            elif marker == "P":
                self.position += 1
                if self._peek() != "<":
                    raise RegexParseError("unsupported (?P…) construct")
                closing = self.source.find(">", self.position)
                if closing < 0:
                    raise RegexParseError("unterminated group name")
                self.position = closing + 1
            elif marker == "i":
                self.position += 1
                if self._peek() != ":":
                    raise RegexParseError("unsupported inline flag group")
                self.position += 1
            else:
                raise RegexParseError(f"unsupported group marker {marker!r}")
        body = self._alternation()
        if self._peek() != ")":
            raise RegexParseError("unterminated group")
        self.position += 1
        if lookahead:
            return Look(body)
        return Group(body)

    def _escape(self) -> Node:
        assert self.source[self.position] == "\\"
        self.position += 1
        char = self._peek()
        if char is None:
            raise RegexParseError("dangling backslash")
        self.position += 1
        if char in _ESCAPE_CLASSES:
            return Chars(_ESCAPE_CLASSES[char])
        if char in ("D", "W", "S"):
            return Chars(ANY)  # negated classes: safe over-approximation
        if char in ("b", "B", "A", "Z"):
            return Empty()  # zero-width
        if char == "x":
            code = self.source[self.position : self.position + 2]
            self.position += 2
            return Chars(frozenset(chr(int(code, 16))))
        return Chars(frozenset(char))

    def _char_class(self) -> Node:
        assert self.source[self.position] == "["
        self.position += 1
        negated = False
        if self._peek() == "^":
            negated = True
            self.position += 1
        chars: set = set()
        first = True
        while True:
            char = self._peek()
            if char is None:
                raise RegexParseError("unterminated character class")
            if char == "]" and not first:
                self.position += 1
                break
            first = False
            if char == "\\":
                self.position += 1
                escaped = self._peek()
                if escaped is None:
                    raise RegexParseError("dangling backslash in class")
                self.position += 1
                if escaped in _ESCAPE_CLASSES:
                    chars |= set(_ESCAPE_CLASSES[escaped])
                    continue
                current = escaped
            else:
                self.position += 1
                current = char
            if self._peek() == "-" and self._lookahead(1) not in (None, "]"):
                self.position += 1
                end = self._peek()
                assert end is not None
                self.position += 1
                if end == "\\":
                    end = self._peek()
                    if end is None:
                        raise RegexParseError("dangling backslash in range")
                    self.position += 1
                span = ord(end) - ord(current) + 1
                if span < 0:
                    raise RegexParseError(f"reversed range {current}-{end}")
                if span > _RANGE_CAP:
                    return self._drain_class_as_any()
                chars |= {chr(code) for code in range(ord(current), ord(end) + 1)}
            else:
                chars.add(current)
        if negated:
            return Chars(ANY)
        return Chars(frozenset(chars))

    def _drain_class_as_any(self) -> Node:
        while self._peek() not in (None, "]"):
            if self._peek() == "\\":
                self.position += 1
            self.position += 1
        if self._peek() != "]":
            raise RegexParseError("unterminated character class")
        self.position += 1
        return Chars(ANY)

    # -- low level -----------------------------------------------------
    def _peek(self) -> Optional[str]:
        return self._lookahead(0)

    def _lookahead(self, offset: int) -> Optional[str]:
        index = self.position + offset
        if index >= len(self.source):
            return None
        return self.source[index]


def parse_regex(source: str) -> Node:
    """Parse ``source`` into the analyzer's AST.

    Raises:
        RegexParseError: On constructs outside the modeled subset.
    """
    return _Parser(source).parse()


# ----------------------------------------------------------------------
# Structural analysis
# ----------------------------------------------------------------------

def _charset(node: Node) -> CharSet:
    """Union of all characters the node can consume (ANY-absorbing)."""
    if isinstance(node, Chars):
        return node.chars
    if isinstance(node, (Group,)):
        return _charset(node.body)
    if isinstance(node, Repeat):
        return _charset(node.body)
    if isinstance(node, (Look, Empty)):
        return frozenset()
    if isinstance(node, Seq):
        parts = [_charset(item) for item in node.items]
    elif isinstance(node, Alt):
        parts = [_charset(arm) for arm in node.arms]
    else:  # pragma: no cover - exhaustive over Node
        raise AssertionError(f"unknown node {node!r}")
    if any(part == ANY for part in parts):
        return ANY
    union: FrozenSet[str] = frozenset()
    for part in parts:
        assert isinstance(part, frozenset)
        union |= part
    return union


def _sets_overlap(first: CharSet, second: CharSet) -> bool:
    if first == ANY:
        return second == ANY or bool(second)
    if second == ANY:
        return bool(first)
    assert isinstance(first, frozenset) and isinstance(second, frozenset)
    return bool(first & second)


def _can_match_nonempty(node: Node) -> bool:
    if isinstance(node, Chars):
        return node.chars == ANY or bool(node.chars)
    if isinstance(node, Group):
        return _can_match_nonempty(node.body)
    if isinstance(node, Repeat):
        return (node.maximum is None or node.maximum > 0) and _can_match_nonempty(node.body)
    if isinstance(node, (Look, Empty)):
        return False
    if isinstance(node, Seq):
        return any(_can_match_nonempty(item) for item in node.items)
    if isinstance(node, Alt):
        return any(_can_match_nonempty(arm) for arm in node.arms)
    raise AssertionError(f"unknown node {node!r}")  # pragma: no cover


def _contains_unbounded_repeat(node: Node) -> bool:
    if isinstance(node, Repeat):
        if node.unbounded and _can_match_nonempty(node.body):
            return True
        return _contains_unbounded_repeat(node.body)
    if isinstance(node, Group):
        return _contains_unbounded_repeat(node.body)
    if isinstance(node, Seq):
        return any(_contains_unbounded_repeat(item) for item in node.items)
    if isinstance(node, Alt):
        return any(_contains_unbounded_repeat(arm) for arm in node.arms)
    return False  # Chars, Look, Empty


def _unwrap(node: Node) -> Node:
    while isinstance(node, Group):
        node = node.body
    return node


@dataclass(frozen=True)
class StructuralIssue:
    """One structural ReDoS signal found by :func:`scan_structure`."""

    kind: str  # "nested" or "ambiguous"
    detail: str


def scan_structure(node: Node) -> List[StructuralIssue]:
    """All structural ReDoS signals in the AST, outermost first."""
    issues: List[StructuralIssue] = []
    _scan(node, issues)
    return issues


def _scan(node: Node, issues: List[StructuralIssue]) -> None:
    node = _unwrap(node)
    if isinstance(node, Repeat):
        body = _unwrap(node.body)
        if node.unbounded and _contains_unbounded_repeat(body):
            issues.append(
                StructuralIssue(
                    "nested",
                    "unbounded quantifier over a subexpression that itself "
                    "repeats unboundedly",
                )
            )
        if node.unbounded and isinstance(body, Alt):
            arms = [_charset(arm) for arm in body.arms]
            for index in range(len(arms)):
                for other in range(index + 1, len(arms)):
                    if _sets_overlap(arms[index], arms[other]):
                        issues.append(
                            StructuralIssue(
                                "ambiguous",
                                "alternation with overlapping arms under an "
                                "unbounded quantifier",
                            )
                        )
                        break
                else:
                    continue
                break
        _scan(node.body, issues)
        return
    if isinstance(node, Seq):
        flat = [_unwrap(item) for item in node.items]
        consuming = [item for item in flat if not isinstance(item, (Look, Empty))]
        for left, right in zip(consuming, consuming[1:]):
            if (
                isinstance(left, Repeat)
                and left.unbounded
                and isinstance(right, Repeat)
                and right.unbounded
                and _sets_overlap(_charset(left.body), _charset(right.body))
            ):
                issues.append(
                    StructuralIssue(
                        "ambiguous",
                        "adjacent unbounded repetitions over overlapping "
                        "character sets",
                    )
                )
        for item in node.items:
            _scan(item, issues)
        return
    if isinstance(node, Alt):
        for arm in node.arms:
            _scan(arm, issues)
        return
    if isinstance(node, Look):
        _scan(node.body, issues)
        return
    # Chars / Empty: nothing below


# ----------------------------------------------------------------------
# Empirical probe
# ----------------------------------------------------------------------

#: A byte no token regex matches, appended so the pump *almost* matches
#: and the engine backtracks through every ambiguous split.
_POISON = "\x00"

#: Longest adversarial input tried.
_PROBE_MAX_LENGTH = 256

#: Ladder step in characters.  Kept small on purpose: for a regex whose
#: matching time grows by a factor ``g`` per character, the first
#: over-budget match overshoots the budget by at most ``g**4`` (~16x for
#: the classic doubling case), so a single probe can never hang.
_PROBE_STEP = 4

#: One match slower than this (seconds) on a <=256-char input is ~1000x
#: a healthy regex and flags CLX006.
PROBE_BUDGET_SECONDS = 0.05

#: Total time the whole ladder may consume before giving up.
_PROBE_TOTAL_SECONDS = 0.5


def _pump(node: Node, length: int) -> str:
    """A greedy adversarial input of at most ``length`` characters.

    Nested unbounded repeats multiply the share, so the generated string
    is truncated to ``length``; the pump text is uniform within each
    repeat region, so a prefix stays adversarial.
    """
    unbounded = _count_unbounded(node)
    share = max(2, length // max(1, unbounded))
    return "".join(_pump_node(node, share))[:length]


def _count_unbounded(node: Node) -> int:
    node = _unwrap(node)
    if isinstance(node, Repeat):
        return (1 if node.unbounded else 0) + _count_unbounded(node.body)
    if isinstance(node, Seq):
        return sum(_count_unbounded(item) for item in node.items)
    if isinstance(node, Alt):
        return max((_count_unbounded(arm) for arm in node.arms), default=0)
    return 0


def _pump_node(node: Node, share: int) -> List[str]:
    node = _unwrap(node)
    if isinstance(node, Chars):
        if node.chars == ANY:
            return ["a"]
        if not node.chars:
            return []
        return [min(node.chars)]
    if isinstance(node, Repeat):
        body = _pump_node(node.body, share)
        if not body:
            return []
        count = share if node.unbounded else node.minimum
        return body * max(count, node.minimum, 1)
    if isinstance(node, Seq):
        pieces: List[str] = []
        for item in node.items:
            pieces.extend(_pump_node(item, share))
        return pieces
    if isinstance(node, Alt):
        if not node.arms:
            return []
        return _pump_node(node.arms[0], share)
    return []  # Look, Empty


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of the bounded-time adversarial probe."""

    slow: bool
    input_length: int
    seconds: float


def probe(regex_source: str, node: Node) -> Optional[ProbeResult]:
    """Time the regex against pumped adversarial inputs, bounded.

    Returns the first budget-exceeding measurement, the final (fast)
    measurement when the regex stays healthy through the ladder, or
    ``None`` when no adversarial input could be synthesized.
    """
    try:
        compiled = re.compile(regex_source)
    except re.error:
        return None
    full = _pump(node, _PROBE_MAX_LENGTH)
    if not full:
        return None
    lengths = list(range(min(8, len(full)), len(full) + 1, _PROBE_STEP))
    if not lengths:
        lengths = [len(full)]
    last: Optional[ProbeResult] = None
    started = time.perf_counter()
    for length in lengths:
        adversarial = full[:length] + _POISON
        begin = time.perf_counter()
        compiled.match(adversarial)
        elapsed = time.perf_counter() - begin
        last = ProbeResult(
            slow=elapsed > PROBE_BUDGET_SECONDS,
            input_length=len(adversarial),
            seconds=elapsed,
        )
        if last.slow:
            return last
        if time.perf_counter() - started > _PROBE_TOTAL_SECONDS:
            break
    return last


def analyze_regex(regex_source: str) -> Tuple[List[StructuralIssue], Optional[ProbeResult]]:
    """Structural scan + (for flagged regexes only) the empirical probe.

    Unparseable regexes — constructs outside the modeled subset — yield
    no findings: the linter's regex pass is best-effort by design.
    """
    try:
        node = parse_regex(regex_source)
    except (RegexParseError, ValueError):
        return [], None
    issues = scan_structure(node)
    if not issues:
        return [], None
    return issues, probe(regex_source, node)
