"""Static analysis of compiled CLX transform programs (the artifact linter).

The analyzer audits a :class:`~repro.engine.compiled.CompiledProgram`
*before* it is applied blindly to millions of rows: dead dispatch arms,
order-dependent overlaps, ReDoS-prone regexes, degenerate plans and
guards, coverage residuals against a profile, cross-artifact conflicts,
and — via the output-language flow analysis — target conformance
(``verified`` proofs), idempotence, and static pipeline composition.
Surfaced as ``repro-clx check`` / ``repro-clx verify`` and run
automatically by ``compile`` (``--strict`` turns warnings into failures
and refuses unverifiable artifacts).
"""

from repro.analysis.analyzer import (
    AnalysisReport,
    analyze_artifacts,
    analyze_program,
    verify_artifacts,
    verify_program,
)
from repro.analysis.findings import (
    RULES,
    RULES_BY_ID,
    RULESET_VERSION,
    Finding,
    Rule,
    Severity,
    finding,
)
from repro.analysis.flow import (
    branch_output_pattern,
    check_composition,
    check_flow,
    is_verified,
)
from repro.analysis.passes import check_conflicts, reachability_only
from repro.analysis.report import (
    REPORT_FORMAT,
    REPORT_VERSION,
    render_json,
    render_text,
    render_verify_json,
    render_verify_text,
    report_payload,
    verify_payload,
)

__all__ = [
    "AnalysisReport",
    "Finding",
    "REPORT_FORMAT",
    "REPORT_VERSION",
    "RULES",
    "RULES_BY_ID",
    "RULESET_VERSION",
    "Rule",
    "Severity",
    "analyze_artifacts",
    "analyze_program",
    "branch_output_pattern",
    "check_composition",
    "check_conflicts",
    "check_flow",
    "finding",
    "is_verified",
    "reachability_only",
    "render_json",
    "render_text",
    "render_verify_json",
    "render_verify_text",
    "report_payload",
    "verify_artifacts",
    "verify_payload",
    "verify_program",
]
