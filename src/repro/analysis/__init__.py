"""Static analysis of compiled CLX transform programs (the artifact linter).

The analyzer audits a :class:`~repro.engine.compiled.CompiledProgram`
*before* it is applied blindly to millions of rows: dead dispatch arms,
order-dependent overlaps, ReDoS-prone regexes, degenerate plans and
guards, coverage residuals against a profile, and cross-artifact
conflicts.  Surfaced as ``repro-clx check`` and run automatically by
``compile`` (``--strict`` turns warnings into failures).
"""

from repro.analysis.analyzer import AnalysisReport, analyze_artifacts, analyze_program
from repro.analysis.findings import RULES, RULES_BY_ID, Finding, Rule, Severity, finding
from repro.analysis.passes import check_conflicts, reachability_only
from repro.analysis.report import (
    REPORT_FORMAT,
    REPORT_VERSION,
    render_json,
    render_text,
    report_payload,
)

__all__ = [
    "AnalysisReport",
    "Finding",
    "REPORT_FORMAT",
    "REPORT_VERSION",
    "RULES",
    "RULES_BY_ID",
    "Rule",
    "Severity",
    "analyze_artifacts",
    "analyze_program",
    "check_conflicts",
    "finding",
    "reachability_only",
    "render_json",
    "render_text",
    "report_payload",
]
