"""Text and JSON reporters for analysis reports.

Both render from the same :class:`~repro.analysis.analyzer.AnalysisReport`
so the two formats can never disagree; the JSON payload carries a format
marker + version like every other serialized CLX artifact.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional

from repro.analysis.analyzer import AnalysisReport
from repro.analysis.findings import Severity

#: Format marker embedded in every JSON report.
REPORT_FORMAT = "clx/analysis-report"
REPORT_VERSION = 1


def render_text(report: AnalysisReport, show: Optional[Severity] = None) -> str:
    """Human-readable report: one line per finding plus a summary line.

    ``show`` hides findings below the given severity (the summary line
    still counts everything, so nothing is silently lost).
    """
    shown = report.findings if show is None else report.at_least(show)
    lines = [item.render() for item in shown]
    summary = report.summary()
    if not report.findings:
        lines.append("OK: no findings")
    else:
        counts = ", ".join(
            f"{summary[severity.label]} {severity.label}"
            for severity in sorted(Severity, reverse=True)
            if summary[severity.label]
        )
        hidden = len(report.findings) - len(shown)
        suffix = f" ({hidden} below threshold not shown)" if hidden else ""
        lines.append(f"{len(report.findings)} finding(s): {counts}{suffix}")
    return "\n".join(lines)


def report_payload(report: AnalysisReport) -> Dict[str, Any]:
    """The JSON-serializable payload of the ``--json`` reporter."""
    return {
        "format": REPORT_FORMAT,
        "version": REPORT_VERSION,
        "summary": report.summary(),
        "findings": [item.to_dict() for item in report.findings],
    }


def render_json(report: AnalysisReport) -> str:
    """The ``--json`` reporter output (stable key order, 2-space indent)."""
    return json.dumps(report_payload(report), indent=2, sort_keys=True)


def render_verify_text(
    report: AnalysisReport,
    verified: Mapping[str, bool],
    show: Optional[Severity] = None,
) -> str:
    """``verify`` text report: one verdict line per artifact, then findings.

    Verdicts render as ``verified <name>`` / ``UNVERIFIED <name>`` (the
    upper case makes failures stand out in a scan), in the order the
    artifacts were given.
    """
    lines = [
        f"{'verified' if ok else 'UNVERIFIED'} {name}" for name, ok in verified.items()
    ]
    lines.append(render_text(report, show=show))
    return "\n".join(lines)


def verify_payload(report: AnalysisReport, verified: Mapping[str, bool]) -> Dict[str, Any]:
    """The ``verify --json`` payload: the report payload + verdict map."""
    payload = report_payload(report)
    payload["verified"] = dict(verified)
    return payload


def render_verify_json(report: AnalysisReport, verified: Mapping[str, bool]) -> str:
    """The ``verify --json`` reporter output."""
    return json.dumps(verify_payload(report, verified), indent=2, sort_keys=True)
