"""Output-language flow analysis: what a compiled program *produces*.

The passes in :mod:`repro.analysis.passes` reason about the **input**
side of each branch (which values reach it).  This module adds the
output side: a symbolic interpreter lifts each branch's
:class:`~repro.dsl.ast.AtomicPlan` into an output *pattern* — and hence,
via :mod:`repro.analysis.lang`, into an output-language ChainNFA:

* ``ConstStr(s)`` contributes the literal token ``'s'``;
* ``Extract(i, j)`` contributes source tokens ``i..j`` of the branch
  pattern verbatim — the extracted text ranges exactly over the language
  of those tokens.

The concatenation of these contributions is a plain
:class:`~repro.patterns.pattern.Pattern`, so every decidable query of
the input-side machinery applies unchanged to outputs.  Three verdict
families build on it:

**Target conformance (CLX015/CLX016).**  ``L(output_j) ⊆ L(target)``
for every reachable branch is the paper's headline guarantee: the
transform provably emits only target-shaped values.  For *unguarded*
branches the computed output language is exact, so a violation is an
ERROR with a shortest counterexample output.  For *guarded* branches the
plan only sees values the guard admits, so the computed language is an
over-approximation; an escape there is reported as "conformance
undecided" (WARN), never as a false proof.  Identity-plan branches are
exempt: they re-emit their input verbatim, so — exactly like an
unmatched value passing through — they cannot *corrupt* anything; their
coverage gap is CLX007/CLX012's story.  An artifact is **verified** iff
no live branch raises either finding: apply provably never emits a
malformed value it didn't already receive.

**Idempotence / fixpoint safety (CLX017/CLX018).**  A conforming branch
is automatically idempotent: its outputs hit the target pass-through on
a second apply.  A *non*-conforming output that re-enters some branch's
dispatch language (outside the target) with a non-identity plan means
``apply ∘ apply ≠ apply`` — re-runs and streaming tails double-transform.

**Pipeline composition (CLX019–CLX021).**  When several artifacts apply
together and artifact C reads the default output column of artifact P
(``<col>_transformed``), the statically known components P can emit —
its target language (pass-through) and every live branch's output
language — are checked against what C accepts, so a mis-ordered chain
fails in the pre-flight instead of corrupting data.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding, finding
from repro.analysis.lang import (
    ChainNFA,
    atom_alphabet,
    difference_witness,
    guard_satisfiable,
    overlap_witness,
    pattern_nfa,
    sample_string,
    subsumed_by_union,
)
from repro.dsl.ast import AtomicPlan, Branch, ConstStr, Extract
from repro.dsl.guards import ContainsGuard
from repro.engine.compiled import CompiledProgram
from repro.patterns.pattern import Pattern
from repro.tokens.token import Token

VERIFY_RULES: Tuple[str, ...] = ("CLX015", "CLX016")


def plan_is_identity(branch: Branch) -> bool:
    """Whether the plan reproduces every match verbatim (extracts 1..n)."""
    cursor = 1
    for expression in branch.plan.expressions:
        if not isinstance(expression, Extract):
            return False
        if expression.start != cursor:
            return False
        cursor = expression.end + 1
    return cursor == len(branch.pattern) + 1


def branch_output_pattern(branch: Branch) -> Pattern:
    """The symbolic output of ``branch``'s plan, as a pattern.

    Exact for unguarded branches: the plan's output over all matches of
    the branch pattern is precisely the language of this pattern.  For
    guarded branches it over-approximates (the guard restricts which
    matches the plan ever sees).
    """
    tokens: List[Token] = []
    for expression in branch.plan.expressions:
        if isinstance(expression, ConstStr):
            tokens.append(Token.lit(expression.text))
        else:
            tokens.extend(branch.pattern.tokens[expression.start - 1 : expression.end])
    return Pattern(tokens)


def plan_conforms(pattern: Pattern, plan: AtomicPlan, target: Pattern) -> bool:
    """Whether ``plan``'s symbolic output over ``pattern`` provably lies
    inside ``target`` — the per-branch verified condition, ignoring guards.

    Used by the synthesizer to prefer provably conforming candidate plans
    (and hierarchy refinements) so that compiled artifacts earn the
    ``verified`` proof whenever the data admits one.
    """
    output = branch_output_pattern(Branch(pattern=pattern, plan=plan))
    atoms = atom_alphabet([output, target])
    return subsumed_by_union(
        pattern_nfa(output, atoms), [pattern_nfa(target, atoms)], atoms
    )


def _branch_location(name: str, index: int) -> str:
    return f"{name}:branch[{index + 1}]"


def _guard_keywords(branches: Iterable[Branch]) -> List[str]:
    keywords: List[str] = []
    for branch in branches:
        guard = branch.guard
        if isinstance(guard, ContainsGuard):
            keywords.extend((guard.keyword, guard.keyword.lower(), guard.keyword.upper()))
    return keywords


def _live_indices(
    compiled: CompiledProgram,
    nfas: Sequence[ChainNFA],
    target_nfa: ChainNFA,
    atoms: Sequence[str],
) -> List[int]:
    """Branches that can fire under first-match dispatch.

    Mirrors ``check_reachability`` (subsumption by the target plus
    earlier unguarded branches) and additionally drops branches whose
    guard is unsatisfiable on their pattern — both kinds are reported by
    their own rules; the flow verdicts only speak about live arms.
    """
    live: List[int] = []
    earlier_unguarded: List[ChainNFA] = []
    for index, branch in enumerate(compiled.program.branches):
        machine = nfas[index]
        dead = subsumed_by_union(machine, [target_nfa, *earlier_unguarded], atoms)
        guard = branch.guard
        if not dead and isinstance(guard, ContainsGuard):
            dead = not guard_satisfiable(machine, guard.keyword, atoms, guard.case_sensitive)
        if not dead:
            live.append(index)
        if branch.guard is None:
            earlier_unguarded.append(machine)
    return live


class FlowAnalysis:
    """Shared machinery for one program's output-language verdicts.

    Builds a single atom alphabet distinguishing the target, every
    branch pattern, every symbolic output pattern, and every guard
    keyword, so all queries below run over one consistent quotient.
    """

    def __init__(self, compiled: CompiledProgram) -> None:
        self.compiled = compiled
        branches = compiled.program.branches
        self.outputs: Tuple[Pattern, ...] = tuple(
            branch_output_pattern(branch) for branch in branches
        )
        patterns = [compiled.target, *(branch.pattern for branch in branches), *self.outputs]
        self.atoms = atom_alphabet(patterns, extra_text=_guard_keywords(branches))
        self.target_nfa = pattern_nfa(compiled.target, self.atoms)
        self.branch_nfas: Tuple[ChainNFA, ...] = tuple(
            pattern_nfa(branch.pattern, self.atoms) for branch in branches
        )
        self.output_nfas: Tuple[ChainNFA, ...] = tuple(
            pattern_nfa(output, self.atoms) for output in self.outputs
        )
        self.live: List[int] = _live_indices(
            compiled, self.branch_nfas, self.target_nfa, self.atoms
        )

    def conformance_witness(self, index: int) -> Optional[str]:
        """Shortest output of branch ``index`` outside the target language."""
        return difference_witness(self.output_nfas[index], [self.target_nfa], self.atoms)

    def reentry(self, index: int) -> Optional[Tuple[int, str]]:
        """First live branch whose dispatch captures branch ``index``'s output.

        Only captures *outside* the target language count — a conforming
        output hits the pass-through before any branch is consulted.
        Branches with identity plans are skipped (re-matching them
        rewrites nothing).  Returns ``(capturing_index, witness)``.
        """
        branches = self.compiled.program.branches
        for other in self.live:
            if plan_is_identity(branches[other]):
                continue
            witness = overlap_witness(
                self.output_nfas[index],
                self.branch_nfas[other],
                self.atoms,
                excluding=[self.target_nfa],
            )
            if witness is not None:
                return other, witness
        return None


def check_flow(compiled: CompiledProgram, name: str) -> List[Finding]:
    """Per-artifact flow verdicts: CLX015–CLX018."""
    analysis = FlowAnalysis(compiled)
    branches = compiled.program.branches
    target = compiled.target.notation()
    findings: List[Finding] = []
    for index in analysis.live:
        branch = branches[index]
        if plan_is_identity(branch):
            continue  # re-emits its input verbatim; cannot corrupt
        location = _branch_location(name, index)
        output = analysis.outputs[index]
        witness = analysis.conformance_witness(index)
        if witness is None:
            continue  # conforming, hence also idempotent
        if branch.guard is None:
            findings.append(
                finding(
                    "CLX015",
                    location,
                    f"plan output {output.notation() or '(empty)'} escapes the target "
                    f"{target}: e.g. input {sample_string(branch.pattern)!r} can "
                    f"produce {witness!r}",
                    output=output.notation(),
                    target=target,
                    witness=witness,
                )
            )
        else:
            findings.append(
                finding(
                    "CLX016",
                    location,
                    f"guarded branch output {output.notation() or '(empty)'} is not "
                    f"provably inside the target {target} (e.g. {witness!r}); "
                    "conformance is undecided",
                    output=output.notation(),
                    target=target,
                    witness=witness,
                )
            )
        reentry = analysis.reentry(index)
        if reentry is not None:
            other, captured = reentry
            if other == index:
                findings.append(
                    finding(
                        "CLX018",
                        location,
                        f"output {captured!r} re-enters this branch's own dispatch "
                        f"({branch.pattern.notation()}); repeated applies keep "
                        "rewriting the value",
                        witness=captured,
                    )
                )
            else:
                findings.append(
                    finding(
                        "CLX017",
                        location,
                        f"output {captured!r} re-enters branch {other + 1} "
                        f"({branches[other].pattern.notation()}); applying the "
                        "artifact twice transforms it twice",
                        reenters_branch=other + 1,
                        witness=captured,
                    )
                )
    return findings


def is_verified(findings: Iterable[Finding]) -> bool:
    """The per-artifact ``verified`` proof: no conformance finding.

    True iff no live branch raised CLX015 (output provably escapes the
    target) or CLX016 (guarded, conformance undecided) — i.e. applying
    the artifact provably never emits a malformed value it didn't
    already receive (identity branches and pass-through re-emit inputs
    verbatim; every transforming branch emits only target-shaped
    values).
    """
    return not any(f.rule_id in VERIFY_RULES for f in findings)


# ----------------------------------------------------------------------
# Pipeline composition (multi-artifact)
# ----------------------------------------------------------------------

def check_composition(named: Sequence[Tuple[str, CompiledProgram]]) -> List[Finding]:
    """Static producer→consumer checks for chained artifacts: CLX019–CLX021.

    An artifact C whose source column is ``<col>_transformed`` consumes
    the default output column of the artifact P with source column
    ``<col>``.  The statically known components P emits — its target
    language (pass-through) plus each live branch's output language —
    are checked against C's dispatch.
    """
    findings: List[Finding] = []
    producers: Dict[str, Tuple[str, CompiledProgram]] = {}
    for name, compiled in named:
        column = compiled.metadata.get("column")
        if isinstance(column, str) and column:
            producers.setdefault(f"{column}_transformed", (name, compiled))
    for name, compiled in named:
        column = compiled.metadata.get("column")
        if not (isinstance(column, str) and column):
            continue
        producer = producers.get(column)
        if producer is None or producer[0] == name:
            continue
        findings.extend(_check_chain(producer[0], producer[1], name, compiled))
    return findings


def _check_chain(
    producer_name: str,
    producer: CompiledProgram,
    consumer_name: str,
    consumer: CompiledProgram,
) -> List[Finding]:
    producer_flow = FlowAnalysis(producer)
    consumer_branches = consumer.program.branches

    # One joint alphabet so producer outputs and consumer dispatch share
    # a quotient.
    patterns = [
        producer.target,
        *(branch.pattern for branch in producer.program.branches),
        *producer_flow.outputs,
        consumer.target,
        *(branch.pattern for branch in consumer_branches),
    ]
    keywords = _guard_keywords(producer.program.branches) + _guard_keywords(consumer_branches)
    atoms = atom_alphabet(patterns, extra_text=keywords)

    producer_target_nfa = pattern_nfa(producer.target, atoms)
    producer_branch_nfas = [pattern_nfa(b.pattern, atoms) for b in producer.program.branches]
    producer_live = _live_indices(producer, producer_branch_nfas, producer_target_nfa, atoms)

    consumer_target_nfa = pattern_nfa(consumer.target, atoms)
    consumer_branch_nfas = [pattern_nfa(b.pattern, atoms) for b in consumer_branches]
    consumer_live = _live_indices(consumer, consumer_branch_nfas, consumer_target_nfa, atoms)

    # What P provably emits: pass-through (target) + live branch outputs.
    components: List[Tuple[str, ChainNFA, Pattern]] = [
        ("target pass-through", producer_target_nfa, producer.target)
    ]
    for index in producer_live:
        output = producer_flow.outputs[index]
        components.append(
            (f"branch {index + 1} output", pattern_nfa(output, atoms), output)
        )

    # What C can match at all (guarded arms included: over-approximation
    # keeps "never accepts" sound) vs. what it *surely* matches
    # (unguarded arms only).
    accepts_any = [consumer_target_nfa] + [consumer_branch_nfas[i] for i in consumer_live]
    accepts_surely = [consumer_target_nfa] + [
        consumer_branch_nfas[i]
        for i in consumer_live
        if consumer_branches[i].guard is None
    ]

    findings: List[Finding] = []
    feeds = any(
        any(overlap_witness(machine, accepted, atoms) is not None for accepted in accepts_any)
        for _, machine, _ in components
    )
    if not feeds:
        example = sample_string(components[0][2])
        findings.append(
            finding(
                "CLX019",
                consumer_name,
                f"chained artifact (reads {consumer.metadata.get('column')!r}) can "
                f"never match anything {producer_name} emits — e.g. {example!r} "
                "hits no branch and no pass-through; the chain is mis-ordered "
                "or mismatched",
                producer=producer_name,
                example=example,
            )
        )
        return findings  # leak/re-transform verdicts are vacuous here

    for label, machine, pattern in components:
        witness = difference_witness(machine, accepts_surely, atoms)
        if witness is not None:
            findings.append(
                finding(
                    "CLX020",
                    consumer_name,
                    f"{producer_name} {label} ({pattern.notation() or '(empty)'}) is "
                    f"not fully consumed: e.g. {witness!r} passes through "
                    "unmatched",
                    producer=producer_name,
                    component=pattern.notation(),
                    witness=witness,
                )
            )
            break  # one leak report per chain is enough

    for index in consumer_live:
        branch = consumer_branches[index]
        if plan_is_identity(branch):
            continue
        witness = overlap_witness(
            producer_target_nfa,
            consumer_branch_nfas[index],
            atoms,
            excluding=[consumer_target_nfa],
        )
        if witness is not None:
            findings.append(
                finding(
                    "CLX021",
                    _branch_location(consumer_name, index),
                    f"branch rewrites values already conforming to {producer_name}'s "
                    f"target ({producer.target.notation()}): e.g. {witness!r} is "
                    "transformed again",
                    producer=producer_name,
                    witness=witness,
                )
            )
            break  # one re-transform report per chain is enough
    return findings
