"""Top-level analyzer entry points and the report container.

:func:`analyze_program` runs every single-artifact pass over one
compiled program; :func:`analyze_artifacts` additionally runs the
cross-artifact conflict pass over a batch.  Both return an
:class:`AnalysisReport`, which owns deterministic ordering, severity
summaries, and the ``--fail-on`` exit-code contract.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.flow import check_composition, check_flow, is_verified
from repro.analysis.passes import analyze_compiled, check_conflicts
from repro.clustering.hierarchy import PatternHierarchy
from repro.engine.compiled import CompiledProgram


def _location_key(location: str) -> Tuple[str, int]:
    """Sort key putting artifact-level findings before branch findings,
    and branches in numeric (not lexicographic) order."""
    head, separator, tail = location.partition(":branch[")
    if not separator:
        return (head, -1)
    try:
        return (head, int(tail.rstrip("]")))
    except ValueError:  # pragma: no cover - defensive, locations are ours
        return (head, -1)


class AnalysisReport:
    """An ordered, summarizable collection of findings."""

    def __init__(self, findings: Sequence[Finding]) -> None:
        self.findings: List[Finding] = sorted(
            findings, key=lambda f: (_location_key(f.location), f.rule_id)
        )

    def __len__(self) -> int:
        return len(self.findings)

    def __bool__(self) -> bool:
        return bool(self.findings)

    def summary(self) -> Dict[str, int]:
        """Counts per severity label, e.g. ``{"error": 1, "warn": 0, "info": 2}``."""
        counts = {severity.label: 0 for severity in Severity}
        for item in self.findings:
            counts[item.severity.label] += 1
        return counts

    def max_severity(self) -> Optional[Severity]:
        """The most severe finding's severity, or None when clean."""
        if not self.findings:
            return None
        return max(item.severity for item in self.findings)

    def at_least(self, threshold: Severity) -> List[Finding]:
        """All findings at or above ``threshold``."""
        return [item for item in self.findings if item.severity >= threshold]

    def exit_code(self, fail_on: Severity) -> int:
        """The ``check`` exit code: 1 when any finding reaches ``fail_on``."""
        return 1 if self.at_least(fail_on) else 0


def analyze_program(
    compiled: CompiledProgram,
    name: str = "<program>",
    probe: bool = True,
    hierarchy: Optional[PatternHierarchy] = None,
) -> AnalysisReport:
    """Analyze one compiled program (all single-artifact passes)."""
    return AnalysisReport(
        analyze_compiled(compiled, name=name, probe=probe, hierarchy=hierarchy)
    )


def analyze_artifacts(
    named: Sequence[Tuple[str, CompiledProgram]],
    probe: bool = True,
    hierarchies: Optional[Dict[str, PatternHierarchy]] = None,
) -> AnalysisReport:
    """Analyze a batch of artifacts, including cross-artifact conflicts.

    ``hierarchies`` optionally maps artifact names to profiled
    hierarchies for the coverage audit (CLX012).
    """
    findings: List[Finding] = []
    for name, compiled in named:
        hierarchy = hierarchies.get(name) if hierarchies else None
        findings.extend(
            analyze_compiled(compiled, name=name, probe=probe, hierarchy=hierarchy)
        )
    if len(named) > 1:
        findings.extend(check_conflicts(named))
        findings.extend(check_composition(named))
    return AnalysisReport(findings)


def verify_program(
    compiled: CompiledProgram, name: str = "<program>"
) -> Tuple[AnalysisReport, bool]:
    """Run only the output-language flow verdicts over one program.

    Returns the flow report (CLX015–CLX018) and the ``verified`` proof
    bit: True iff every live branch provably emits only target-shaped
    values (see :func:`repro.analysis.flow.is_verified`).
    """
    findings = check_flow(compiled, name)
    return AnalysisReport(findings), is_verified(findings)


def verify_artifacts(
    named: Sequence[Tuple[str, CompiledProgram]],
) -> Tuple[AnalysisReport, Dict[str, bool]]:
    """Flow + composition verdicts for a batch of artifacts.

    Returns one combined report (CLX015–CLX021) and the per-artifact
    ``verified`` map.  Composition findings (pipeline checks between
    chained artifacts) never affect the per-artifact proof — they
    describe the chain, not a single transform.
    """
    findings: List[Finding] = []
    verified: Dict[str, bool] = {}
    for name, compiled in named:
        flow_findings = check_flow(compiled, name)
        verified[name] = is_verified(flow_findings)
        findings.extend(flow_findings)
    if len(named) > 1:
        findings.extend(check_composition(named))
    return AnalysisReport(findings), verified
