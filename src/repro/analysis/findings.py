"""Finding and rule vocabulary of the artifact linter.

Every analysis pass reports :class:`Finding` objects carrying a stable
rule id (``CLX001``…), a severity, a location string (artifact name plus
an optional ``branch[i]`` anchor), a human message, and a
machine-readable ``data`` mapping.  The rule table below is the single
source of truth for ids, default severities, and one-line descriptions —
the README's rule table and the ``--json`` reporter both render from it,
so ids can never drift between code and docs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.util.errors import CLXError


class Severity(enum.IntEnum):
    """Finding severity, ordered so comparisons mean "at least as severe"."""

    INFO = 10
    WARN = 20
    ERROR = 30

    @property
    def label(self) -> str:
        """Lower-case name used in reports and CLI flags."""
        return self.name.lower()

    @classmethod
    def parse(cls, name: str) -> "Severity":
        """Parse a severity name (case-insensitive; accepts ``warning``).

        Raises:
            CLXError: On a name that is not a severity.
        """
        normalized = name.strip().lower()
        if normalized == "warning":
            normalized = "warn"
        for severity in cls:
            if severity.label == normalized:
                return severity
        known = ", ".join(severity.label for severity in cls)
        raise CLXError(f"unknown severity {name!r} (expected one of: {known})")


@dataclass(frozen=True)
class Rule:
    """One linter rule: stable id, default severity, one-line description."""

    rule_id: str
    severity: Severity
    title: str


#: The rule table.  Ids are append-only and never renumbered.
RULES: Tuple[Rule, ...] = (
    Rule("CLX001", Severity.ERROR, "dead branch: pattern subsumed by the target pass-through"),
    Rule("CLX002", Severity.ERROR, "dead branch: pattern shadowed by earlier unguarded branches"),
    Rule("CLX003", Severity.WARN, "overlapping unguarded branches make the output order-dependent"),
    Rule("CLX004", Severity.ERROR, "ReDoS-prone regex: nested unbounded quantifiers"),
    Rule("CLX005", Severity.WARN, "ReDoS-prone regex: ambiguous unbounded repetition (overlapping "
                                  "alternation or adjacent overlapping '+' tokens)"),
    Rule("CLX006", Severity.ERROR, "pathological matching time observed on an adversarial probe input"),
    Rule("CLX007", Severity.INFO, "identity plan: the branch rewrites every match to itself"),
    Rule("CLX008", Severity.WARN, "constant-only plan: every match produces the same output"),
    Rule("CLX009", Severity.INFO, "unused source tokens: data tokens never extracted by the plan"),
    Rule("CLX010", Severity.ERROR, "dead branch: guard can never hold on the branch pattern"),
    Rule("CLX011", Severity.INFO, "redundant guard: guard holds for every match of the pattern"),
    Rule("CLX012", Severity.WARN, "coverage residual: profiled cluster that no branch matches"),
    Rule("CLX013", Severity.ERROR, "multi-artifact conflict: one source column targeted by several "
                                   "artifacts"),
    Rule("CLX014", Severity.WARN, "artifact chain: a source column collides with another artifact's "
                                  "output column"),
    Rule("CLX015", Severity.ERROR, "output nonconformance: a reachable branch can produce output "
                                   "outside the target language"),
    Rule("CLX016", Severity.WARN, "unverified branch: guarded branch whose over-approximated output "
                                  "language escapes the target (conformance undecided)"),
    Rule("CLX017", Severity.WARN, "non-idempotent: branch output re-enters another branch's dispatch "
                                  "with a non-identity plan (apply twice ≠ apply once)"),
    Rule("CLX018", Severity.WARN, "divergent fixpoint: branch output re-enters its own dispatch with "
                                  "a non-identity plan (repeated apply keeps rewriting)"),
    Rule("CLX019", Severity.ERROR, "broken pipeline: a chained artifact can never accept anything "
                                   "its producer emits"),
    Rule("CLX020", Severity.WARN, "leaky pipeline: some producer outputs pass through the chained "
                                  "artifact unmatched"),
    Rule("CLX021", Severity.WARN, "pipeline re-transform: a chained artifact rewrites values already "
                                  "conforming to its producer's target"),
)

RULES_BY_ID: Dict[str, Rule] = {rule.rule_id: rule for rule in RULES}

#: Version of the rule table above.  Bumped whenever rules are added or a
#: verdict's meaning changes; stamped into ``RegistryEntry.analysis`` so
#: ``artifacts list`` can flag summaries produced by an older analyzer as
#: ``stale`` instead of presenting them as current verdicts.
RULESET_VERSION = 2


@dataclass(frozen=True)
class Finding:
    """One analysis finding.

    Attributes:
        rule_id: Stable rule id from :data:`RULES` (``CLX001``…).
        severity: The finding's severity (defaults per rule).
        location: Where the finding anchors, e.g.
            ``phone.clx.json:branch[2]`` (branch indices are 1-based,
            matching how programs are explained to the user).
        message: Human-readable one-line description.
        data: Machine-readable details, JSON-serializable.
    """

    rule_id: str
    severity: Severity
    location: str
    message: str
    data: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form used by the ``--json`` reporter."""
        return {
            "rule": self.rule_id,
            "severity": self.severity.label,
            "location": self.location,
            "message": self.message,
            "data": dict(self.data),
        }

    def render(self) -> str:
        """One text-report line: ``ERROR CLX002 loc: message``."""
        return f"{self.severity.name:<5} {self.rule_id} {self.location}: {self.message}"


def finding(rule_id: str, location: str, message: str, **data: Any) -> Finding:
    """Build a :class:`Finding` with the rule's default severity.

    Raises:
        CLXError: On an unknown rule id (a bug in the calling pass).
    """
    rule = RULES_BY_ID.get(rule_id)
    if rule is None:
        raise CLXError(f"unknown analysis rule id {rule_id!r}")
    return Finding(
        rule_id=rule_id,
        severity=rule.severity,
        location=location,
        message=message,
        data=data,
    )
