"""The UniFi synthesizer — Algorithm 2 of the paper.

Given the pattern cluster hierarchy and the user-selected target pattern,
the synthesizer traverses the hierarchy top-down.  A node is

* **skipped** when its pattern is the target pattern (or is subsumed by
  it) — its data are already in the desired form;
* **solved** when it passes source-candidate validation *and* token
  alignment finds at least one plan — the node's whole subtree is covered
  by a single branch, which is what keeps programs small;
* **expanded** otherwise — its children are pushed for consideration;
  leaves that can never be solved are reported as *uncovered* (the data
  they describe is left unchanged and flagged, per Section 6.1).

Synthesis is additionally **verification-guided**: candidate plans whose
symbolic output language provably lies inside the target (see
:func:`repro.analysis.flow.plan_conforms`) are preferred over equally
ranked plans that don't, and a node whose best plan is *not* provably
conforming is first **narrowed** — ``+`` tokens tighten to the fixed
quantifier every leaf descendant agrees on, keeping one generalized
branch that still covers all profiled rows — and, failing that, refined
into its children when the whole subtree can be covered by provably
conforming branches.  This is what turns the paper's verifiability claim
into a default: artifacts earn the analyzer's ``verified`` proof
whenever the profiled data admits one.

The result carries, for every solved source pattern, the full ranked and
deduplicated list of candidate plans so that program repair (Section 6.4)
can swap the default plan without re-running synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.flow import plan_conforms
from repro.clustering.hierarchy import HierarchyNode, PatternHierarchy
from repro.dsl.ast import AtomicPlan, Branch, UniFiProgram
from repro.patterns.pattern import Pattern
from repro.synthesis.alignment import align_tokens
from repro.synthesis.equivalence import deduplicate_plans
from repro.synthesis.plans import enumerate_plans, rank_plans
from repro.synthesis.validate import validate_source
from repro.tokens.token import Token
from repro.util.errors import SynthesisError


@dataclass
class SynthesisResult:
    """Outcome of synthesizing a UniFi program for one target pattern.

    Attributes:
        target: The target pattern.
        program: The synthesized program (default plan per source).
        candidates: Ranked, deduplicated candidate plans per solved source
            pattern; ``candidates[p][0]`` is the default plan used in
            ``program``.
        uncovered: Leaf patterns for which no plan could be synthesized;
            their data is left unchanged and flagged.
        already_target: Patterns whose data already matches the target.
    """

    target: Pattern
    program: UniFiProgram
    candidates: Dict[Pattern, List[AtomicPlan]] = field(default_factory=dict)
    uncovered: List[Pattern] = field(default_factory=list)
    already_target: List[Pattern] = field(default_factory=list)

    @property
    def source_patterns(self) -> List[Pattern]:
        """Solved source patterns, in branch order."""
        return [branch.pattern for branch in self.program.branches]

    def alternatives(self, source: Pattern, count: int = 5) -> List[AtomicPlan]:
        """Up to ``count`` repair alternatives for ``source`` (excluding the default)."""
        plans = self.candidates.get(source, [])
        return list(plans[1 : 1 + count])

    def repaired(self, source: Pattern, plan: AtomicPlan) -> "SynthesisResult":
        """Return a copy of the result with ``source``'s plan replaced by ``plan``."""
        return SynthesisResult(
            target=self.target,
            program=self.program.replacing_branch(source, plan),
            candidates=dict(self.candidates),
            uncovered=list(self.uncovered),
            already_target=list(self.already_target),
        )

    def compiled(self, metadata: "dict | None" = None):
        """Compile the synthesized program into a serializable executable.

        Returns:
            A :class:`repro.engine.compiled.CompiledProgram` pairing the
            program with its target pattern, ready for batch/streaming
            apply or JSON persistence.
        """
        from repro.engine.compiled import CompiledProgram

        return CompiledProgram(self.program, self.target, metadata=metadata)


@dataclass
class Synthesizer:
    """Configurable UniFi synthesizer.

    Attributes:
        max_plans_per_source: Enumeration cap forwarded to
            :func:`repro.synthesis.plans.enumerate_plans`.
        keep_candidates: Maximum number of ranked candidate plans retained
            per source pattern for later repair (the paper keeps the top
            ``k``).
        dedup_window: Equivalence deduplication (Appendix B) is quadratic,
            so it only runs over this many of the best-ranked plans before
            the ``keep_candidates`` cut is applied.
    """

    max_plans_per_source: int = 5_000
    keep_candidates: int = 50
    dedup_window: int = 200

    def synthesize(self, hierarchy: PatternHierarchy, target: Pattern) -> SynthesisResult:
        """Run Algorithm 2 over ``hierarchy`` for ``target``.

        Raises:
            SynthesisError: If the hierarchy is empty.
        """
        if not hierarchy.layers or not hierarchy.leaf_nodes:
            raise SynthesisError("cannot synthesize from an empty hierarchy")

        unsolved: List[HierarchyNode] = list(hierarchy.roots)
        solved: List[tuple[Pattern, List[AtomicPlan]]] = []
        uncovered: List[Pattern] = []
        already_target: List[Pattern] = []
        seen_sources: set = set()

        while unsolved:
            node = unsolved.pop(0)
            pattern = node.pattern
            if pattern == target or target.subsumes(pattern):
                already_target.append(pattern)
                continue
            if pattern in seen_sources:
                continue
            plans = self._plans_for(pattern, target)
            if plans:
                if not plan_conforms(pattern, plans[0], target):
                    cover = self._verified_resolution(node, target)
                    if cover is not None:
                        covered_solved, covered_already = cover
                        for covered_pattern, covered_plans in covered_solved:
                            if covered_pattern in seen_sources:
                                continue
                            seen_sources.add(covered_pattern)
                            solved.append((covered_pattern, covered_plans))
                        already_target.extend(covered_already)
                        continue
                seen_sources.add(pattern)
                solved.append((pattern, plans))
                continue
            if node.children:
                unsolved.extend(node.children)
            else:
                uncovered.append(pattern)

        branches = [
            Branch(pattern=pattern, plan=plans[0]) for pattern, plans in solved
        ]
        # More specific (longer, fewer '+') patterns first so that
        # first-match-wins evaluation prefers precise branches when
        # patterns from different subtrees happen to overlap.
        branches.sort(key=lambda b: (b.pattern.has_plus, -len(b.pattern)))
        program = UniFiProgram(branches)
        return SynthesisResult(
            target=target,
            program=program,
            candidates={pattern: plans for pattern, plans in solved},
            uncovered=uncovered,
            already_target=already_target,
        )

    # ------------------------------------------------------------------
    def _verified_resolution(
        self, node: HierarchyNode, target: Pattern
    ) -> Optional[Tuple[List[Tuple[Pattern, List[AtomicPlan]]], List[Pattern]]]:
        """Replace an unverifiable node solution with a provable one.

        Tries, in order: the *narrowed* node pattern (one branch, still
        covering every profiled row), then a cover of the subtree by
        provably conforming descendant branches.  Returns
        ``(solved, already_target)`` or ``None`` when neither works —
        the caller then keeps the node's own (unverifiable) solution
        rather than losing coverage.
        """
        narrowed = self._narrowed_pattern(node)
        if narrowed != node.pattern:
            if target == narrowed or target.subsumes(narrowed):
                # Every profiled row under this node is already in the
                # desired form; the pass-through handles it.
                return [], [narrowed]
            plans = self._plans_for(narrowed, target)
            if plans and plan_conforms(narrowed, plans[0], target):
                return [(narrowed, plans)], []
        return self._conforming_cover(node, target)

    @staticmethod
    def _narrowed_pattern(node: HierarchyNode) -> Pattern:
        """Tighten ``+`` tokens to the width every leaf descendant shares.

        The result still subsumes every leaf under ``node`` (narrowing
        only happens where all leaves agree), so swapping it in for the
        node's pattern never drops a profiled row — it only stops the
        branch from matching *unseen* widths the plan could transform
        into non-target-shaped output.  Patterns are compared
        positionally; any length mismatch disables narrowing.
        """
        leaves: List[Pattern] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.children:
                stack.extend(current.children)
            else:
                leaves.append(current.pattern)
        pattern = node.pattern
        if not leaves or any(len(leaf) != len(pattern) for leaf in leaves):
            return pattern
        tokens: List[Token] = []
        for position, token in enumerate(pattern.tokens):
            if token.is_plus:
                widths = {leaf.tokens[position].fixed_length for leaf in leaves}
                if len(widths) == 1 and None not in widths:
                    width = widths.pop()
                    assert width is not None
                    tokens.append(Token.base(token.klass, width))
                    continue
            tokens.append(token)
        return Pattern(tokens)

    def _conforming_cover(
        self, node: HierarchyNode, target: Pattern
    ) -> Optional[Tuple[List[Tuple[Pattern, List[AtomicPlan]]], List[Pattern]]]:
        """Cover ``node``'s subtree with provably conforming branches.

        Returns ``(solved, already_target)`` when every descendant either
        already matches the target or admits a default plan whose output
        language provably lies inside it — or ``None`` when no such cover
        exists.
        """
        pattern = node.pattern
        if pattern == target or target.subsumes(pattern):
            return [], [pattern]
        plans = self._plans_for(pattern, target)
        if plans and plan_conforms(pattern, plans[0], target):
            return [(pattern, plans)], []
        if not node.children:
            return None
        solved: List[Tuple[Pattern, List[AtomicPlan]]] = []
        already: List[Pattern] = []
        for child in node.children:
            sub = self._conforming_cover(child, target)
            if sub is None:
                return None
            solved.extend(sub[0])
            already.extend(sub[1])
        return solved, already

    def _plans_for(self, source: Pattern, target: Pattern) -> List[AtomicPlan]:
        """Validated + aligned + ranked + deduplicated plans for one source.

        When the MDL-best plan is not provably conforming but some other
        candidate is, the conforming candidates are stably moved to the
        front — verification breaks ranking ties the description length
        cannot see (e.g. which of several ``<D>+`` tokens feeds a
        ``<D>3`` target).
        """
        if not validate_source(source, target):
            return []
        dag = align_tokens(source, target)
        if not dag.has_path():
            return []
        plans = enumerate_plans(dag, max_plans=self.max_plans_per_source)
        if not plans:
            return []
        ranked = rank_plans(plans, source)
        deduped = deduplicate_plans(ranked[: self.dedup_window], source)
        kept = deduped[: self.keep_candidates]
        if kept and not plan_conforms(source, kept[0], target):
            conforming = [plan for plan in kept if plan_conforms(source, plan, target)]
            if conforming:
                chosen = set(conforming)
                kept = conforming + [plan for plan in kept if plan not in chosen]
        return kept


def synthesize(
    hierarchy: PatternHierarchy,
    target: Pattern,
    max_plans_per_source: int = 5_000,
    keep_candidates: int = 50,
) -> SynthesisResult:
    """Convenience wrapper constructing a :class:`Synthesizer` and running it."""
    synthesizer = Synthesizer(
        max_plans_per_source=max_plans_per_source,
        keep_candidates=keep_candidates,
    )
    return synthesizer.synthesize(hierarchy, target)
