"""Equivalent-plan detection and deduplication (paper Appendix B).

Two plans are *equivalent* when, for the same source pattern, they always
produce the same output for any matching string — e.g. extracting a
constant '/' from the source versus emitting it as a ``ConstStr``.
Showing equivalent plans as separate repair options only wastes user
effort, so only the simplest representative of each equivalence class is
kept.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.dsl.ast import AtomicPlan, ConstStr, Extract, StringExpression
from repro.patterns.pattern import Pattern


def _split_extracts(plan: AtomicPlan) -> List[StringExpression]:
    """Step 1 of Appendix B: split ``Extract(m, n)`` into single extracts."""
    flattened: List[StringExpression] = []
    for expression in plan.expressions:
        if isinstance(expression, Extract):
            flattened.extend(Extract(index) for index in range(expression.start, expression.end + 1))
        else:
            flattened.append(expression)
    return flattened


def _operations_interchangeable(
    left: StringExpression, right: StringExpression, source: Pattern
) -> bool:
    """Step 2(b): one op extracts a constant whose text equals the other's ConstStr."""
    if isinstance(left, Extract) and isinstance(right, ConstStr):
        extract, const = left, right
    elif isinstance(left, ConstStr) and isinstance(right, Extract):
        extract, const = right, left
    else:
        return False
    if extract.start != extract.end:
        return False
    if extract.start > len(source):
        return False
    token = source[extract.start - 1]
    return token.is_literal and token.literal == const.text


def plans_equivalent(first: AtomicPlan, second: AtomicPlan, source: Pattern) -> bool:
    """Whether two plans always yield the same output for ``source`` strings.

    Implements the pairwise check of Appendix B: after splitting
    multi-token extracts, the plans must have equal length and each pair
    of aligned operations must be identical or interchangeable (an
    extract of a constant source token versus the same text as ConstStr).
    """
    left = _split_extracts(first)
    right = _split_extracts(second)
    if len(left) != len(right):
        return False
    for left_op, right_op in zip(left, right):
        if left_op == right_op:
            continue
        if _operations_interchangeable(left_op, right_op, source):
            continue
        return False
    return True


def deduplicate_plans(plans: Sequence[AtomicPlan], source: Pattern) -> List[AtomicPlan]:
    """Keep only the first (i.e. simplest, given MDL-ranked input) plan per class.

    Args:
        plans: Plans already ranked by description length (ascending).
        source: Source pattern the plans apply to.

    Returns:
        The ranked plans with equivalent duplicates removed, preserving
        order.
    """
    kept: List[AtomicPlan] = []
    for plan in plans:
        if any(plans_equivalent(plan, existing, source) for existing in kept):
            continue
        kept.append(plan)
    return kept
