"""The token-alignment DAG (paper Section 6.2).

Nodes ``0 … len(target)`` are positions *between* target tokens; an edge
``(i, j)`` carries string expressions (``Extract`` or ``ConstStr``) that
produce target tokens ``i+1 … j``.  A path from the source node 0 to the
target node ``len(target)`` therefore spells out an atomic transformation
plan.  The DAG is the same representation FlashFill-style synthesizers
use for their version spaces, specialized here to whole-token moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.dsl.ast import StringExpression


@dataclass
class AlignmentDAG:
    """Directed acyclic graph of token matches for one (source, target) pair.

    Attributes:
        target_length: Number of tokens in the target pattern; the DAG has
            ``target_length + 1`` nodes, 0 being the source node and
            ``target_length`` the sink.
        edges: Mapping ``(start, end) -> list of expressions`` generating
            target tokens ``start+1 … end``.
    """

    target_length: int
    edges: Dict[Tuple[int, int], List[StringExpression]] = field(default_factory=dict)

    @property
    def source_node(self) -> int:
        """Index of the source node (always 0)."""
        return 0

    @property
    def sink_node(self) -> int:
        """Index of the sink node (``target_length``)."""
        return self.target_length

    def add_edge(self, start: int, end: int, expression: StringExpression) -> None:
        """Add ``expression`` to the edge ``(start, end)``.

        Duplicate expressions on the same edge are ignored so repeated
        combination passes stay idempotent.

        Raises:
            ValueError: If the edge is out of bounds or not forward.
        """
        if not (0 <= start < end <= self.target_length):
            raise ValueError(
                f"edge ({start}, {end}) out of bounds for target length {self.target_length}"
            )
        bucket = self.edges.setdefault((start, end), [])
        if expression not in bucket:
            bucket.append(expression)

    def outgoing(self, node: int) -> Iterator[Tuple[int, List[StringExpression]]]:
        """Yield ``(end, expressions)`` for every edge leaving ``node``."""
        for (start, end), expressions in self.edges.items():
            if start == node:
                yield end, expressions

    def incoming(self, node: int) -> Iterator[Tuple[int, List[StringExpression]]]:
        """Yield ``(start, expressions)`` for every edge entering ``node``."""
        for (start, end), expressions in self.edges.items():
            if end == node:
                yield start, expressions

    def expressions_on(self, start: int, end: int) -> List[StringExpression]:
        """Expressions stored on edge ``(start, end)`` (empty if absent)."""
        return list(self.edges.get((start, end), []))

    @property
    def edge_count(self) -> int:
        """Number of distinct (start, end) edges."""
        return len(self.edges)

    @property
    def expression_count(self) -> int:
        """Total number of expressions across all edges."""
        return sum(len(expressions) for expressions in self.edges.values())

    def has_path(self) -> bool:
        """Whether any path connects the source node to the sink node."""
        if self.target_length == 0:
            return True
        reachable = {self.source_node}
        frontier = [self.source_node]
        while frontier:
            node = frontier.pop()
            for end, _expressions in self.outgoing(node):
                if end not in reachable:
                    reachable.add(end)
                    frontier.append(end)
        return self.sink_node in reachable

    def path_count(self, limit: int = 1_000_000) -> int:
        """Number of distinct source→sink paths, capped at ``limit``.

        Counts paths (not plans — an edge holding several expressions
        multiplies the plan count).  Used by tests and by the ablation
        benchmarks to report search-space size.
        """
        counts = [0] * (self.target_length + 1)
        counts[self.sink_node] = 1
        for node in range(self.target_length - 1, -1, -1):
            total = 0
            for end, expressions in self.outgoing(node):
                total += counts[end] * max(1, len(expressions))
                if total >= limit:
                    total = limit
                    break
            counts[node] = total
        return counts[self.source_node]
