"""Program synthesis for UniFi (paper Section 6).

Pipeline::

    hierarchy --(validate, §6.1)--> candidate source patterns
              --(token alignment, Alg. 3, §6.2)--> DAG of token matches
              --(plan enumeration + MDL ranking, §6.3)--> ranked plans
              --(equivalence dedup, App. B)--> candidate plans per source
              --(Alg. 2)--> UniFi program (+ repair alternatives, §6.4)
"""

from repro.synthesis.validate import token_frequency, validate_source
from repro.synthesis.dag import AlignmentDAG
from repro.synthesis.alignment import align_tokens
from repro.synthesis.plans import enumerate_plans, rank_plans
from repro.synthesis.equivalence import deduplicate_plans, plans_equivalent
from repro.synthesis.synthesizer import SynthesisResult, Synthesizer, synthesize
from repro.synthesis.repair import RepairCandidates, repair_options

__all__ = [
    "AlignmentDAG",
    "RepairCandidates",
    "SynthesisResult",
    "Synthesizer",
    "align_tokens",
    "deduplicate_plans",
    "enumerate_plans",
    "plans_equivalent",
    "rank_plans",
    "repair_options",
    "synthesize",
    "token_frequency",
    "validate_source",
]
