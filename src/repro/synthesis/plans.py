"""Plan enumeration and MDL ranking (paper Section 6.3).

Finding an atomic transformation plan is finding a path from node 0 to
node ``len(target)`` in the alignment DAG; every combination of edge
expressions along a path is one plan.  Plans are ranked by Minimum
Description Length, the paper's formalization of Occam's razor: the plan
with the lowest description length becomes the default, the next ``k``
are offered as repair alternatives.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.dsl.ast import AtomicPlan, Extract, StringExpression
from repro.dsl.mdl import plan_description_length
from repro.patterns.pattern import Pattern
from repro.synthesis.dag import AlignmentDAG

#: Safety cap on the number of enumerated plans; the DAGs produced by
#: whole-token alignment are small, so this cap is rarely reached, but it
#: bounds worst-case behaviour on adversarial patterns (e.g. long free-text
#: sources where many tokens are syntactically similar to each target token).
DEFAULT_MAX_PLANS = 5_000


def enumerate_plans(dag: AlignmentDAG, max_plans: int = DEFAULT_MAX_PLANS) -> List[AtomicPlan]:
    """Enumerate atomic transformation plans as paths through ``dag``.

    Args:
        dag: Alignment DAG built by :func:`repro.synthesis.alignment.align_tokens`.
        max_plans: Upper bound on the number of plans returned; when the
            bound is hit enumeration stops (depth-first, left-to-right),
            which still includes the single-extract "simple" plans MDL
            prefers because combined edges are explored like any other.

    Returns:
        A list of distinct plans (no particular order); empty when no
        path reaches the sink.
    """
    if dag.target_length == 0:
        return [AtomicPlan(())]

    plans: List[AtomicPlan] = []
    seen: set = set()
    prefix: List[StringExpression] = []

    # Pre-sort outgoing edges per node for deterministic enumeration:
    # longer jumps (fewer expressions per plan) first.
    adjacency = {}
    for node in range(dag.target_length):
        edges = sorted(dag.outgoing(node), key=lambda item: -item[0])
        adjacency[node] = edges

    def visit(node: int) -> None:
        if len(plans) >= max_plans:
            return
        if node == dag.sink_node:
            plan = AtomicPlan(tuple(prefix))
            if plan not in seen:
                seen.add(plan)
                plans.append(plan)
            return
        for end, expressions in adjacency.get(node, []):
            for expression in expressions:
                if len(plans) >= max_plans:
                    return
                prefix.append(expression)
                visit(end)
                prefix.pop()

    visit(dag.source_node)
    return plans


def overlap_violations(plan: AtomicPlan) -> int:
    """Number of Extracts that re-extract a source token already used.

    A formatting transformation almost never copies the same source field
    twice, but compact plans that do (e.g. reusing the phone prefix for
    the area code, or folding a neighbouring separator into two ranges)
    can have a *lower* description length than the correct plan.  Counting
    range overlaps lets the ranking prefer overlap-free plans before
    comparing description lengths, which is what keeps the default plan
    correct for the common reformatting tasks; overlapping plans remain
    available as repair candidates.
    """
    used: set = set()
    violations = 0
    for expression in plan.expressions:
        if not isinstance(expression, Extract):
            continue
        span = set(range(expression.start, expression.end + 1))
        if span & used:
            violations += 1
        used |= span
    return violations


def monotonicity_violations(plan: AtomicPlan) -> int:
    """Number of Extracts that reuse or go backwards over source tokens.

    MDL alone cannot distinguish ``Extract(1)`` from ``Extract(3)`` when
    both source tokens are syntactically similar to the target token (the
    date-ambiguity example of Section 6.4).  As a tie-breaker we prefer
    plans whose extracts walk the source left-to-right without reusing a
    token, which is how the vast majority of real formatting
    transformations behave; the MDL score itself is never overridden.
    """
    violations = 0
    last_end = 0
    for expression in plan.expressions:
        if not isinstance(expression, Extract):
            continue
        if expression.start <= last_end:
            violations += 1
        last_end = max(last_end, expression.end)
    return violations


def rank_plans(
    plans: Sequence[AtomicPlan],
    source: Pattern,
) -> List[AtomicPlan]:
    """Rank candidate plans: overlap-free first, then by description length.

    The primary criterion within the overlap-free (and within the
    overlapping) group is the MDL score of Section 6.3; remaining ties are
    broken by fewer monotonicity violations (left-to-right extraction),
    fewer expressions, and finally the plan's string form, so ranking is
    fully deterministic.

    Args:
        plans: Candidate plans for one source pattern.
        source: The candidate source pattern (its length parameterizes the
            Extract cost in the MDL formula).
    """
    source_length = max(1, len(source))

    def key(plan: AtomicPlan):
        return (
            overlap_violations(plan),
            plan_description_length(plan, source_length),
            monotonicity_violations(plan),
            len(plan),
            str(plan),
        )

    return sorted(plans, key=key)
