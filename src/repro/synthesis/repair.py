"""Program repair (paper Section 6.4).

When the default (MDL-minimal) plan for a source pattern is wrong — for
example the date-ambiguity case where ``DD`` is matched to ``MM`` — the
user repairs it by picking one of the other candidate plans.  Because
token alignment is complete, the correct plan is guaranteed to be among
the candidates; equivalence deduplication keeps the choice list short.

This module packages the repair options for one source pattern and the
"oracle repair" helper the simulated user of Section 7.4 relies on: pick
the highest-ranked candidate whose output matches the expected value on
the provided examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dsl.ast import AtomicPlan
from repro.dsl.interpreter import apply_plan
from repro.patterns.matching import match_pattern
from repro.patterns.pattern import Pattern
from repro.synthesis.synthesizer import SynthesisResult


@dataclass(frozen=True)
class RepairCandidates:
    """Candidate plans for one source pattern, default first.

    Attributes:
        source: The source pattern being repaired.
        plans: Ranked, deduplicated candidate plans (``plans[0]`` is the
            current default).
    """

    source: Pattern
    plans: Tuple[AtomicPlan, ...]

    def __len__(self) -> int:
        return len(self.plans)

    @property
    def default(self) -> AtomicPlan:
        """The current default plan."""
        return self.plans[0]

    @property
    def alternatives(self) -> Tuple[AtomicPlan, ...]:
        """Every candidate except the default."""
        return self.plans[1:]


def repair_options(result: SynthesisResult, source: Pattern) -> RepairCandidates:
    """Package the repair options for ``source`` out of a synthesis result.

    Raises:
        KeyError: If ``source`` is not a solved source pattern of
            ``result``.
    """
    plans = result.candidates.get(source)
    if not plans:
        raise KeyError(f"no candidate plans recorded for {source.notation()}")
    return RepairCandidates(source=source, plans=tuple(plans))


def oracle_repair(
    result: SynthesisResult,
    expected: Dict[str, str],
) -> Tuple[SynthesisResult, int]:
    """Repair every source whose default plan disagrees with ``expected``.

    This is the simulated user's "lazy" repair of Section 7.4: for each
    source pattern whose default plan produces a wrong output on any
    example it matches, switch to the highest-ranked candidate that gets
    all of its matching examples right.

    Args:
        result: The initial synthesis result.
        expected: Mapping from raw input string to its desired output.

    Returns:
        ``(repaired_result, repairs_made)`` where ``repairs_made`` counts
        how many source patterns had their plan replaced.  Sources for
        which no candidate is correct are left on their default plan.
    """
    repaired = result
    repairs = 0
    for source, plans in result.candidates.items():
        examples = _examples_matching(source, expected)
        if not examples:
            continue
        if _plan_correct(plans[0], source, examples):
            continue
        replacement = _first_correct_plan(plans[1:], source, examples)
        if replacement is not None:
            repaired = repaired.repaired(source, replacement)
            repairs += 1
    return repaired, repairs


def _examples_matching(
    source: Pattern, expected: Dict[str, str]
) -> List[Tuple[List[str], str]]:
    """Token texts and expected outputs of examples matching ``source``."""
    collected = []
    for raw, desired in expected.items():
        token_texts = match_pattern(raw, source)
        if token_texts is not None:
            collected.append((token_texts, desired))
    return collected


def _plan_correct(
    plan: AtomicPlan, source: Pattern, examples: Sequence[Tuple[List[str], str]]
) -> bool:
    """Whether ``plan`` reproduces every expected output among ``examples``."""
    for token_texts, desired in examples:
        try:
            if apply_plan(plan, token_texts) != desired:
                return False
        except Exception:
            return False
    return True


def _first_correct_plan(
    plans: Sequence[AtomicPlan],
    source: Pattern,
    examples: Sequence[Tuple[List[str], str]],
) -> Optional[AtomicPlan]:
    """First plan in ranked order that is correct on all examples, if any."""
    for plan in plans:
        if _plan_correct(plan, source, examples):
            return plan
    return None
