"""Source-candidate validation (paper Section 6.1).

Before synthesizing a plan for a source pattern we cheaply check whether
the transformation is even plausible, using the token-frequency count of
Equations 1–2: for every base token class, the source must contain at
least as many characters-worth of that class as the target requires.
Patterns failing the check (noise values like "N/A", or patterns missing
a whole token class the target needs) are rejected without running the
more expensive alignment.
"""

from __future__ import annotations

from repro.patterns.pattern import Pattern
from repro.tokens.classes import ALL_BASE_CLASSES, TokenClass


def token_frequency(pattern: Pattern, klass: TokenClass) -> int:
    """``Q(<class>, pattern)`` — summed quantifiers of base tokens of ``klass``.

    A ``+`` quantifier counts as 1, per the paper.  Provided as a free
    function mirroring the paper's notation; delegates to
    :meth:`repro.patterns.pattern.Pattern.frequency`.
    """
    return pattern.frequency(klass)


def supply_frequency(pattern: Pattern, klass: TokenClass) -> int:
    """Characters of class ``klass`` that ``pattern`` can *supply* to a target.

    This is ``Q`` extended with literal tokens: a constant-promoted
    source token such as ``'CPT'`` supplies three uppercase (and three
    alpha, and three alphanumeric) characters even though it is no longer
    a base token.  Used on the *source* side of validation so constant
    promotion never makes an otherwise-transformable pattern look
    untransformable.
    """
    total = pattern.frequency(klass)
    for token in pattern.tokens:
        if not token.is_literal:
            continue
        assert token.literal is not None
        total += sum(1 for char in token.literal if klass.accepts_char(char))
    return total


def validate_source(source: Pattern, target: Pattern) -> bool:
    """The validation predicate ``V(source, target)`` of Equation 2.

    Returns True when, for every base token class, the source pattern can
    supply at least as many characters of that class as the target
    pattern demands.  Noise patterns ("N/A" in a phone column) and
    patterns missing a required token class are rejected here without
    running alignment.
    """
    for klass in ALL_BASE_CLASSES:
        if supply_frequency(source, klass) < token_frequency(target, klass):
            return False
    return True
