"""Token alignment — Algorithm 3 of the paper.

Given a candidate source pattern and the target pattern, the alignment
discovers every way each target token can be produced:

* an ``Extract`` of any syntactically-similar source token
  (Definition 6.1), and
* a ``ConstStr`` for literal target tokens (punctuation or constant
  strings can always be invented without external knowledge).

Individual extracts that touch consecutive source tokens and produce
consecutive target tokens are then combined into multi-token
``Extract(i, j)`` edges ("Combine Sequential Extracts"), which is what
makes the alignment complete (Appendix A) and lets MDL prefer the simple
one-extract plans.
"""

from __future__ import annotations

from repro.dsl.ast import ConstStr, Extract
from repro.patterns.pattern import Pattern
from repro.synthesis.dag import AlignmentDAG


def align_tokens(source: Pattern, target: Pattern) -> AlignmentDAG:
    """Build the alignment DAG between ``source`` and ``target``.

    Args:
        source: Candidate source pattern (already validated).
        target: Target pattern selected by the user.

    Returns:
        The :class:`~repro.synthesis.dag.AlignmentDAG`; a path from node 0
        to node ``len(target)`` exists iff an atomic transformation plan
        exists in UniFi for this pair.
    """
    dag = AlignmentDAG(target_length=len(target))

    # Lines 2-9: align individual target tokens to sources.
    for target_index, target_token in enumerate(target.tokens, start=1):
        for source_index, source_token in enumerate(source.tokens, start=1):
            if target_token.syntactically_similar(source_token):
                dag.add_edge(target_index - 1, target_index, Extract(source_index))
        if target_token.is_literal:
            assert target_token.literal is not None
            dag.add_edge(target_index - 1, target_index, ConstStr(target_token.literal))

    # Lines 10-17: combine sequential extracts.  Processing the nodes left
    # to right lets previously combined edges participate in further
    # combinations, which yields Extract(p, q) for arbitrarily long runs
    # (see the completeness proof in Appendix A).
    for node in range(1, dag.target_length):
        incoming = [
            (start, expression)
            for start, expressions in dag.incoming(node)
            for expression in expressions
            if isinstance(expression, Extract)
        ]
        outgoing = [
            (end, expression)
            for end, expressions in dag.outgoing(node)
            for expression in expressions
            if isinstance(expression, Extract)
        ]
        for start, incoming_extract in incoming:
            for end, outgoing_extract in outgoing:
                if incoming_extract.end + 1 == outgoing_extract.start:
                    dag.add_edge(
                        start,
                        end,
                        Extract(incoming_extract.start, outgoing_extract.end),
                    )
    return dag
