"""The :class:`Pattern` value object — a sequence of tokens.

Patterns are immutable and hashable so they can key cluster dictionaries
and be compared structurally.  They expose the token-frequency statistic
``Q`` used by source-candidate validation (Equation 1 of the paper) and
the subsumption test used when building the cluster hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Iterator, Sequence, Tuple

from repro.tokens.classes import ALL_BASE_CLASSES, TokenClass
from repro.tokens.token import PLUS, Token


@dataclass(frozen=True)
class Pattern:
    """An ordered, immutable sequence of tokens describing string structure.

    Attributes:
        tokens: The tokens, left to right.
    """

    tokens: Tuple[Token, ...]

    def __init__(self, tokens: Sequence[Token]) -> None:
        object.__setattr__(self, "tokens", tuple(tokens))

    # ------------------------------------------------------------------
    # Basic container behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tokens)

    def __iter__(self) -> Iterator[Token]:
        return iter(self.tokens)

    def __getitem__(self, index: int) -> Token:
        return self.tokens[index]

    def __bool__(self) -> bool:
        return bool(self.tokens)

    # ------------------------------------------------------------------
    # Notation / display
    # ------------------------------------------------------------------
    def notation(self) -> str:
        """Compact paper notation, e.g. ``<D>3'-'<D>3'-'<D>4``."""
        return "".join(token.notation() for token in self.tokens)

    def __str__(self) -> str:
        return self.notation()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pattern({self.notation()!r})"

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @cached_property
    def token_frequencies(self) -> Dict[TokenClass, int]:
        """Token frequency Q per base class (Equation 1).

        A ``+`` quantifier counts as 1, as specified in Section 6.1.
        Literal tokens do not contribute.
        """
        counts: Dict[TokenClass, int] = {klass: 0 for klass in ALL_BASE_CLASSES}
        for token in self.tokens:
            if token.is_literal:
                continue
            amount = 1 if token.quantifier == PLUS else int(token.quantifier)
            counts[token.klass] += amount
        return counts

    def frequency(self, klass: TokenClass) -> int:
        """Q(<class>, self): summed quantifiers of base tokens of ``klass``."""
        return self.token_frequencies.get(klass, 0)

    @property
    def base_token_count(self) -> int:
        """Number of non-literal tokens in the pattern."""
        return sum(1 for token in self.tokens if not token.is_literal)

    @property
    def literal_token_count(self) -> int:
        """Number of literal tokens in the pattern."""
        return sum(1 for token in self.tokens if token.is_literal)

    @property
    def has_plus(self) -> bool:
        """True if any token uses the '+' quantifier."""
        return any(token.is_plus for token in self.tokens)

    @property
    def fixed_length(self) -> int | None:
        """Exact string length matched by the pattern, or ``None`` if variable."""
        total = 0
        for token in self.tokens:
            fixed = token.fixed_length
            if fixed is None:
                return None
            total += fixed
        return total

    # ------------------------------------------------------------------
    # Structural relations
    # ------------------------------------------------------------------
    def subsumes(self, other: "Pattern") -> bool:
        """Whether every string matching ``other`` also matches ``self``.

        This is the ``isChild`` relation of Algorithm 1 read in the parent
        direction: token-by-token, each of our tokens must be equal to or
        a generalization of the corresponding token of ``other``.  The
        comparison is positional — refinement never merges or splits
        tokens, so parent and child patterns always have equal length
        except at the final ``<AN>`` round, which is handled by the
        refinement code itself.
        """
        if len(self.tokens) != len(other.tokens):
            return False
        return all(
            _token_subsumes(mine, theirs)
            for mine, theirs in zip(self.tokens, other.tokens)
        )

    def with_tokens(self, tokens: Sequence[Token]) -> "Pattern":
        """Return a new pattern with the given token sequence."""
        return Pattern(tokens)


def _token_subsumes(parent: Token, child: Token) -> bool:
    """Token-level generalization test used by :meth:`Pattern.subsumes`."""
    if parent.is_literal or child.is_literal:
        # A literal only subsumes the identical literal.  A base-class
        # parent subsumes a literal child whose text it accepts.
        if parent.is_literal and child.is_literal:
            return parent.literal == child.literal
        if parent.is_literal:
            return False
        assert child.literal is not None
        if not all(parent.klass.accepts_char(c) for c in child.literal):
            return False
        if parent.is_plus:
            return True
        return int(parent.quantifier) == len(child.literal)
    if not parent.klass.generalizes(child.klass):
        return False
    if parent.is_plus:
        return True
    if child.is_plus:
        return False
    return int(parent.quantifier) == int(child.quantifier)
