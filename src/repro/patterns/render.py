"""Human-facing rendering of patterns.

The paper presents patterns to end users as "natural-language-like"
regular expressions in the style of Wrangler/Trifacta (Figure 4), e.g.::

    \\({digit}3\\)\\ {digit}3\\-{digit}4

This module renders both that Wrangler style and a plainer natural-
language description ("3 digits, '-', 3 digits, '-', 4 digits") used by
the examples and the preview table.
"""

from __future__ import annotations

from typing import List

from repro.patterns.pattern import Pattern
from repro.tokens.classes import TokenClass
from repro.tokens.token import Token

_WRANGLER_NAMES = {
    TokenClass.DIGIT: "{digit}",
    TokenClass.LOWER: "{lower}",
    TokenClass.UPPER: "{upper}",
    TokenClass.ALPHA: "{alpha}",
    TokenClass.ALNUM: "{alphanum}",
}

_NATURAL_NAMES = {
    TokenClass.DIGIT: "digit",
    TokenClass.LOWER: "lowercase letter",
    TokenClass.UPPER: "uppercase letter",
    TokenClass.ALPHA: "letter",
    TokenClass.ALNUM: "alphanumeric character",
}

#: Characters that must be escaped in the Wrangler-style rendering.
_ESCAPE_CHARS = set("\\^$.|?*+()[]{} -/")


def _escape_literal(text: str) -> str:
    return "".join(f"\\{c}" if c in _ESCAPE_CHARS else c for c in text)


def render_wrangler(pattern: Pattern) -> str:
    """Render in the Wrangler/Trifacta style used by the paper's figures."""
    parts: List[str] = []
    for token in pattern.tokens:
        parts.append(_render_wrangler_token(token))
    return "".join(parts)


def _render_wrangler_token(token: Token) -> str:
    if token.is_literal:
        assert token.literal is not None
        return _escape_literal(token.literal)
    name = _WRANGLER_NAMES[token.klass]
    if token.is_plus:
        return f"{name}+"
    count = int(token.quantifier)
    return name if count == 1 else f"{name}{count}"


def render_natural(pattern: Pattern) -> str:
    """Render a plain English description of the pattern."""
    parts: List[str] = []
    for token in pattern.tokens:
        if token.is_literal:
            parts.append(f"'{token.literal}'")
            continue
        name = _NATURAL_NAMES[token.klass]
        if token.is_plus:
            parts.append(f"one or more {name}s")
        else:
            count = int(token.quantifier)
            parts.append(f"{count} {name}{'s' if count != 1 else ''}")
    return ", ".join(parts) if parts else "(empty string)"
