"""Compile patterns to anchored regular expressions.

Patterns ultimately surface to the user as regexp ``Replace`` operations
(Figure 4 of the paper); this module produces both the plain anchored
regex for a pattern and the *grouped* regex in which extracted token
ranges are wrapped in capture groups so the replacement string can refer
to them as ``$1``, ``$2``, …
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Pattern as RePattern
from typing import Sequence, Tuple

from repro.patterns.pattern import Pattern


def pattern_to_regex(pattern: Pattern, anchored: bool = True) -> str:
    """Render ``pattern`` as a regular expression string.

    Args:
        pattern: The pattern to render.
        anchored: If True (default) the regex is wrapped in ``^…$`` so it
            matches whole strings only — the paper's ``Match`` predicate
            is an exact match.
    """
    body = "".join(token.to_regex() for token in pattern.tokens)
    return f"^{body}$" if anchored else body


def grouped_regex(pattern: Pattern, groups: Sequence[Tuple[int, int]]) -> str:
    """Render ``pattern`` with capture groups around token ranges.

    Args:
        pattern: Source pattern.
        groups: Inclusive token-index ranges ``(start, end)`` (0-based)
            to wrap in parentheses, in left-to-right, non-overlapping
            order.

    Returns:
        An anchored regex string with one capture group per range.

    Raises:
        ValueError: If ranges are out of bounds, unordered, or overlap.
    """
    _check_ranges(len(pattern), groups)
    pieces = []
    cursor = 0
    for start, end in groups:
        for index in range(cursor, start):
            pieces.append(pattern[index].to_regex())
        inner = "".join(pattern[index].to_regex() for index in range(start, end + 1))
        pieces.append(f"({inner})")
        cursor = end + 1
    for index in range(cursor, len(pattern)):
        pieces.append(pattern[index].to_regex())
    return "^" + "".join(pieces) + "$"


def _check_ranges(length: int, groups: Sequence[Tuple[int, int]]) -> None:
    previous_end = -1
    for start, end in groups:
        if start < 0 or end >= length:
            raise ValueError(f"group range ({start}, {end}) out of bounds for {length} tokens")
        if start > end:
            raise ValueError(f"group range ({start}, {end}) is reversed")
        if start <= previous_end:
            raise ValueError("group ranges must be ordered and non-overlapping")
        previous_end = end


@lru_cache(maxsize=4096)
def _compile_cached(regex: str) -> RePattern[str]:
    return re.compile(regex)


def compile_pattern(pattern: Pattern, anchored: bool = True) -> RePattern[str]:
    """Compile ``pattern`` into a cached :class:`re.Pattern` object."""
    return _compile_cached(pattern_to_regex(pattern, anchored=anchored))
