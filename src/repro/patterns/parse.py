"""Parser for the compact pattern notation used in the paper and the tests.

The notation is the one the paper prints, e.g.::

    <D>3'-'<D>3'-'<D>4        three digits, dash, three digits, dash, four
    <U><L>+'@'<L>+'.'<L>+     an email-like pattern
    <AN>+                      one or more alphanumeric characters

Grammar (informal)::

    pattern   := element*
    element   := base | literal
    base      := '<' CLASS '>' quantifier?
    quantifier:= NATURAL | '+'
    literal   := "'" CHARS "'"          (single-quoted constant text)

Whitespace between elements is ignored.  A backslash inside a literal
escapes the next character, allowing ``'\\''`` for a single quote.
"""

from __future__ import annotations

from typing import List

from repro.patterns.pattern import Pattern
from repro.tokens.classes import NOTATION_TO_CLASS
from repro.tokens.token import PLUS, Token
from repro.util.errors import PatternParseError


def parse_pattern(text: str) -> Pattern:
    """Parse the compact notation into a :class:`~repro.patterns.pattern.Pattern`.

    Args:
        text: Pattern source such as ``"<D>3'-'<D>4"``.

    Raises:
        PatternParseError: On any syntax error; the message points at the
            offending position.
    """
    tokens: List[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == "<":
            index = _parse_base(text, index, tokens)
            continue
        if char == "'":
            index = _parse_literal(text, index, tokens)
            continue
        raise PatternParseError(
            f"unexpected character {char!r} at position {index}", source=text
        )
    return Pattern(tokens)


def _parse_base(text: str, start: int, out: List[Token]) -> int:
    """Parse a ``<CLASS>quantifier`` element starting at ``start``."""
    end = text.find(">", start)
    if end == -1:
        raise PatternParseError(
            f"unterminated token class at position {start}", source=text
        )
    notation = text[start : end + 1]
    klass = NOTATION_TO_CLASS.get(notation)
    if klass is None:
        raise PatternParseError(
            f"unknown token class {notation!r} at position {start}", source=text
        )
    index = end + 1
    if index < len(text) and text[index] == "+":
        out.append(Token.base(klass, PLUS))
        return index + 1
    digits_start = index
    while index < len(text) and text[index].isdigit():
        index += 1
    if index == digits_start:
        out.append(Token.base(klass, 1))
        return index
    quantifier = int(text[digits_start:index])
    if quantifier < 1:
        raise PatternParseError(
            f"quantifier must be positive at position {digits_start}", source=text
        )
    out.append(Token.base(klass, quantifier))
    return index


def _parse_literal(text: str, start: int, out: List[Token]) -> int:
    """Parse a single-quoted literal starting at ``start``."""
    index = start + 1
    chars: List[str] = []
    while index < len(text):
        char = text[index]
        if char == "\\" and index + 1 < len(text):
            chars.append(text[index + 1])
            index += 2
            continue
        if char == "'":
            if not chars:
                raise PatternParseError(
                    f"empty literal at position {start}", source=text
                )
            out.append(Token.lit("".join(chars)))
            return index + 1
        chars.append(char)
        index += 1
    raise PatternParseError(f"unterminated literal at position {start}", source=text)
