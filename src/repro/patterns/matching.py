"""Matching strings against patterns, with per-token spans.

Two operations live here:

* :func:`match_pattern` — test whether a string matches a pattern and, if
  so, return the substring covered by every token.  The per-token spans
  are what the UniFi interpreter's ``Extract`` needs.
* :func:`pattern_of_string` — the leaf pattern of a string (tokenization
  wrapped into a :class:`~repro.patterns.pattern.Pattern`).
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import List, Optional

from repro.patterns.pattern import Pattern
from repro.tokens.tokenizer import tokenize


@lru_cache(maxsize=4096)
def compiled_with_groups(pattern: Pattern) -> "re.Pattern[str]":
    """Compile ``pattern`` to an anchored regex with one capture group per token.

    The per-token groups are what ``Extract`` evaluation consumes; the
    compiled object is cached so repeated matching against the same
    pattern re-uses one regex.  :class:`repro.engine.compiled.CompiledProgram`
    stores these objects directly in its dispatch table, skipping the
    cache lookup (and the pattern hashing it implies) on the hot path.
    """
    body = "".join(f"({token.to_regex()})" for token in pattern.tokens)
    return re.compile(f"^{body}$")


def match_pattern(value: str, pattern: Pattern) -> Optional[List[str]]:
    """Match ``value`` against ``pattern`` exactly.

    Args:
        value: The raw string.
        pattern: Pattern to match against.

    Returns:
        The list of substrings covered by each token (in order) when the
        whole string matches, otherwise ``None``.  An empty pattern
        matches only the empty string (returning ``[]``).
    """
    if not pattern.tokens:
        return [] if value == "" else None
    match = compiled_with_groups(pattern).match(value)
    if match is None:
        return None
    return list(match.groups())


def matches(value: str, pattern: Pattern) -> bool:
    """Boolean form of :func:`match_pattern`."""
    return match_pattern(value, pattern) is not None


def pattern_of_string(value: str) -> Pattern:
    """Return the leaf-level pattern of ``value`` (its tokenization)."""
    return Pattern(tokenize(value))
