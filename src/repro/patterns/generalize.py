"""Generalization strategies for agglomerative refinement (Section 4.2).

The paper performs three rounds of refinement, each applying one
generalization strategy to every pattern of the previous layer:

1. natural-number quantifiers become ``+``;
2. ``<L>`` and ``<U>`` tokens become ``<A>``;
3. ``<A>``, ``<D>`` and the literals ``-`` / ``_`` become ``<AN>``, and
   adjacent tokens that end up in the same class are merged.

Each strategy is a pure function ``Pattern -> Pattern`` returning the
parent pattern (which may equal the input when nothing generalizes).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.patterns.pattern import Pattern
from repro.tokens.classes import TokenClass
from repro.tokens.token import PLUS, Token

GeneralizationStrategy = Callable[[Pattern], Pattern]


def generalize_quantifier(pattern: Pattern) -> Pattern:
    """Strategy 1: replace every natural-number quantifier with ``+``.

    Literal tokens are left untouched — their value, not their length, is
    what identifies them.  Adjacent base tokens of the same class are
    merged afterwards because ``<D>3<D>2`` and ``<D>5`` both become
    ``<D>+``.
    """
    tokens = [
        token if token.is_literal else Token.base(token.klass, PLUS)
        for token in pattern.tokens
    ]
    return Pattern(_merge_adjacent(tokens))


def generalize_alpha(pattern: Pattern) -> Pattern:
    """Strategy 2: generalize ``<L>`` and ``<U>`` tokens to ``<A>``."""
    tokens = []
    for token in pattern.tokens:
        if not token.is_literal and token.klass in (TokenClass.LOWER, TokenClass.UPPER):
            tokens.append(Token.base(TokenClass.ALPHA, token.quantifier))
        else:
            tokens.append(token)
    return Pattern(_merge_adjacent(tokens))


#: Literal characters folded into ``<AN>`` by strategy 3 (paper lists '-'
#: and '_', matching the ``[a-zA-Z0-9_-]`` character class of Table 2).
_ALNUM_LITERALS = {"-", "_"}


def generalize_alnum(pattern: Pattern) -> Pattern:
    """Strategy 3: generalize ``<A>``/``<D>``/'-'/'_' tokens to ``<AN>``."""
    tokens: List[Token] = []
    for token in pattern.tokens:
        if token.is_literal:
            assert token.literal is not None
            if token.literal in _ALNUM_LITERALS:
                tokens.append(Token.base(TokenClass.ALNUM, PLUS))
            else:
                tokens.append(token)
            continue
        if token.klass in (
            TokenClass.ALPHA,
            TokenClass.DIGIT,
            TokenClass.LOWER,
            TokenClass.UPPER,
            TokenClass.ALNUM,
        ):
            tokens.append(Token.base(TokenClass.ALNUM, token.quantifier))
        else:
            tokens.append(token)
    return Pattern(_merge_adjacent(tokens))


def _merge_adjacent(tokens: Sequence[Token]) -> List[Token]:
    """Merge adjacent base tokens of the same class.

    When both quantifiers are numeric the merged quantifier is their sum;
    if either is ``+`` the result is ``+``.  Literal tokens never merge.
    """
    merged: List[Token] = []
    for token in tokens:
        if (
            merged
            and not token.is_literal
            and not merged[-1].is_literal
            and merged[-1].klass is token.klass
        ):
            previous = merged.pop()
            if previous.is_plus or token.is_plus:
                merged.append(Token.base(token.klass, PLUS))
            else:
                merged.append(
                    Token.base(token.klass, int(previous.quantifier) + int(token.quantifier))
                )
        else:
            merged.append(token)
    return merged


#: The three refinement rounds in the order the paper applies them.
GENERALIZATION_STRATEGIES: Tuple[GeneralizationStrategy, ...] = (
    generalize_quantifier,
    generalize_alpha,
    generalize_alnum,
)
