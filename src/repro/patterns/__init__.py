"""Data patterns: quantified token sequences (paper Section 3.1).

A :class:`Pattern` is a sequence of tokens and is the unit of the
clustering hierarchy, the predicate of UniFi ``Match`` expressions, and
the left-hand side of explained ``Replace`` operations.
"""

from repro.patterns.pattern import Pattern
from repro.patterns.parse import parse_pattern
from repro.patterns.regex import pattern_to_regex, compile_pattern
from repro.patterns.matching import compiled_with_groups, match_pattern, pattern_of_string
from repro.patterns.generalize import (
    GENERALIZATION_STRATEGIES,
    GeneralizationStrategy,
    generalize_alpha,
    generalize_alnum,
    generalize_quantifier,
)
from repro.patterns.render import render_natural, render_wrangler

__all__ = [
    "GENERALIZATION_STRATEGIES",
    "GeneralizationStrategy",
    "Pattern",
    "compile_pattern",
    "compiled_with_groups",
    "generalize_alnum",
    "generalize_alpha",
    "generalize_quantifier",
    "match_pattern",
    "parse_pattern",
    "pattern_of_string",
    "pattern_to_regex",
    "render_natural",
    "render_wrangler",
]
