"""Byte-to-text decoding with file context, shared by every reader.

The whole pipeline reads partitions as raw bytes (so byte-range shards
can seek) and decodes physical lines itself.  A non-UTF-8 byte used to
escape as a bare ``UnicodeDecodeError`` with no file context;
:func:`decode_line` is the single rewrap point: it names the file, the
1-based physical line, and the absolute byte offset of the offending
byte.  In quarantine mode the decode failure must not abort the run —
:class:`BadLine` carries the error through the line-based worker wire
(it *is* a ``str``, decoded with ``errors="replace"``, so record
grouping and chunk splitting treat it like any other line) until the
parse stage raises it per-record and the salvage pass diverts exactly
that record.
"""

from __future__ import annotations

from typing import IO, Iterator, Tuple

from repro.util.errors import CLXError


class BadLine(str):
    """A physical line whose bytes were not valid UTF-8.

    Subclasses ``str`` (the ``errors="replace"`` decoding) so it flows
    through line-oriented plumbing — record grouping, chunk splitting,
    raw-record capture — unchanged; the parse stage checks for it and
    raises :attr:`error`, which in quarantine mode diverts the record.
    Quote-parity scanning stays sound: a quote is an ASCII byte, and
    invalid UTF-8 sequences never decode to ASCII.
    """

    __slots__ = ("error",)

    error: str

    def __new__(cls, text: str, error: str) -> "BadLine":
        line = super().__new__(cls, text)
        line.error = error
        return line

    def __reduce__(self) -> Tuple[type, Tuple[str, str]]:
        # Plain pickle of a str subclass drops __slots__ state; chunks of
        # lines cross the worker pool boundary, so spell the wire out.
        return (BadLine, (str(self), self.error))


def decode_error_message(
    raw: bytes, error: UnicodeDecodeError, source: str, line_number: int, offset: int
) -> str:
    """The one wording for a non-UTF-8 byte: file, line, absolute offset."""
    bad = raw[error.start] if error.start < len(raw) else 0
    return (
        f"{source} line {line_number}: invalid UTF-8 byte 0x{bad:02x} at byte "
        f"offset {offset + error.start}; the pipeline reads UTF-8 — re-encode "
        "the file, or divert the record with --on-error quarantine"
    )


def decode_line(
    raw: bytes,
    source: str,
    line_number: int,
    offset: int,
    collect_bad: bool = False,
) -> str:
    """Decode one physical line, rewrapping decode failures with context.

    Args:
        raw: The line's bytes (trailing newline included).
        source: File name for the error message.
        line_number: 1-based physical line number of ``raw``.
        offset: Absolute byte offset of ``raw[0]`` in the file.
        collect_bad: ``False`` (default) raises :class:`CLXError`;
            ``True`` returns a :class:`BadLine` instead, deferring the
            failure to the parse stage (quarantine mode).

    Raises:
        CLXError: On invalid UTF-8 when ``collect_bad`` is false.
    """
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as error:
        message = decode_error_message(raw, error, source, line_number, offset)
        if collect_bad:
            return BadLine(raw.decode("utf-8", errors="replace"), message)
        raise CLXError(message) from None


def iter_decoded_lines(
    handle: IO[bytes],
    source: str,
    first_line: int = 1,
    collect_bad: bool = False,
) -> Iterator[str]:
    """Stream decoded physical lines from a binary handle, with context.

    The handle is read from its current position; byte offsets in error
    messages are absolute (``handle.tell()`` before each line), so the
    same generator serves whole files and seeked byte ranges alike.
    """
    number = first_line - 1
    while True:
        offset = handle.tell()
        raw = handle.readline()
        if not raw:
            return
        number += 1
        yield decode_line(raw, source, number, offset, collect_bad)
