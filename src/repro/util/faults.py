"""Seeded fault-injection seam for the resilience test harness.

Production code calls :func:`maybe_fire` at a handful of named injection
points (worker chunk transform, worker pool init, parent sink write).
With no configuration the call is one module-global check — effectively
free.  The test harness arms faults through two environment variables,
which cross the process boundary into pool workers for free (fork
inherits the environment; spawn re-reads it):

* ``CLX_FAULTS`` — semicolon-separated clauses, each
  ``point:kind:selector[:once]``:

  - ``point`` names the injection site (``worker.chunk``,
    ``worker.init``, ``sink.write`` ...);
  - ``kind`` is what happens: ``crash`` (SIGKILL the current process —
    how a segfaulting or OOM-killed worker looks to the parent),
    ``exit`` (``os._exit``, a worker dying without a traceback),
    ``hang`` (sleep far past any reasonable shard timeout), ``raise``
    (raise :class:`FaultInjected`, a deterministic in-worker error);
  - ``selector`` picks which call fires: ``n=K`` (the K-th matching
    call *in this process*, 1-based), ``k=SUBSTR`` (the call's context
    ``key`` contains ``SUBSTR`` — e.g. a shard's ``path:offset``), or
    ``*`` (every matching call);
  - ``once`` limits the clause to a single firing **across all
    processes**, so a transient fault (crash once, succeed on retry)
    is expressible; without it the clause fires every time it matches
    (a deterministic, poison-style fault).

* ``CLX_FAULTS_DIR`` — a directory for the ``once`` marker files.  The
  marker is claimed with an atomic exclusive create *before* firing, so
  even a fault that kills the process is recorded and never repeats.
  Without the directory, ``once`` is tracked per process only.

Example: crash the worker handling the first chunk of ``part-3.csv``,
one time only::

    CLX_FAULTS="worker.chunk:crash:k=part-3.csv:once" CLX_FAULTS_DIR=/tmp/m ...
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

#: Environment variable holding the fault clauses.
FAULTS_ENV = "CLX_FAULTS"

#: Environment variable naming the cross-process ``once`` marker directory.
FAULTS_DIR_ENV = "CLX_FAULTS_DIR"

#: How long an injected hang sleeps; any sane shard timeout is far below.
HANG_SECONDS = 600.0


class FaultInjected(RuntimeError):
    """The deterministic error raised by a ``raise``-kind fault clause."""


@dataclass(frozen=True)
class _Clause:
    index: int
    point: str
    kind: str
    mode: str  # "n" | "k" | "*"
    nth: int
    needle: str
    once: bool


_KINDS = ("crash", "exit", "hang", "raise")

# Parsed-spec cache plus per-process firing state.  A forked worker
# inherits this state; that is correct (same environment) — the ``n=``
# counters restart per *spawned* worker by design, and cross-process
# ``once`` dedup lives in marker files, not here.
_clauses: Optional[List[_Clause]] = None
_counters: Dict[int, int] = {}
_local_fired: Set[int] = set()


def _parse_spec(spec: str) -> List[_Clause]:
    clauses: List[_Clause] = []
    for index, raw in enumerate(part for part in spec.split(";") if part.strip()):
        fields = [field.strip() for field in raw.split(":")]
        if len(fields) < 3:
            raise ValueError(f"fault clause {raw!r} needs point:kind:selector")
        point, kind, selector = fields[0], fields[1], fields[2]
        flags = fields[3:]
        if kind not in _KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; choose from {', '.join(_KINDS)}")
        if unknown := [flag for flag in flags if flag != "once"]:
            raise ValueError(f"unknown fault flag(s) {unknown!r} in clause {raw!r}")
        mode, nth, needle = "*", 0, ""
        if selector.startswith("n="):
            mode, nth = "n", int(selector[2:])
        elif selector.startswith("k="):
            mode, needle = "k", selector[2:]
        elif selector != "*":
            raise ValueError(f"unknown fault selector {selector!r} (use n=K, k=SUBSTR, or *)")
        clauses.append(
            _Clause(
                index=index, point=point, kind=kind,
                mode=mode, nth=nth, needle=needle, once="once" in flags,
            )
        )
    return clauses


def reset() -> None:
    """Drop the parsed-spec cache and per-process state (for tests)."""
    global _clauses
    _clauses = None
    _counters.clear()
    _local_fired.clear()


def active() -> bool:
    """Whether any fault clause is armed in this process."""
    global _clauses
    if _clauses is None:
        _clauses = _parse_spec(os.environ.get(FAULTS_ENV, ""))
    return bool(_clauses)


def _claim_once(clause: _Clause) -> bool:
    """Atomically claim a single firing of ``clause`` across processes."""
    directory = os.environ.get(FAULTS_DIR_ENV)
    if not directory:
        if clause.index in _local_fired:
            return False
        _local_fired.add(clause.index)
        return True
    marker = os.path.join(directory, f"fired-{clause.index}")
    try:
        handle = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(handle)
    return True


def _fire(clause: _Clause, point: str, key: str) -> None:
    where = f"{point}" + (f" [{key}]" if key else "")
    if clause.kind == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    elif clause.kind == "exit":
        os._exit(23)
    elif clause.kind == "hang":
        deadline = time.monotonic() + HANG_SECONDS
        while time.monotonic() < deadline:  # pragma: no cover - killed externally
            time.sleep(0.05)
    else:  # "raise"
        raise FaultInjected(f"injected fault at {where}")


def maybe_fire(point: str, key: str = "") -> None:
    """Fire any armed fault clause matching ``point`` (and ``key``).

    The hot-path cost with no armed faults is one cached-list check.
    ``key`` is free-form context the caller provides so clauses can
    target one specific unit of work (a shard's ``path:offset``, a
    partition name, ...).
    """
    if not active():
        return
    assert _clauses is not None
    for clause in _clauses:
        if clause.point != point:
            continue
        if clause.mode == "n":
            _counters[clause.index] = _counters.get(clause.index, 0) + 1
            if _counters[clause.index] != clause.nth:
                continue
        elif clause.mode == "k" and clause.needle not in key:
            continue
        if clause.once and not _claim_once(clause):
            continue
        _fire(clause, point, key)


def spec(*clauses: str) -> Tuple[str, str]:
    """Build the ``(env_var, value)`` pair for a set of clauses (tests)."""
    return FAULTS_ENV, ";".join(clauses)
