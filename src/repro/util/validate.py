"""Shared validation of the knobs every scale path exposes.

``workers`` and ``chunk_size`` appear on :meth:`TransformEngine.run_iter`,
:meth:`TransformEngine.run_parallel`, :class:`ShardedExecutor`, the
parallel profiler, and three CLI subcommands.  Before this module each
layer checked them differently (or not at all); these helpers give one
message shape, so a bad value fails the same way no matter which door
it came in through.

:func:`validated_workers` resolves ``None`` to ``os.cpu_count()`` for
the entry points whose contract is "default to all cores"
(``run_parallel``, the executors, ``ParallelProfiler``).  One
deliberate exception: the table APIs (``transform_table`` /
``apply_table``) treat ``workers=None`` as the in-process single pass
for backward compatibility, and only route explicit values through
this check.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.util.errors import ValidationError


def validated_workers(workers: Optional[int], name: str = "workers") -> int:
    """Resolve and validate a worker count.

    ``None`` resolves to ``os.cpu_count()``; anything below 1 (or a
    non-integer) raises :class:`~repro.util.errors.ValidationError`.
    """
    if workers is None:
        return os.cpu_count() or 1
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ValidationError(
            f"{name} must be a positive integer, got {type(workers).__name__}"
        )
    if workers < 1:
        raise ValidationError(f"{name} must be >= 1, got {workers}")
    return workers


def validated_chunk_size(chunk_size: int, name: str = "chunk_size") -> int:
    """Validate a chunk size (must be a positive integer)."""
    if isinstance(chunk_size, bool) or not isinstance(chunk_size, int):
        raise ValidationError(
            f"{name} must be a positive integer, got {type(chunk_size).__name__}"
        )
    if chunk_size < 1:
        raise ValidationError(f"{name} must be >= 1, got {chunk_size}")
    return chunk_size
