"""Shared validation of the knobs every scale path exposes.

``workers`` and ``chunk_size`` appear on :meth:`TransformEngine.run_iter`,
:meth:`TransformEngine.run_parallel`, :class:`ShardedExecutor`, the
parallel profiler, and three CLI subcommands.  Before this module each
layer checked them differently (or not at all); these helpers give one
message shape, so a bad value fails the same way no matter which door
it came in through.

:func:`validated_workers` resolves ``None`` to ``os.cpu_count()`` for
the entry points whose contract is "default to all cores"
(``run_parallel``, the executors, ``ParallelProfiler``).  One
deliberate exception: the table APIs (``transform_table`` /
``apply_table``) treat ``workers=None`` as the in-process single pass
for backward compatibility, and only route explicit values through
this check.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.util.errors import ValidationError


def validated_workers(workers: Optional[int], name: str = "workers") -> int:
    """Resolve and validate a worker count.

    ``None`` resolves to ``os.cpu_count()``; anything below 1 (or a
    non-integer) raises :class:`~repro.util.errors.ValidationError`.
    """
    if workers is None:
        return os.cpu_count() or 1
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ValidationError(
            f"{name} must be a positive integer, got {type(workers).__name__}"
        )
    if workers < 1:
        raise ValidationError(f"{name} must be >= 1, got {workers}")
    return workers


def validated_chunk_size(chunk_size: int, name: str = "chunk_size") -> int:
    """Validate a chunk size (must be a positive integer)."""
    if isinstance(chunk_size, bool) or not isinstance(chunk_size, int):
        raise ValidationError(
            f"{name} must be a positive integer, got {type(chunk_size).__name__}"
        )
    if chunk_size < 1:
        raise ValidationError(f"{name} must be >= 1, got {chunk_size}")
    return chunk_size


def validated_memo_size(memo_size: int, name: str = "memo_size") -> int:
    """Validate a dispatch-memo bound.

    Unlike ``workers``/``chunk_size``, zero is a meaningful value here —
    it disables memoization rather than asking for an empty cache — so
    only negative values and non-integers are rejected.
    """
    if isinstance(memo_size, bool) or not isinstance(memo_size, int):
        raise ValidationError(
            f"{name} must be a non-negative integer, got {type(memo_size).__name__}"
        )
    if memo_size < 0:
        raise ValidationError(f"{name} must be >= 0, got {memo_size}")
    return memo_size


def validated_adaptive_target(
    target_ms: Optional[int], name: str = "adaptive_target_ms"
) -> Optional[int]:
    """Validate an adaptive-chunking latency target in milliseconds.

    ``None`` means adaptive sizing is off (the static ``chunk_size`` /
    ``shard_bytes`` knobs apply); an explicit target must be a positive
    integer — a zero or negative latency band is meaningless.
    """
    if target_ms is None:
        return None
    if isinstance(target_ms, bool) or not isinstance(target_ms, int):
        raise ValidationError(
            f"{name} must be a positive integer, got {type(target_ms).__name__}"
        )
    if target_ms < 1:
        raise ValidationError(f"{name} must be >= 1, got {target_ms}")
    return target_ms
