"""Crash-safe file sinks: same-directory temp file + atomic rename.

A sink that writes directly to its final path can leave a truncated
file behind when the writer dies mid-run.  :class:`AtomicSink` writes
to a hidden temp file *in the same directory* (so the final rename is
within one filesystem and therefore atomic), fsyncs, and renames into
place only on :meth:`commit`.  Any other exit unlinks the temp file,
leaving whatever was previously at the final path untouched.
"""

from __future__ import annotations

import itertools
import json
import os
from pathlib import Path
from types import TracebackType
from typing import IO, Any, Iterable, Optional, Type

_SINK_COUNTER = itertools.count()


def fsync_dir(directory: Path) -> None:
    """Best-effort fsync of a directory so a rename survives power loss."""
    try:
        handle = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(handle)
    except OSError:  # pragma: no cover - filesystem refuses dir fsync
        pass
    finally:
        os.close(handle)


class AtomicSink:
    """A file writer whose final path appears only on commit.

    Text by default; ``binary=True`` opens the temp file in ``"wb"``
    mode for format writers (parquet/arrow sinks) that own the byte
    stream through :attr:`handle`.  Usable as a context manager (commit
    on clean exit, abort on exception) or driven manually via
    :meth:`open` / :meth:`commit` / :meth:`abort` when one orchestrator
    juggles several sinks.
    """

    def __init__(
        self,
        path: Path,
        encoding: str = "utf-8",
        newline: str = "",
        binary: bool = False,
    ) -> None:
        self.path = Path(path)
        self._tmp = self.path.parent / (
            f".{self.path.name}.clx-tmp.{os.getpid()}.{next(_SINK_COUNTER)}"
        )
        self._encoding = encoding
        self._newline = newline
        self._binary = binary
        self._handle: Optional[IO[Any]] = None
        self._done = False

    @property
    def handle(self) -> IO[Any]:
        if self._handle is None:
            if self._done:
                raise ValueError(
                    f"sink for {self.path} is already committed/aborted"
                )
            raise ValueError(f"sink for {self.path} is not open")
        return self._handle

    def open(self) -> "AtomicSink":
        """Open the temp file for writing (idempotent while live).

        A sink is single-use: once :meth:`commit` or :meth:`abort` has
        run, its temp file is gone, so re-opening would silently hand
        back a handleless sink whose next ``write()`` fails with a
        misleading "not open".  Fail here instead, at the reuse site.

        Raises:
            ValueError: If the sink was already committed or aborted.
        """
        if self._done:
            raise ValueError(
                f"sink for {self.path} is already committed/aborted; "
                f"create a new AtomicSink to write again"
            )
        if self._handle is None:
            if self._binary:
                # Columnar sink writers (parquet/arrow footers) own the
                # byte stream; text knobs do not apply.
                self._handle = open(self._tmp, "wb")
            else:
                self._handle = open(
                    self._tmp, "w", encoding=self._encoding, newline=self._newline
                )
        return self

    def write(self, text: str) -> None:
        self.handle.write(text)

    def commit(self) -> None:
        """Flush, fsync, and atomically rename the temp file into place."""
        if self._done:
            return
        self.open()  # an empty commit still produces the (empty) file
        handle = self.handle
        if not handle.closed:  # a format writer may have closed its stream
            handle.flush()
            os.fsync(handle.fileno())
            handle.close()
        self._handle = None
        os.replace(self._tmp, self.path)
        fsync_dir(self.path.parent)
        self._done = True

    def abort(self) -> None:
        """Discard the temp file; the final path is left untouched."""
        if self._done:
            return
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - close of a dead handle
                pass
            self._handle = None
        self._tmp.unlink(missing_ok=True)
        self._done = True

    def __enter__(self) -> "AtomicSink":
        return self.open()

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if exc_type is None:
            self.commit()
        else:
            self.abort()


def write_json_atomic(path: Path, payload: Any) -> None:
    """Serialize ``payload`` as JSON and atomically replace ``path``."""
    with AtomicSink(path) as sink:
        sink.write(json.dumps(payload, indent=2, sort_keys=True))
        sink.write("\n")


def write_lines_atomic(path: Path, lines: Iterable[str]) -> None:
    """Write pre-terminated lines and atomically replace ``path``."""
    with AtomicSink(path) as sink:
        for line in lines:
            sink.write(line)
