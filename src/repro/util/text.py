"""Generic text helpers shared by pattern rendering and reporting."""

from __future__ import annotations

from typing import Iterable, List, Sequence

#: Number of printable ASCII characters; used by the MDL cost of a
#: ``ConstStr`` literal (the paper uses c = 95 in Section 6.3).
PRINTABLE_SIZE = 95


def truncate(value: str, limit: int = 40, ellipsis: str = "…") -> str:
    """Shorten ``value`` to at most ``limit`` characters for display."""
    if limit <= 0:
        raise ValueError("limit must be positive")
    if len(value) <= limit:
        return value
    return value[: max(0, limit - len(ellipsis))] + ellipsis


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a plain-text table with aligned columns.

    Used by the benchmark harness to print the same rows the paper's
    tables report.  Every cell is converted with :func:`str`.
    """
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for idx, cell in enumerate(row):
            if idx < len(widths):
                widths[idx] = max(widths[idx], len(cell))
            else:
                widths.append(len(cell))
    lines = []
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def common_prefix_length(left: str, right: str) -> int:
    """Length of the longest common prefix of two strings."""
    limit = min(len(left), len(right))
    for index in range(limit):
        if left[index] != right[index]:
            return index
    return limit
