"""Lightweight wall-clock timing helpers.

The benchmark harness reports synthesis and clustering latencies; this
module provides a tiny stopwatch abstraction so those measurements do not
depend on ``pytest-benchmark`` being installed when the library is used
programmatically.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass
class Stopwatch:
    """Accumulates named timing samples.

    Example:
        >>> watch = Stopwatch()
        >>> with watch.measure("cluster"):
        ...     _ = sum(range(1000))
        >>> watch.total("cluster") >= 0.0
        True
    """

    samples: Dict[str, List[float]] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager recording the elapsed time under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.samples.setdefault(name, []).append(elapsed)

    def record(self, name: str, seconds: float) -> None:
        """Record an externally-measured sample under ``name``.

        For callers that cannot wrap the timed region in
        :meth:`measure` — e.g. a pipelined executor that stamps a task
        at submission and observes it at the ordered drain.
        """
        self.samples.setdefault(name, []).append(seconds)

    def total(self, name: str) -> float:
        """Total seconds accumulated under ``name`` (0.0 if never used)."""
        return sum(self.samples.get(name, []))

    def count(self, name: str) -> int:
        """Number of samples recorded under ``name``."""
        return len(self.samples.get(name, []))

    def mean(self, name: str) -> float:
        """Mean seconds per sample under ``name`` (0.0 if never used)."""
        values = self.samples.get(name, [])
        if not values:
            return 0.0
        return sum(values) / len(values)
