"""CSV record-boundary detection over physical lines.

The pipelined fan-out layers chunk CSV *lines* without parsing them, so
they need one question answered cheaply and correctly: after this
physical line, is a record still open (i.e. does a quoted field continue
onto the next line)?  Counting quote characters is not enough — the csv
module only treats ``"`` as a quote when it opens a field, so a stray
inch-mark in an unquoted cell (``6" nail``) is literal data, and exactly
that kind of messy value is this project's bread and butter.

:func:`record_open_after` walks a line with the same state machine the
csv module applies (field-start quoting, ``""`` escapes, delimiter
resets), carrying the open/closed state across lines of the same
record.  :func:`record_aligned_offsets` lifts that state machine to
whole files: one sequential quote-parity scan maps any set of byte
targets to the nearest *record* boundaries at or past them, which is
what lets byte-range fan-out shard files whose quoted fields contain
embedded newlines.
"""

from __future__ import annotations

from typing import IO, Callable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.util.errors import ValidationError

QUOTE = '"'
_QUOTE_BYTE = b'"'


def _open_local(path: str) -> IO[bytes]:
    return open(path, "rb")


def resolve_column(header: Sequence[str], column: Union[str, int]) -> str:
    """Resolve a column given by name or zero-based index against a header.

    Accepts a column name, an ``int`` index, or a digit string (how an
    index arrives from the CLI).  Every layer that addresses CSV columns
    (the CLI, the parallel profiler, the table executor) resolves
    through here, so the lookup rules and the error message stay in
    lockstep.

    Raises:
        ValidationError: If the column matches nothing in the header.
    """
    if isinstance(column, int) and not isinstance(column, bool):
        if 0 <= column < len(header):
            return header[column]
    elif isinstance(column, str):
        if column in header:
            return column
        if column.isdigit() and int(column) < len(header):
            return header[int(column)]
    raise ValidationError(
        f"column {column!r} not found; available: {', '.join(header)}"
    )


def record_open_after(line: str, delimiter: str, open_before: bool = False) -> bool:
    """Whether a CSV record is still inside a quoted field after ``line``.

    Args:
        line: One physical line, with or without its trailing newline.
        delimiter: The CSV delimiter.
        open_before: State carried from the previous physical line of
            the same record (``False`` at a record boundary).

    Returns:
        ``True`` when the line ends inside a quoted field, i.e. the
        record continues on the next physical line.
    """
    in_quotes = open_before
    # A quote is only special at the start of a field; when resuming a
    # continuation line we are mid-field by definition.
    field_start = not open_before
    position, length = 0, len(line)
    while position < length:
        char = line[position]
        if in_quotes:
            if char == QUOTE:
                if position + 1 < length and line[position + 1] == QUOTE:
                    position += 2  # "" escape: stays inside the field
                    continue
                in_quotes = False
            position += 1
        else:
            if char == QUOTE:
                if field_start:
                    in_quotes = True
                field_start = False
            elif char == delimiter:
                field_start = True
            elif char not in ("\r", "\n"):
                field_start = False
            position += 1
    return in_quotes


def record_aligned_offsets(
    path: str,
    start: int,
    end: int,
    targets: Sequence[int],
    delimiter: str = ",",
    encoding: str = "utf-8",
    opener: Optional[Callable[[str], IO[bytes]]] = None,
) -> List[int]:
    """Map byte ``targets`` to the record boundaries at or past them.

    One sequential pass over ``path``'s byte range ``[start, end)``
    tracks quote parity with :func:`record_open_after` (``start`` must
    be a true record boundary, e.g. the first data byte after the
    header) and returns, for each target offset, the byte offset of the
    first **record** start at or after it — ``end`` when no further
    record begins before ``end``.  Splitting a file at the returned
    offsets therefore never cuts a quoted field, however many embedded
    newlines its records contain.

    Args:
        path: File path (opened in binary mode).
        start: First byte of the scanned region; a record boundary.
        end: First byte past the scanned region.
        targets: Byte offsets to align, in ascending order.
        delimiter: The CSV delimiter.
        encoding: Text encoding used to decode scanned lines.

    Returns:
        One aligned offset per target, ascending, each in
        ``[start, end]``.
    """
    return [
        offset
        for offset, _ in record_cut_points(
            path, start, end, targets, delimiter=delimiter, encoding=encoding,
            opener=opener,
        )
    ]


def record_cut_points(
    path: str,
    start: int,
    end: int,
    targets: Sequence[int],
    delimiter: str = ",",
    encoding: str = "utf-8",
    first_line: int = 1,
    csv_quoting: bool = True,
    opener: Optional[Callable[[str], IO[bytes]]] = None,
) -> List[Tuple[int, int]]:
    """Like :func:`record_aligned_offsets`, also tracking line numbers.

    Materialized form of :func:`iter_record_cut_points`.
    """
    return list(
        iter_record_cut_points(
            path, start, end, targets, delimiter, encoding, first_line,
            csv_quoting, opener,
        )
    )


def iter_record_cut_points(
    path: str,
    start: int,
    end: int,
    targets: Sequence[int],
    delimiter: str = ",",
    encoding: str = "utf-8",
    first_line: int = 1,
    csv_quoting: bool = True,
    opener: Optional[Callable[[str], IO[bytes]]] = None,
) -> Iterator[Tuple[int, int]]:
    """Stream record-aligned cuts with their line numbers, one per target.

    The cross-partition apply dispatcher plans byte-range shards but
    still owes callers exact error locations, so each aligned cut comes
    out as ``(offset, line_number)`` — the 1-based *physical* line
    number of the line beginning at ``offset``, counted from
    ``first_line`` at ``start``.  Cuts are **yielded as the scan finds
    them**, so a consumer can dispatch work on early cuts while the
    tail of a huge file is still being scanned.  Targets at or past the
    last record start map to ``(end, <line scanning stopped at>)``; the
    resulting empty shard is the caller's to drop.

    Two scanning modes:

    * ``csv_quoting=True`` — full csv record semantics.  The quote
      state machine only runs on lines that *contain* a quote byte (or
      continue an open record); quote-free regions advance at
      ``readline`` speed.
    * ``csv_quoting=False`` — every physical line is a record (JSON
      Lines: a literal newline cannot appear inside a JSON string), so
      alignment is pure newline alignment plus line counting.

    ``opener`` substitutes the binary open (remote partitions hand in
    :func:`~repro.dataset.backends.remote.open_locator`); the default is
    the builtin local open.  Scanned lines decode with
    ``errors="replace"``: a quote is an ASCII byte no invalid sequence
    can swallow, so alignment stays exact over undecodable bytes and
    the *reader* of the shard owns reporting (or quarantining) them.
    """
    remaining = list(targets)
    if any(later < earlier for earlier, later in zip(remaining, remaining[1:])):
        raise ValidationError("record cut-point targets must be ascending")
    line_number = first_line
    open_binary = opener if opener is not None else _open_local
    with open_binary(path) as handle:
        handle.seek(start)
        position = start
        record_open = False
        while remaining and position < end:
            if not record_open:
                while remaining and remaining[0] <= position:
                    yield position, line_number
                    remaining.pop(0)
            line = handle.readline()
            if not line:
                break
            if csv_quoting and (record_open or _QUOTE_BYTE in line):
                record_open = record_open_after(
                    line.decode(encoding, errors="replace"), delimiter, record_open
                )
            line_number += 1
            position = handle.tell()
    for _ in remaining:
        yield end, line_number
