"""Deterministic random-value helpers for synthetic data generation.

The benchmark suite regenerates the paper's datasets synthetically (the
originals are not redistributable), so reproducibility matters: every
generator takes an explicit seed and builds its own
:class:`random.Random` so results never depend on global interpreter
state or on the order in which generators run.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")

#: Default seed used by the benchmark generators when none is supplied.
DEFAULT_SEED = 20190813  # arXiv v4 date of the CLX paper.


def make_rng(seed: int | None = None) -> random.Random:
    """Return a :class:`random.Random` seeded deterministically.

    Args:
        seed: Seed to use.  ``None`` selects :data:`DEFAULT_SEED` (rather
            than OS entropy) so that "unseeded" generators are still
            reproducible run to run.
    """
    return random.Random(DEFAULT_SEED if seed is None else seed)


def weighted_choice(rng: random.Random, options: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one element of ``options`` according to ``weights``.

    Args:
        rng: Source of randomness.
        options: Candidate values; must be non-empty.
        weights: Relative weights, one per option.

    Raises:
        ValueError: If ``options`` is empty or lengths differ.
    """
    if not options:
        raise ValueError("options must be non-empty")
    if len(options) != len(weights):
        raise ValueError("options and weights must have the same length")
    return rng.choices(list(options), weights=list(weights), k=1)[0]


def digits(rng: random.Random, count: int) -> str:
    """Return ``count`` random decimal digits as a string."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return "".join(str(rng.randrange(10)) for _ in range(count))


def letters(rng: random.Random, count: int, upper: bool = False) -> str:
    """Return ``count`` random ASCII letters, lowercase unless ``upper``."""
    if count < 0:
        raise ValueError("count must be non-negative")
    alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ" if upper else "abcdefghijklmnopqrstuvwxyz"
    return "".join(rng.choice(alphabet) for _ in range(count))
