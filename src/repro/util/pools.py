"""Shared process-pool plumbing for the parallel profile and apply paths.

Both fan-out layers (:mod:`repro.clustering.parallel` and
:mod:`repro.engine.parallel`) follow the same discipline: submit tasks
through a **bounded in-flight window** so a generator over a huge file
is pulled at the pace results drain, yield results **strictly in input
order**, and surface a dead worker as a :class:`~repro.util.errors.CLXError`
instead of hanging the parent.  This module is that discipline in one
place.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import Executor, Future
from concurrent.futures.process import BrokenProcessPool
from itertools import islice
from typing import Callable, Deque, Iterable, Iterator, List, Tuple, TypeVar

from repro.util.errors import CLXError

Task = TypeVar("Task")
Result = TypeVar("Result")
Item = TypeVar("Item")
Key = TypeVar("Key")


def chunked(items: Iterable[Item], chunk_size: int) -> Iterator[List[Item]]:
    """Lazily split ``items`` into lists of at most ``chunk_size``."""
    iterator = iter(items)
    while True:
        chunk = list(islice(iterator, chunk_size))
        if not chunk:
            return
        yield chunk


def indexed_chunks(
    items: Iterable[Item], chunk_size: int
) -> Iterator[Tuple[int, List[Item]]]:
    """Like :func:`chunked`, pairing each chunk with its start index."""
    base = 0
    for chunk in chunked(items, chunk_size):
        yield base, chunk
        base += len(chunk)


_BROKEN_POOL_MESSAGE = (
    "a worker process died before returning its result; "
    "the pool is broken and the run was aborted"
)


def checked_result(future: "Future[Result]") -> Result:
    """``future.result()`` with worker death translated into a CLXError.

    ``concurrent.futures`` reports a worker process that died without
    returning (killed, segfaulted, OOM'd) as ``BrokenProcessPool``;
    exceptions *raised* inside a worker propagate with their own type.
    """
    try:
        return future.result()
    except BrokenProcessPool as error:
        raise CLXError(_BROKEN_POOL_MESSAGE) from error


def map_ordered(
    pool: Executor,
    fn: Callable[[Task], Result],
    tasks: Iterable[Task],
    window: int,
) -> Iterator[Result]:
    """Map ``fn`` over ``tasks`` through ``pool``, yielding results in order.

    At most ``window`` tasks are in flight at a time, so ``tasks`` is
    consumed lazily and memory stays proportional to the window size
    regardless of input length.  Results are yielded in submission
    order; a failed task raises (via :func:`checked_result`) at its
    position in the output.
    """
    keyed = ((None, task) for task in tasks)
    return (result for _, result in map_ordered_keyed(pool, fn, keyed, window))


def map_ordered_keyed(
    pool: Executor,
    fn: Callable[[Task], Result],
    keyed_tasks: Iterable[Tuple[Key, Task]],
    window: int,
) -> Iterator[Tuple[Key, Result]]:
    """:func:`map_ordered` over ``(key, task)`` pairs, yielding ``(key, result)``.

    Keys never cross the process boundary: the parent pairs each
    submitted future with its key and re-attaches it when the result
    drains, so tags like a partition index ride along for free.  Same
    bounded window, same strict submission order, same dead-worker
    translation as :func:`map_ordered`.
    """
    pending: "Deque[Tuple[Key, Future]]" = deque()
    for key, task in keyed_tasks:
        # submit() itself raises BrokenProcessPool once a worker has
        # died mid-stream, so it needs the same translation as results.
        try:
            pending.append((key, pool.submit(fn, task)))
        except BrokenProcessPool as error:
            raise CLXError(_BROKEN_POOL_MESSAGE) from error
        if len(pending) >= window:
            ready, future = pending.popleft()
            yield ready, checked_result(future)
    while pending:
        ready, future = pending.popleft()
        yield ready, checked_result(future)
