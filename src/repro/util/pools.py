"""Shared process-pool plumbing for the parallel profile and apply paths.

Both fan-out layers (:mod:`repro.clustering.parallel` and
:mod:`repro.engine.parallel`) follow the same discipline: submit tasks
through a **bounded in-flight window** so a generator over a huge file
is pulled at the pace results drain, yield results **strictly in input
order**, and surface a dead worker as a :class:`~repro.util.errors.CLXError`
instead of hanging the parent.  This module is that discipline in one
place.
"""

from __future__ import annotations

import random
import time
from collections import deque
from concurrent.futures import Executor, Future
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from itertools import islice
from typing import (
    Any,
    Callable,
    Deque,
    Generic,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from repro.util.errors import CLXError, ValidationError

Task = TypeVar("Task")
Result = TypeVar("Result")
Item = TypeVar("Item")
Key = TypeVar("Key")


def chunked(items: Iterable[Item], chunk_size: int) -> Iterator[List[Item]]:
    """Lazily split ``items`` into lists of at most ``chunk_size``."""
    iterator = iter(items)
    while True:
        chunk = list(islice(iterator, chunk_size))
        if not chunk:
            return
        yield chunk


def indexed_chunks(
    items: Iterable[Item], chunk_size: int
) -> Iterator[Tuple[int, List[Item]]]:
    """Like :func:`chunked`, pairing each chunk with its start index."""
    base = 0
    for chunk in chunked(items, chunk_size):
        yield base, chunk
        base += len(chunk)


_BROKEN_POOL_MESSAGE = (
    "a worker process died before returning its result; "
    "the pool is broken and the run was aborted"
)


def checked_result(future: "Future[Result]") -> Result:
    """``future.result()`` with worker death translated into a CLXError.

    ``concurrent.futures`` reports a worker process that died without
    returning (killed, segfaulted, OOM'd) as ``BrokenProcessPool``;
    exceptions *raised* inside a worker propagate with their own type.
    """
    try:
        return future.result()
    except BrokenProcessPool as error:
        raise CLXError(_BROKEN_POOL_MESSAGE) from error


def map_ordered(
    pool: Executor,
    fn: Callable[[Task], Result],
    tasks: Iterable[Task],
    window: int,
) -> Iterator[Result]:
    """Map ``fn`` over ``tasks`` through ``pool``, yielding results in order.

    At most ``window`` tasks are in flight at a time, so ``tasks`` is
    consumed lazily and memory stays proportional to the window size
    regardless of input length.  Results are yielded in submission
    order; a failed task raises (via :func:`checked_result`) at its
    position in the output.
    """
    keyed = ((None, task) for task in tasks)
    return (result for _, result in map_ordered_keyed(pool, fn, keyed, window))


def map_ordered_keyed(
    pool: Executor,
    fn: Callable[[Task], Result],
    keyed_tasks: Iterable[Tuple[Key, Task]],
    window: int,
) -> Iterator[Tuple[Key, Result]]:
    """:func:`map_ordered` over ``(key, task)`` pairs, yielding ``(key, result)``.

    Keys never cross the process boundary: the parent pairs each
    submitted future with its key and re-attaches it when the result
    drains, so tags like a partition index ride along for free.  Same
    bounded window, same strict submission order, same dead-worker
    translation as :func:`map_ordered`.
    """
    pending: "Deque[Tuple[Key, Future]]" = deque()
    for key, task in keyed_tasks:
        # submit() itself raises BrokenProcessPool once a worker has
        # died mid-stream, so it needs the same translation as results.
        try:
            pending.append((key, pool.submit(fn, task)))
        except BrokenProcessPool as error:
            raise CLXError(_BROKEN_POOL_MESSAGE) from error
        if len(pending) >= window:
            ready, future = pending.popleft()
            yield ready, checked_result(future)
    while pending:
        ready, future = pending.popleft()
        yield ready, checked_result(future)


@dataclass(frozen=True)
class FaultPolicy:
    """How a :class:`ResilientPool` reacts to infrastructure failures.

    The defaults — no retries, no timeout — reproduce the historical
    behaviour exactly: the first dead worker aborts the run.  Retries
    apply only to *infrastructure* faults (a worker process dying, or a
    task exceeding ``shard_timeout``); exceptions raised by the task
    function itself are deterministic data errors and propagate
    immediately, never retried.
    """

    max_retries: int = 0
    shard_timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValidationError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.shard_timeout is not None and not self.shard_timeout > 0:
            raise ValidationError(f"shard_timeout must be positive, got {self.shard_timeout}")
        if self.backoff_base < 0:
            raise ValidationError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_cap < self.backoff_base:
            raise ValidationError("backoff_cap must be >= backoff_base")

    @property
    def wants_pool(self) -> bool:
        """Whether the policy only has teeth when tasks run out-of-process."""
        return self.max_retries > 0 or self.shard_timeout is not None

    def backoff_delay(self, attempts: int, rng: random.Random) -> float:
        """Jittered exponential backoff before retry number ``attempts``."""
        if self.backoff_base <= 0:
            return 0.0
        ceiling = min(self.backoff_cap, self.backoff_base * (2 ** (attempts - 1)))
        return ceiling * (0.5 + rng.random() / 2)


class PoolTaskFailure(CLXError):
    """One task exhausted its retries against infrastructure faults."""

    def __init__(
        self, message: str, key: object = None, kind: str = "", attempts: int = 0
    ) -> None:
        super().__init__(message)
        self.key = key
        self.kind = kind
        self.attempts = attempts


def kill_pool(pool: Executor) -> None:
    """Forcibly tear down a process pool without waiting on its tasks.

    ``Executor.shutdown`` joins running workers, which hangs forever on
    a hung or wedged worker.  This terminates the worker processes
    directly (``ProcessPoolExecutor`` keeps them in ``_processes``),
    cancels everything queued, and joins with a bounded deadline,
    escalating to SIGKILL for anything that ignores SIGTERM — so the
    parent never orphans children and never blocks indefinitely.
    """
    process_map = getattr(pool, "_processes", None) or {}
    processes = list(process_map.values())
    for process in processes:
        if process.is_alive():
            process.terminate()
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - shutdown of an already-broken pool
        pass
    deadline = time.monotonic() + 5.0
    for process in processes:
        process.join(timeout=max(0.0, deadline - time.monotonic()))
        if process.is_alive():  # pragma: no cover - SIGTERM ignored
            process.kill()
            process.join(timeout=1.0)


@dataclass
class _Entry(Generic[Key, Task]):
    key: Key
    task: Task
    future: Optional["Future[Any]"] = None
    attempts: int = 0


class ResilientPool(Generic[Task, Result]):
    """A rebuildable process pool with retry, timeout, and poison detection.

    Wraps a pool *factory* rather than a pool, because recovering from a
    dead or hung worker requires killing the broken
    ``ProcessPoolExecutor`` outright and building a fresh one.  The
    mapping discipline matches :func:`map_ordered_keyed` — bounded
    window, strict submission-order yield — with one addition: after any
    infrastructure fault the backlog of in-flight tasks is replayed **in
    serial isolation** (one task in flight at a time).  Isolation makes
    failure attribution exact: when only the head task was running, a
    dead pool names its culprit, so retry budgets are only ever charged
    to the task that actually failed and a poison task is detected
    deterministically instead of taking innocent neighbours down with
    it.
    """

    def __init__(
        self,
        factory: Callable[[], Executor],
        policy: Optional[FaultPolicy] = None,
    ) -> None:
        self._factory = factory
        self._policy = policy or FaultPolicy()
        self._pool: Optional[Executor] = None
        self._rng = random.Random(self._policy.seed)

    @property
    def policy(self) -> FaultPolicy:
        return self._policy

    def _ensure(self) -> Executor:
        if self._pool is None:
            self._pool = self._factory()
        return self._pool

    def close(self) -> None:
        """Graceful shutdown: wait for running tasks, cancel queued ones."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def kill(self) -> None:
        """Hard teardown via :func:`kill_pool`; safe on a hung pool."""
        if self._pool is not None:
            kill_pool(self._pool)
            self._pool = None

    def map_ordered_keyed(
        self,
        fn: Callable[[Task], Result],
        keyed_tasks: Iterable[Tuple[Key, Task]],
        window: int,
        on_failure: Optional[Callable[[Key, Task, str, int], Result]] = None,
    ) -> Iterator[Tuple[Key, Result]]:
        """Ordered bounded-window map with fault recovery.

        Infrastructure faults (worker death, shard timeout) are retried
        up to ``policy.max_retries`` times with jittered exponential
        backoff.  A task that still fails is *poison*: ``on_failure(key,
        task, kind, attempts)`` (kind ``"died"`` or ``"hung"``) either
        returns a substitute result to yield in the task's slot or
        raises; with no handler a :class:`PoolTaskFailure` is raised.
        Exceptions raised *by the task function* propagate immediately
        and are never retried.  ``KeyboardInterrupt``/``SystemExit``
        tear the pool down hard before re-raising.
        """
        policy = self._policy
        entries: Deque[_Entry[Key, Task]] = deque()
        source = iter(keyed_tasks)
        exhausted = False
        # While > 0, only the head task is in flight: the backlog that
        # was in the window when a fault hit is replayed one at a time.
        isolated = 0

        def submit(entry: _Entry[Key, Task]) -> bool:
            try:
                entry.future = self._ensure().submit(fn, entry.task)
            except BrokenProcessPool:
                entry.future = None
                return False
            return True

        def drop_futures() -> None:
            for entry in entries:
                entry.future = None

        while True:
            while not exhausted and not isolated and len(entries) < window:
                try:
                    key, task = next(source)
                except StopIteration:
                    exhausted = True
                    break
                entry: _Entry[Key, Task] = _Entry(key, task)
                entries.append(entry)
                if not submit(entry):
                    # The pool broke under an earlier task; recover below.
                    break
            if not entries:
                return

            head = entries[0]
            solo = isolated > 0
            kind: Optional[str] = None
            if head.future is None and not submit(head):
                kind = "died"
            if kind is None:
                assert head.future is not None
                try:
                    result = head.future.result(timeout=policy.shard_timeout)
                except FuturesTimeout:
                    kind = "hung"
                    solo = True  # only the head is ever waited on: exact blame
                except BrokenProcessPool:
                    kind = "died"
                except (KeyboardInterrupt, SystemExit):
                    self.kill()
                    raise
                else:
                    entries.popleft()
                    if isolated:
                        isolated -= 1
                    yield head.key, result
                    continue

            # Infrastructure fault: hard-kill the (broken or hung) pool,
            # invalidate every in-flight future, replay in isolation.
            self.kill()
            drop_futures()
            if isolated == 0:
                isolated = len(entries)
            if not solo:
                # A windowed pool crash cannot name its culprit; replay
                # serially without charging anyone's retry budget.
                continue
            head.attempts += 1
            if head.attempts <= policy.max_retries:
                delay = policy.backoff_delay(head.attempts, self._rng)
                if delay > 0:
                    time.sleep(delay)
                continue
            entries.popleft()
            if isolated:
                isolated -= 1
            if on_failure is None:
                verb = (
                    "a worker process died running"
                    if kind == "died"
                    else f"a worker exceeded the {policy.shard_timeout:g}s shard timeout on"
                )
                raise PoolTaskFailure(
                    f"{verb} task {head.key!r}; "
                    f"{head.attempts} attempt(s) exhausted and the run was aborted",
                    key=head.key,
                    kind=kind,
                    attempts=head.attempts,
                )
            yield head.key, on_failure(head.key, head.task, kind, head.attempts)
