"""Exception hierarchy for the CLX reproduction.

Every error raised by the library derives from :class:`CLXError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the failing stage (parsing, validation,
synthesis, transformation).
"""

from __future__ import annotations


class CLXError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class PatternParseError(CLXError):
    """Raised when a pattern string cannot be parsed.

    The offending source text is preserved on the ``source`` attribute so
    error reports can show exactly what failed to parse.
    """

    def __init__(self, message: str, source: str | None = None) -> None:
        super().__init__(message)
        self.source = source


class ValidationError(CLXError):
    """Raised when user-supplied input fails validation.

    Examples include an empty dataset handed to the profiler or a target
    pattern that matches no rows when one is required.
    """


class SynthesisError(CLXError):
    """Raised when program synthesis cannot produce any program.

    This typically means no source pattern passed candidate validation or
    the token-alignment DAG admits no path from source to target.
    """


class TransformError(CLXError):
    """Raised when applying a transformation program to a string fails.

    For example, an :class:`~repro.dsl.ast.Extract` whose token indices do
    not exist in the matched string, which indicates a bug or a program
    applied to data it was not synthesized for.
    """


class SerializationError(CLXError):
    """Raised when a serialized program artifact cannot be decoded.

    Covers malformed JSON, unknown format/version markers, and payloads
    whose structure does not describe a valid UniFi program.
    """
