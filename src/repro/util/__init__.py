"""Shared utilities for the CLX reproduction.

This sub-package holds small, dependency-free helpers used across the
library: the exception hierarchy (:mod:`repro.util.errors`), a
deterministic pseudo-random helper used by the synthetic data generators
(:mod:`repro.util.rand`), lightweight timing instrumentation
(:mod:`repro.util.timing`) and generic text helpers
(:mod:`repro.util.text`).
"""

from repro.util.errors import (
    CLXError,
    PatternParseError,
    SynthesisError,
    TransformError,
    ValidationError,
)

__all__ = [
    "CLXError",
    "PatternParseError",
    "SynthesisError",
    "TransformError",
    "ValidationError",
]
