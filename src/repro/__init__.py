"""repro — a reproduction of "CLX: Towards verifiable PBE data transformation".

The package implements the CLX Cluster–Label–Transform paradigm (Jin et
al., 2019) together with every substrate its evaluation depends on:

* ``repro.tokens`` / ``repro.patterns`` — the token & pattern model;
* ``repro.clustering`` — hierarchical pattern profiling (Section 4);
* ``repro.dsl`` — the UniFi DSL, its interpreter, MDL scoring and the
  explanation into regexp Replace operations (Section 5);
* ``repro.synthesis`` — source validation, token alignment, plan
  enumeration/ranking and program repair (Section 6);
* ``repro.core`` — the :class:`CLXSession` interactive API;
* ``repro.engine`` — the stateless execution layer:
  :class:`CompiledProgram` (serializable compile-once artifacts) and
  :class:`TransformEngine` (batch/streaming/table apply);
* ``repro.baselines`` — the FlashFill-style PBE baseline and the
  RegexReplace baseline used in the evaluation (Section 7);
* ``repro.simulation`` — simulated users, the Step effort metric, and the
  verification/comprehension cost models behind the user studies;
* ``repro.bench`` — synthetic dataset generators and the 47-task
  benchmark suite.

Quickstart:
    >>> from repro import CLXSession
    >>> session = CLXSession(["(734) 645-8397", "734-422-8073", "734.236.3466"])
    >>> _ = session.label_target_from_string("(734) 645-8397")
    >>> report = session.transform()
    >>> report.outputs
    ['(734) 645-8397', '(734) 422-8073', '(734) 236-3466']
"""

from repro.clustering import (
    ColumnProfile,
    IncrementalProfiler,
    ParallelProfiler,
    PatternHierarchy,
    PatternProfiler,
    profile,
    profile_stream,
)
from repro.core import CLXSession, TransformReport, transform_column
from repro.dsl import (
    AtomicPlan,
    Branch,
    ConstStr,
    ContainsGuard,
    Extract,
    ReplaceOperation,
    UniFiProgram,
    apply_program,
    explain_program,
)
from repro.dataset import Dataset, DatasetPart, resolve_dataset
from repro.engine import (
    ArtifactCache,
    ArtifactRegistry,
    CompiledProgram,
    DatasetApplyResult,
    RegistryEntry,
    ShardedExecutor,
    ShardedTableExecutor,
    TransformEngine,
    apply_dataset,
    compile_program,
)
from repro.patterns import Pattern, parse_pattern, pattern_of_string
from repro.synthesis import SynthesisResult, Synthesizer, synthesize
from repro.tokens import Token, TokenClass, tokenize
from repro.util.errors import (
    CLXError,
    PatternParseError,
    SerializationError,
    SynthesisError,
    TransformError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "AtomicPlan",
    "Branch",
    "CLXError",
    "CLXSession",
    "ColumnProfile",
    "ArtifactCache",
    "ArtifactRegistry",
    "CompiledProgram",
    "ConstStr",
    "ContainsGuard",
    "Dataset",
    "DatasetApplyResult",
    "DatasetPart",
    "Extract",
    "IncrementalProfiler",
    "ParallelProfiler",
    "Pattern",
    "PatternHierarchy",
    "PatternParseError",
    "PatternProfiler",
    "RegistryEntry",
    "ReplaceOperation",
    "SerializationError",
    "ShardedExecutor",
    "ShardedTableExecutor",
    "SynthesisError",
    "SynthesisResult",
    "Synthesizer",
    "Token",
    "TokenClass",
    "TransformEngine",
    "TransformError",
    "TransformReport",
    "UniFiProgram",
    "ValidationError",
    "__version__",
    "apply_dataset",
    "apply_program",
    "compile_program",
    "explain_program",
    "parse_pattern",
    "pattern_of_string",
    "profile",
    "profile_stream",
    "resolve_dataset",
    "synthesize",
    "tokenize",
    "transform_column",
]
