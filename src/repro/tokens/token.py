"""The :class:`Token` value object.

A token is the unit of a pattern: a token class plus a quantifier.  The
quantifier is either a positive integer (exactly that many characters of
the class) or the sentinel ``PLUS`` meaning "one or more".  Literal
tokens carry a constant string instead of a character class.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Union

from repro.tokens.classes import TokenClass

#: Quantifier sentinel meaning "one or more occurrences".
PLUS = "+"

Quantifier = Union[int, str]


@dataclass(frozen=True)
class Token:
    """One element of a data pattern.

    Attributes:
        klass: The token class (:class:`~repro.tokens.classes.TokenClass`).
        quantifier: Either a positive ``int`` (exact repetition count) or
            the string ``"+"`` (at least one).  Literal tokens always use
            quantifier 1 — their length is the length of ``literal``.
        literal: The constant text of a literal token, ``None`` for base
            tokens.
    """

    klass: TokenClass
    quantifier: Quantifier = 1
    literal: Optional[str] = None

    def __post_init__(self) -> None:
        if self.klass is TokenClass.LITERAL:
            if not self.literal:
                raise ValueError("literal tokens require non-empty literal text")
        else:
            if self.literal is not None:
                raise ValueError("base tokens must not carry literal text")
            if self.quantifier != PLUS:
                if not isinstance(self.quantifier, int) or self.quantifier < 1:
                    raise ValueError(
                        f"quantifier must be a positive int or '+', got {self.quantifier!r}"
                    )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def base(klass: TokenClass, quantifier: Quantifier = 1) -> "Token":
        """Create a base-class token with the given quantifier."""
        if klass is TokenClass.LITERAL:
            raise ValueError("use Token.lit() for literal tokens")
        return Token(klass=klass, quantifier=quantifier)

    @staticmethod
    def lit(text: str) -> "Token":
        """Create a literal (constant value) token."""
        return Token(klass=TokenClass.LITERAL, quantifier=1, literal=text)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_literal(self) -> bool:
        """True for literal/constant tokens."""
        return self.klass is TokenClass.LITERAL

    @property
    def is_plus(self) -> bool:
        """True if the quantifier is the '+' sentinel."""
        return self.quantifier == PLUS

    @property
    def fixed_length(self) -> Optional[int]:
        """Number of characters this token always matches, or ``None``.

        Literal tokens match exactly their text; base tokens with a
        numeric quantifier match exactly that many characters; ``+``
        tokens have no fixed length.
        """
        if self.is_literal:
            assert self.literal is not None
            return len(self.literal)
        if self.is_plus:
            return None
        return int(self.quantifier)

    def matches_text(self, text: str) -> bool:
        """Whether ``text`` is exactly one occurrence of this token."""
        if self.is_literal:
            return text == self.literal
        if not text:
            return False
        if not all(self.klass.accepts_char(char) for char in text):
            return False
        if self.is_plus:
            return True
        return len(text) == int(self.quantifier)

    def syntactically_similar(self, other: "Token") -> bool:
        """Definition 6.1: same class and compatible quantifiers.

        Two tokens are syntactically similar when they have the same
        class and their quantifiers are identical natural numbers, or one
        of them is ``+`` and the other is a natural number (or both are
        ``+``).  Two literal tokens are similar only when their text
        matches.  A literal token is additionally similar to a base token
        whose class accepts every character of the literal with a
        compatible length — this lets constant-promoted source tokens
        (e.g. a ``'CPT'`` literal) still be extracted into base target
        tokens such as ``<U>+``.
        """
        if self.is_literal and other.is_literal:
            return self.literal == other.literal
        if self.is_literal != other.is_literal:
            lit = self if self.is_literal else other
            base = other if self.is_literal else self
            assert lit.literal is not None
            if not all(base.klass.accepts_char(char) for char in lit.literal):
                return False
            if base.is_plus:
                return True
            return int(base.quantifier) == len(lit.literal)
        if self.klass is not other.klass:
            return False
        if self.is_plus or other.is_plus:
            return True
        return int(self.quantifier) == int(other.quantifier)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_regex(self) -> str:
        """Regex fragment matching one occurrence of this token."""
        if self.is_literal:
            assert self.literal is not None
            return re.escape(self.literal)
        base = self.klass.char_regex
        if self.is_plus:
            return f"{base}+"
        count = int(self.quantifier)
        if count == 1:
            return base
        return f"{base}{{{count}}}"

    def notation(self) -> str:
        """Compact notation used in the paper, e.g. ``<D>3`` or ``'-'``.

        Literal text escapes backslashes and single quotes so the
        rendered notation can always be re-parsed by
        :func:`repro.patterns.parse.parse_pattern`.
        """
        if self.is_literal:
            assert self.literal is not None
            escaped = self.literal.replace("\\", "\\\\").replace("'", "\\'")
            return f"'{escaped}'"
        suffix: str
        if self.is_plus:
            suffix = "+"
        elif int(self.quantifier) == 1:
            suffix = ""
        else:
            suffix = str(self.quantifier)
        return f"{self.klass.notation}{suffix}"

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return self.notation()
