"""Token classes supported by the CLX instantiation (paper Table 2).

The paper defines five *base* token classes plus *literal* tokens that
hold constant values (single punctuation characters or constant strings
discovered statistically).  Each base class carries the regular
expression used when a pattern is compiled to an anchored regex and the
angle-bracket notation used when a pattern is shown to the user.

======================  ==================  ========  =========
Class                   Regular expression  Example   Notation
======================  ==================  ========  =========
``DIGIT``               ``[0-9]``           "12"      ``<D>``
``LOWER``               ``[a-z]``           "car"     ``<L>``
``UPPER``               ``[A-Z]``           "IBM"     ``<U>``
``ALPHA``               ``[a-zA-Z]``        "Excel"   ``<A>``
``ALNUM``               ``[a-zA-Z0-9_-]``   "Excel2"  ``<AN>``
======================  ==================  ========  =========
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Tuple


class TokenClass(Enum):
    """Enumeration of the token classes used throughout the library.

    The five base classes come from Table 2 of the paper.  ``LITERAL``
    represents tokens with a constant value (punctuation characters and
    constant strings discovered during profiling); literal tokens carry
    their text in :attr:`repro.tokens.token.Token.literal`.
    """

    DIGIT = "digit"
    LOWER = "lower"
    UPPER = "upper"
    ALPHA = "alpha"
    ALNUM = "alphanumeric"
    LITERAL = "literal"

    @property
    def notation(self) -> str:
        """Angle-bracket notation used in patterns shown to the user."""
        return _NOTATION[self]

    @property
    def char_regex(self) -> str:
        """Regex character class matching one character of this class."""
        return _CHAR_REGEX[self]

    @property
    def is_base(self) -> bool:
        """True for the five base classes, False for ``LITERAL``."""
        return self is not TokenClass.LITERAL

    def accepts_char(self, char: str) -> bool:
        """Whether a single character belongs to this class.

        Literal tokens accept nothing here because their membership is by
        exact value, not by character class.
        """
        if self is TokenClass.DIGIT:
            return char.isdigit() and char.isascii()
        if self is TokenClass.LOWER:
            return char.islower() and char.isalpha() and char.isascii()
        if self is TokenClass.UPPER:
            return char.isupper() and char.isalpha() and char.isascii()
        if self is TokenClass.ALPHA:
            return char.isalpha() and char.isascii()
        if self is TokenClass.ALNUM:
            return (char.isalnum() and char.isascii()) or char in "-_"
        return False

    def generalizes(self, other: "TokenClass") -> bool:
        """Whether this class is equal to or strictly more general than ``other``.

        The generalization lattice follows the paper's refinement
        strategies: ``LOWER``/``UPPER`` generalize to ``ALPHA``;
        ``ALPHA``/``DIGIT`` (and the ``-``/``_`` literals handled at the
        pattern level) generalize to ``ALNUM``.
        """
        if self is other:
            return True
        if self is TokenClass.ALPHA:
            return other in (TokenClass.LOWER, TokenClass.UPPER)
        if self is TokenClass.ALNUM:
            return other in (
                TokenClass.LOWER,
                TokenClass.UPPER,
                TokenClass.ALPHA,
                TokenClass.DIGIT,
            )
        return False


_NOTATION: Dict[TokenClass, str] = {
    TokenClass.DIGIT: "<D>",
    TokenClass.LOWER: "<L>",
    TokenClass.UPPER: "<U>",
    TokenClass.ALPHA: "<A>",
    TokenClass.ALNUM: "<AN>",
    TokenClass.LITERAL: "",
}

_CHAR_REGEX: Dict[TokenClass, str] = {
    TokenClass.DIGIT: "[0-9]",
    TokenClass.LOWER: "[a-z]",
    TokenClass.UPPER: "[A-Z]",
    TokenClass.ALPHA: "[a-zA-Z]",
    TokenClass.ALNUM: "[a-zA-Z0-9_-]",
    TokenClass.LITERAL: "",
}

#: The five base classes in the order the paper lists them (Table 2).
ALL_BASE_CLASSES: Tuple[TokenClass, ...] = (
    TokenClass.DIGIT,
    TokenClass.LOWER,
    TokenClass.UPPER,
    TokenClass.ALPHA,
    TokenClass.ALNUM,
)

#: Parent class for each base class under one refinement step, used by the
#: agglomerative refinement strategies in Section 4.2.
GENERALIZATION_ORDER: Dict[TokenClass, TokenClass] = {
    TokenClass.LOWER: TokenClass.ALPHA,
    TokenClass.UPPER: TokenClass.ALPHA,
    TokenClass.ALPHA: TokenClass.ALNUM,
    TokenClass.DIGIT: TokenClass.ALNUM,
}

#: Notation string → token class, for the pattern parser.
NOTATION_TO_CLASS: Dict[str, TokenClass] = {
    "<D>": TokenClass.DIGIT,
    "<L>": TokenClass.LOWER,
    "<U>": TokenClass.UPPER,
    "<A>": TokenClass.ALPHA,
    "<AN>": TokenClass.ALNUM,
    # Alternative notations found in the paper text.
    "<N>": TokenClass.DIGIT,
}


def most_precise_class(text: str) -> TokenClass:
    """Return the most precise base class describing every character of ``text``.

    Mirrors the tokenization rule "always choose the most precise base
    type" (Section 4.1): a run of lowercase letters is ``LOWER`` rather
    than ``ALPHA`` or ``ALNUM``.

    Raises:
        ValueError: If ``text`` is empty or no base class covers it.
    """
    if not text:
        raise ValueError("cannot classify an empty string")
    for klass in ALL_BASE_CLASSES:
        if all(klass.accepts_char(char) for char in text):
            return klass
    raise ValueError(f"no base token class covers {text!r}")
