"""Tokenizer converting raw strings into token sequences (Section 4.1).

Tokenization rules, quoted from the paper:

* every non-alphanumeric character becomes an individual literal token;
* runs of alphanumeric characters are split into maximal runs of a single
  most-precise base class (digits, lowercase, uppercase);
* quantifiers produced here are always natural numbers (the leaf level of
  the pattern hierarchy).

Example:
    >>> from repro.tokens import tokenize
    >>> [t.notation() for t in tokenize("Bob123@gmail.com")]
    ['<U>', '<L>2', '<D>3', "'@'", '<L>5', "'.'", '<L>3']
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.tokens.classes import TokenClass
from repro.tokens.token import Token


def _char_class(char: str) -> TokenClass | None:
    """Most precise base class of a single character, or None for punctuation."""
    if char.isascii() and char.isdigit():
        return TokenClass.DIGIT
    if char.isascii() and char.isalpha():
        return TokenClass.LOWER if char.islower() else TokenClass.UPPER
    return None


def tokenize(value: str) -> List[Token]:
    """Tokenize one raw string into its leaf-level token sequence.

    Args:
        value: The raw cell value.  The empty string tokenizes to an empty
            list (the profiler groups empty strings into their own
            cluster).

    Returns:
        A list of :class:`~repro.tokens.token.Token` with natural-number
        quantifiers; non-alphanumeric characters appear as single-character
        literal tokens.
    """
    tokens: List[Token] = []
    index = 0
    length = len(value)
    while index < length:
        char = value[index]
        klass = _char_class(char)
        if klass is None:
            tokens.append(Token.lit(char))
            index += 1
            continue
        run_start = index
        while index < length and _char_class(value[index]) is klass:
            index += 1
        tokens.append(Token.base(klass, index - run_start))
    return tokens


def tokenize_all(values: Iterable[str]) -> List[List[Token]]:
    """Tokenize every string in ``values`` (convenience wrapper)."""
    return [tokenize(value) for value in values]


def detokenize_lengths(tokens: Sequence[Token]) -> List[int]:
    """Return the character length contributed by each token.

    Only valid for leaf-level tokens (numeric quantifiers); ``+`` tokens
    raise ``ValueError`` because their length is data dependent.
    """
    lengths: List[int] = []
    for token in tokens:
        fixed = token.fixed_length
        if fixed is None:
            raise ValueError("cannot compute lengths for '+' quantified tokens")
        lengths.append(fixed)
    return lengths


def split_by_tokens(value: str, tokens: Sequence[Token]) -> List[str]:
    """Split ``value`` into the substrings covered by each leaf token.

    Args:
        value: The original string.
        tokens: Its leaf tokenization (as returned by :func:`tokenize`).

    Returns:
        One substring per token, concatenating back to ``value``.

    Raises:
        ValueError: If the token lengths do not add up to ``len(value)``.
    """
    lengths = detokenize_lengths(tokens)
    if sum(lengths) != len(value):
        raise ValueError("token lengths do not cover the input string")
    pieces: List[str] = []
    cursor = 0
    for length in lengths:
        pieces.append(value[cursor : cursor + length])
        cursor += length
    return pieces
