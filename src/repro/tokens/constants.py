"""Constant-token discovery (the "Find Constant Tokens" step of Section 4.1).

Some base tokens in the discovered patterns carry constant values across
the whole cluster — for example the "Dr." prefix in a faculty name list.
Representing them by their constant value instead of their base class
yields better patterns and better programs.  Following the paper (which
cites LearnPADS), we detect constants with simple statistics over the
tokenized strings: a token position whose observed values are dominated
by one string (above a frequency threshold) is promoted to a literal.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.tokens.token import Token
from repro.tokens.tokenizer import split_by_tokens

#: Fraction of rows in a cluster that must share the same token value for
#: the token to be promoted to a constant.
DEFAULT_CONSTANT_THRESHOLD = 0.9

#: Never promote tokens whose constant value would be longer than this —
#: very long constants are almost always data, not structure.
MAX_CONSTANT_LENGTH = 12

#: Minimum number of rows a cluster must have before any promotion runs.
#: With fewer rows the "statistics" degenerate (a singleton cluster would
#: promote every position) and the resulting all-literal patterns defeat
#: the purpose of pattern profiling.
DEFAULT_MIN_ROWS = 3


def discover_constant_tokens(
    values: Sequence[str],
    tokenizations: Sequence[Sequence[Token]],
    threshold: float = DEFAULT_CONSTANT_THRESHOLD,
    min_rows: int = DEFAULT_MIN_ROWS,
) -> Dict[int, str]:
    """Find token positions holding a constant value across ``values``.

    All ``tokenizations`` must share the same token-class *shape* (same
    classes in the same positions) — callers pass the members of a single
    leaf pattern cluster, which satisfy this by construction.

    Args:
        values: Raw strings of one pattern cluster.
        tokenizations: Leaf tokenization of each string, parallel to
            ``values``.
        threshold: Minimum fraction of rows sharing a value for promotion.
        min_rows: Minimum cluster size before promotion is considered.

    Returns:
        Mapping from token index to the constant string at that index.
        Dominant values that are purely digits are never promoted: digit
        runs (phone prefixes, years, ids) are data, not structure, and
        promoting them makes patterns brittle without improving the
        synthesized programs.
    """
    if not values or len(values) < min_rows:
        return {}
    if len(values) != len(tokenizations):
        raise ValueError("values and tokenizations must be parallel")
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")

    token_count = len(tokenizations[0])
    per_position: List[Counter] = [Counter() for _ in range(token_count)]
    for value, tokens in zip(values, tokenizations):
        if len(tokens) != token_count:
            raise ValueError("all tokenizations must have the same length")
        pieces = split_by_tokens(value, tokens)
        for index, piece in enumerate(pieces):
            per_position[index][piece] += 1

    constants: Dict[int, str] = {}
    total = len(values)
    for index, counter in enumerate(per_position):
        token = tokenizations[0][index]
        if token.is_literal:
            continue  # Already constant by construction.
        text, count = counter.most_common(1)[0]
        if text.isdigit():
            continue
        if count / total >= threshold and len(text) <= MAX_CONSTANT_LENGTH:
            constants[index] = text
    return constants


def promote_constants(
    tokens: Sequence[Token], constants: Dict[int, str]
) -> List[Token]:
    """Return a copy of ``tokens`` with the given positions made literal.

    Args:
        tokens: Token sequence of a pattern.
        constants: Mapping produced by :func:`discover_constant_tokens`.
    """
    promoted: List[Token] = []
    for index, token in enumerate(tokens):
        if index in constants and not token.is_literal:
            promoted.append(Token.lit(constants[index]))
        else:
            promoted.append(token)
    return promoted


def constant_positions(tokens: Sequence[Token]) -> Tuple[int, ...]:
    """Indices of literal tokens in ``tokens`` (useful for tests)."""
    return tuple(index for index, token in enumerate(tokens) if token.is_literal)
