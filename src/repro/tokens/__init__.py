"""Token model and tokenizer (paper Section 3.1 and 4.1).

A *token* is a maximal run of characters of a single class — digits,
lowercase letters, uppercase letters, or a single non-alphanumeric
character — together with a quantifier.  Patterns (``repro.patterns``)
are sequences of tokens; the tokenizer here produces the leaf-level
pattern of a raw string.
"""

from repro.tokens.classes import (
    ALL_BASE_CLASSES,
    GENERALIZATION_ORDER,
    TokenClass,
    most_precise_class,
)
from repro.tokens.token import Token
from repro.tokens.tokenizer import tokenize, tokenize_all
from repro.tokens.constants import discover_constant_tokens, promote_constants

__all__ = [
    "ALL_BASE_CLASSES",
    "GENERALIZATION_ORDER",
    "Token",
    "TokenClass",
    "discover_constant_tokens",
    "most_precise_class",
    "promote_constants",
    "tokenize",
    "tokenize_all",
]
