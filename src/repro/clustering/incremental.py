"""Constant-memory, mergeable pattern profiling (the scale path of Cluster).

:class:`~repro.clustering.profiler.PatternProfiler` materializes every
value: each leaf :class:`~repro.clustering.cluster.PatternCluster` keeps
the full list of raw strings it covers, so profiling a column costs
memory proportional to the column.  That is fine for the interactive
sessions of the paper's user studies and fatal for the ROADMAP's
"millions of rows" workloads, where Cluster is the first step every byte
of data must pass through.

This module profiles in one pass over any iterable with *bounded*
memory.  Per distinct leaf tokenization it keeps

* the row **count** (cluster sizes stay exact),
* a capped first-seen **exemplar reservoir** (what previews and
  ``describe`` actually need), and
* a per-token-position **constant tracker** — the piece of the first
  value at each position, demoted to "varied" the moment any row
  disagrees — which makes constant-token promotion at the profiler's
  default dominance threshold of 1.0 exact without storing values.

The accumulated state is a :class:`ColumnProfile`.  Profiles built over
different shards of the same column **merge** (:meth:`ColumnProfile.merge`,
associative and commutative on counts and patterns), so a column can be
profiled in parallel and combined; :meth:`ColumnProfile.to_hierarchy`
lowers the profile into the ordinary
:class:`~repro.clustering.hierarchy.PatternHierarchy`, producing the same
leaf patterns, counts and refinement layers as the batch profiler, so
:class:`~repro.core.session.CLXSession` and the synthesizer work
unchanged on top of it (see :meth:`CLXSession.from_profile`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.clustering.cluster import PatternCluster
from repro.clustering.hierarchy import HierarchyNode, PatternHierarchy
from repro.clustering.refine import refine_layer
from repro.patterns.generalize import GENERALIZATION_STRATEGIES, GeneralizationStrategy
from repro.patterns.pattern import Pattern
from repro.tokens.constants import DEFAULT_MIN_ROWS, MAX_CONSTANT_LENGTH, promote_constants
from repro.tokens.tokenizer import split_by_tokens, tokenize
from repro.util.errors import ValidationError

#: Default number of distinct sample values retained per leaf cluster.
#: Previews show at most 3, so a small reservoir is plenty; it only
#: bounds *samples*, never counts or patterns.
DEFAULT_EXEMPLAR_CAP = 8


@dataclass
class SampledCluster(PatternCluster):
    """A leaf cluster standing on a row count plus capped exemplars.

    Unlike its parent class, ``values`` holds only the exemplar
    reservoir; :attr:`size` reports the true row count, so hierarchy
    statistics (``node.size``, ``total_rows``, summary ordering) remain
    exact while memory stays bounded.
    """

    row_count: int = 0

    @property
    def size(self) -> int:
        """Number of rows observed for this cluster (not exemplars kept)."""
        return self.row_count


class _LeafAccumulator:
    """Bounded per-leaf-pattern state: count, exemplars, constant tracker."""

    __slots__ = ("pattern", "count", "exemplars", "_exemplar_set", "pieces", "_live")

    def __init__(self, pattern: Pattern, track_constants: bool) -> None:
        self.pattern = pattern
        self.count = 0
        self.exemplars: List[str] = []
        self._exemplar_set: set = set()
        # pieces[i] is the constant string at token position i while every
        # row so far agrees, None once positions diverge.  Literal token
        # positions are constant by construction and never promoted, so
        # they are born None to keep the liveness check cheap.
        self.pieces: Optional[List[Optional[str]]] = None
        self._live = track_constants

    def add(self, value: str, exemplar_cap: int) -> None:
        self.count += 1
        if len(self.exemplars) < exemplar_cap and value not in self._exemplar_set:
            self.exemplars.append(value)
            self._exemplar_set.add(value)
        if not self._live:
            return
        observed = split_by_tokens(value, self.pattern.tokens)
        if self.pieces is None:
            self.pieces = [
                None if token.is_literal else piece
                for token, piece in zip(self.pattern.tokens, observed)
            ]
        else:
            pieces = self.pieces
            for index, piece in enumerate(observed):
                if pieces[index] is not None and pieces[index] != piece:
                    pieces[index] = None
        self._live = any(piece is not None for piece in self.pieces)

    def merge_into(self, other: "_LeafAccumulator", exemplar_cap: int) -> None:
        """Fold ``other``'s state into this accumulator (same pattern)."""
        self.count += other.count
        for value in other.exemplars:
            if len(self.exemplars) >= exemplar_cap:
                break
            if value not in self._exemplar_set:
                self.exemplars.append(value)
                self._exemplar_set.add(value)
        if self.pieces is None or other.pieces is None:
            # A side without a tracker made no constant claims, and a
            # position is constant only when verified against *every*
            # row — so an untracked side poisons every position.  (With
            # matching configurations both sides always track, so this
            # is a safety net, not a live path.)
            self.pieces = None
        else:
            self.pieces = [
                mine if mine is not None and mine == theirs else None
                for mine, theirs in zip(self.pieces, other.pieces)
            ]
        self._live = self.pieces is not None and any(
            piece is not None for piece in self.pieces
        )

    def copy(self) -> "_LeafAccumulator":
        duplicate = _LeafAccumulator(self.pattern, track_constants=self._live)
        duplicate.count = self.count
        duplicate.exemplars = list(self.exemplars)
        duplicate._exemplar_set = set(self._exemplar_set)
        duplicate.pieces = list(self.pieces) if self.pieces is not None else None
        duplicate._live = self._live
        return duplicate


class ColumnProfile:
    """Bounded-memory profile of one column: counts, exemplars, constants.

    Build one through :class:`IncrementalProfiler` (or feed values
    directly via :meth:`observe`).  Profiles over shards of the same
    column combine with :meth:`merge` — counts add, exemplar reservoirs
    concatenate up to the cap, and the constant trackers intersect — and
    :meth:`to_hierarchy` lowers the combined state into a standard
    :class:`~repro.clustering.hierarchy.PatternHierarchy`.

    Args:
        exemplar_cap: Distinct sample values kept per leaf cluster.
        discover_constants: Track and promote constant token positions
            (exact at the batch profiler's default threshold of 1.0).
        strategies: Generalization strategies for the refinement rounds
            applied at lowering time.
    """

    def __init__(
        self,
        exemplar_cap: int = DEFAULT_EXEMPLAR_CAP,
        discover_constants: bool = True,
        strategies: Sequence[GeneralizationStrategy] = GENERALIZATION_STRATEGIES,
    ) -> None:
        if exemplar_cap < 1:
            raise ValidationError(f"exemplar_cap must be positive, got {exemplar_cap}")
        self._exemplar_cap = exemplar_cap
        self._discover_constants = discover_constants
        self._strategies = tuple(strategies)
        self._clusters: Dict[Pattern, _LeafAccumulator] = {}
        self._row_count = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        """Total number of values observed."""
        return self._row_count

    @property
    def cluster_count(self) -> int:
        """Number of distinct leaf tokenizations observed."""
        return len(self._clusters)

    @property
    def exemplar_cap(self) -> int:
        """Maximum distinct sample values kept per leaf cluster."""
        return self._exemplar_cap

    @property
    def discover_constants(self) -> bool:
        """Whether constant-token positions are tracked and promoted."""
        return self._discover_constants

    @property
    def strategies(self) -> tuple:
        """Generalization strategies applied when lowering to a hierarchy."""
        return self._strategies

    def leaf_counts(self) -> Dict[Pattern, int]:
        """Row count per raw (pre-promotion) leaf pattern."""
        return {pattern: acc.count for pattern, acc in self._clusters.items()}

    def fingerprint(self) -> str:
        """Content hash of everything that determines the lowered hierarchy.

        Two profiles with the same fingerprint lower to the same
        :class:`PatternHierarchy` (up to exemplar selection) and
        therefore synthesize the same program for a given target: the
        hash covers the leaf patterns, their row counts, the surviving
        constant-tracker pieces (which decide constant promotion), and
        the configuration knobs that shape lowering.  This is the
        column half of the artifact cache key used by
        :class:`~repro.engine.cache.ArtifactCache`.
        """
        import hashlib
        import json

        entries = sorted(
            (pattern.notation(), accumulator.count, accumulator.pieces)
            for pattern, accumulator in self._clusters.items()
        )
        payload = json.dumps(
            {
                "rows": self._row_count,
                "clusters": entries,
                "discover_constants": self._discover_constants,
                "strategies": [
                    getattr(strategy, "__name__", repr(strategy))
                    for strategy in self._strategies
                ],
            },
            sort_keys=True,
            ensure_ascii=False,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnProfile(rows={self._row_count}, clusters={len(self._clusters)})"

    # ------------------------------------------------------------------
    # Accumulation
    # ------------------------------------------------------------------
    def observe(self, value: str) -> None:
        """Fold one raw value into the profile."""
        value = str(value)
        tokens = tokenize(value)
        pattern = Pattern(tokens)
        accumulator = self._clusters.get(pattern)
        if accumulator is None:
            accumulator = _LeafAccumulator(pattern, track_constants=self._discover_constants)
            self._clusters[pattern] = accumulator
        accumulator.add(value, self._exemplar_cap)
        self._row_count += 1

    def observe_all(self, values: Iterable[str]) -> "ColumnProfile":
        """Fold every value of ``values`` into the profile; returns self."""
        for value in values:
            self.observe(value)
        return self

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "ColumnProfile") -> None:
        if not isinstance(other, ColumnProfile):
            raise ValidationError(
                f"can only merge ColumnProfile with ColumnProfile, got {type(other).__name__}"
            )
        if (
            self._exemplar_cap != other._exemplar_cap
            or self._discover_constants != other._discover_constants
            or self._strategies != other._strategies
        ):
            raise ValidationError(
                "cannot merge profiles built with different configurations "
                "(exemplar_cap / discover_constants / strategies must match)"
            )

    def merge(self, other: "ColumnProfile") -> "ColumnProfile":
        """Combine two shard profiles into a new profile (inputs untouched).

        Counts add exactly, so shard-then-merge profiling yields the same
        leaf patterns and sizes as profiling the whole column at once;
        only the exemplar *selection* may differ when a reservoir fills.
        The operation is associative, so any merge tree over the shards
        of a column produces the same profile.
        """
        self._check_compatible(other)
        merged = ColumnProfile(
            exemplar_cap=self._exemplar_cap,
            discover_constants=self._discover_constants,
            strategies=self._strategies,
        )
        for source in (self, other):
            for pattern, accumulator in source._clusters.items():
                existing = merged._clusters.get(pattern)
                if existing is None:
                    merged._clusters[pattern] = accumulator.copy()
                else:
                    existing.merge_into(accumulator, self._exemplar_cap)
        merged._row_count = self._row_count + other._row_count
        return merged

    @classmethod
    def merge_all(cls, profiles: Sequence["ColumnProfile"]) -> "ColumnProfile":
        """Merge any number of shard profiles (at least one required).

        Always returns a fresh profile, never an alias of an input —
        including for a single-element sequence.
        """
        if not profiles:
            raise ValidationError("merge_all needs at least one profile")
        first = profiles[0]
        merged = cls(
            exemplar_cap=first.exemplar_cap,
            discover_constants=first.discover_constants,
            strategies=first.strategies,
        ).merge(first)
        for profile in profiles[1:]:
            merged = merged.merge(profile)
        return merged

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------
    def _lower_cluster(self, accumulator: _LeafAccumulator) -> SampledCluster:
        """Promote the accumulator's constants and emit a sampled cluster."""
        pattern = accumulator.pattern
        if (
            self._discover_constants
            and accumulator.count >= DEFAULT_MIN_ROWS
            and accumulator.pieces is not None
        ):
            constants = {
                index: piece
                for index, piece in enumerate(accumulator.pieces)
                if piece is not None
                and not piece.isdigit()
                and len(piece) <= MAX_CONSTANT_LENGTH
            }
            if constants:
                pattern = Pattern(promote_constants(pattern.tokens, constants))
        return SampledCluster(
            pattern=pattern,
            values=list(accumulator.exemplars),
            row_count=accumulator.count,
        )

    def to_hierarchy(self, allow_empty: bool = False) -> PatternHierarchy:
        """Lower the profile into a :class:`PatternHierarchy`.

        The result has the same leaf patterns, cluster sizes, ordering
        and refinement layers as ``PatternProfiler().profile(column)``
        over the same data; leaf clusters are :class:`SampledCluster`
        instances carrying exemplars instead of every raw value.

        Raises:
            ValidationError: If the profile is empty and ``allow_empty``
                is False.
        """
        if not self._clusters and not allow_empty:
            raise ValidationError("cannot build a hierarchy from an empty profile")

        merged: Dict[Pattern, SampledCluster] = {}
        for accumulator in self._clusters.values():
            cluster = self._lower_cluster(accumulator)
            existing = merged.get(cluster.pattern)
            if existing is None:
                merged[cluster.pattern] = cluster
            else:
                existing.row_count += cluster.row_count
                for value in cluster.values:
                    if len(existing.values) >= self._exemplar_cap:
                        break
                    if value not in existing.values:
                        existing.values.append(value)

        ordered = sorted(merged.values(), key=lambda c: (-c.size, c.pattern.notation()))
        leaf_layer = [
            HierarchyNode(pattern=cluster.pattern, cluster=cluster, level=0)
            for cluster in ordered
        ]
        hierarchy = PatternHierarchy(layers=[leaf_layer])
        current: List[HierarchyNode] = leaf_layer
        for round_index, strategy in enumerate(self._strategies, start=1):
            current = refine_layer(current, strategy, level=round_index)
            hierarchy.layers.append(current)
        return hierarchy


@dataclass
class IncrementalProfiler:
    """One-pass, constant-memory counterpart of :class:`PatternProfiler`.

    Profiles any iterable — a generator over a huge CSV, a shard of a
    partitioned column — without ever materializing it, producing a
    :class:`ColumnProfile`.

    Attributes:
        discover_constants: Run constant-token promotion at lowering.
        constant_threshold: Dominance threshold.  Only the batch default
            of 1.0 ("every row agrees") can be decided exactly in bounded
            memory, so other values are rejected.
        exemplar_cap: Distinct sample values kept per leaf cluster.
        strategies: Generalization strategies, one refinement round each.
        allow_empty: When False (default), profiling an empty iterable
            raises :class:`~repro.util.errors.ValidationError`.
    """

    discover_constants: bool = True
    constant_threshold: float = 1.0
    exemplar_cap: int = DEFAULT_EXEMPLAR_CAP
    strategies: Sequence[GeneralizationStrategy] = field(
        default_factory=lambda: GENERALIZATION_STRATEGIES
    )
    allow_empty: bool = False

    def __post_init__(self) -> None:
        if self.discover_constants and self.constant_threshold != 1.0:
            raise ValidationError(
                "IncrementalProfiler decides constants in bounded memory, which "
                f"is only exact at constant_threshold=1.0 (got {self.constant_threshold}); "
                "use PatternProfiler for other thresholds"
            )

    def new_profile(self) -> ColumnProfile:
        """An empty profile with this profiler's configuration."""
        return ColumnProfile(
            exemplar_cap=self.exemplar_cap,
            discover_constants=self.discover_constants,
            strategies=self.strategies,
        )

    def profile(self, values: Iterable[str]) -> ColumnProfile:
        """Profile ``values`` in one pass; memory is bounded by the number
        of distinct leaf patterns, not the number of rows.

        Raises:
            ValidationError: If the iterable is empty and ``allow_empty``
                is False.
        """
        result = self.new_profile().observe_all(values)
        if result.row_count == 0 and not self.allow_empty:
            raise ValidationError("cannot profile an empty dataset")
        return result

    def hierarchy(self, values: Iterable[str]) -> PatternHierarchy:
        """Profile ``values`` and lower straight into a hierarchy."""
        return self.profile(values).to_hierarchy(allow_empty=self.allow_empty)


def profile_stream(values: Iterable[str], **kwargs) -> ColumnProfile:
    """Profile ``values`` with a default-configured :class:`IncrementalProfiler`.

    Keyword arguments are forwarded to the profiler constructor.
    """
    return IncrementalProfiler(**kwargs).profile(values)
