"""Pattern profiling: clustering raw data by pattern (paper Section 4).

The entry point is :class:`~repro.clustering.profiler.PatternProfiler`,
which performs the two-phase profiling the paper describes — initial
clustering through tokenization followed by agglomerative refinement —
and returns a :class:`~repro.clustering.hierarchy.PatternHierarchy`.

For columns too large to materialize,
:class:`~repro.clustering.incremental.IncrementalProfiler` performs the
same profiling in one bounded-memory pass, producing a mergeable
:class:`~repro.clustering.incremental.ColumnProfile` that lowers into
the same hierarchy; :class:`~repro.clustering.parallel.ParallelProfiler`
fans shards of an iterable (or byte ranges of a CSV file) across worker
processes and merges, so Cluster itself runs on all cores.
"""

from repro.clustering.cluster import PatternCluster, initial_clusters
from repro.clustering.hierarchy import HierarchyNode, PatternHierarchy
from repro.clustering.incremental import (
    ColumnProfile,
    IncrementalProfiler,
    SampledCluster,
    profile_stream,
)
from repro.clustering.parallel import ParallelProfiler
from repro.clustering.refine import refine_layer
from repro.clustering.profiler import PatternProfiler, profile

__all__ = [
    "ColumnProfile",
    "HierarchyNode",
    "IncrementalProfiler",
    "ParallelProfiler",
    "PatternCluster",
    "PatternHierarchy",
    "PatternProfiler",
    "SampledCluster",
    "initial_clusters",
    "profile",
    "profile_stream",
    "refine_layer",
]
