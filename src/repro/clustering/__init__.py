"""Pattern profiling: clustering raw data by pattern (paper Section 4).

The entry point is :class:`~repro.clustering.profiler.PatternProfiler`,
which performs the two-phase profiling the paper describes — initial
clustering through tokenization followed by agglomerative refinement —
and returns a :class:`~repro.clustering.hierarchy.PatternHierarchy`.
"""

from repro.clustering.cluster import PatternCluster, initial_clusters
from repro.clustering.hierarchy import HierarchyNode, PatternHierarchy
from repro.clustering.refine import refine_layer
from repro.clustering.profiler import PatternProfiler, profile

__all__ = [
    "HierarchyNode",
    "PatternCluster",
    "PatternHierarchy",
    "PatternProfiler",
    "initial_clusters",
    "profile",
    "refine_layer",
]
