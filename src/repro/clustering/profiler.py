"""Top-level pattern profiler: tokenization + three refinement rounds.

:class:`PatternProfiler` is the public face of the clustering component
of CLX.  It turns a column of raw strings into a
:class:`~repro.clustering.hierarchy.PatternHierarchy` by

1. clustering strings that share the same leaf tokenization (with
   constant-token promotion), then
2. running the three agglomerative refinement rounds of Section 4.2.

The free function :func:`profile` is a convenience wrapper used by the
examples and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

from repro.clustering.cluster import initial_clusters
from repro.clustering.hierarchy import HierarchyNode, PatternHierarchy
from repro.clustering.refine import refine_layer
from repro.patterns.generalize import GENERALIZATION_STRATEGIES, GeneralizationStrategy
from repro.util.errors import ValidationError


@dataclass
class PatternProfiler:
    """Configurable pattern profiler.

    Attributes:
        discover_constants: Run constant-token promotion on leaf clusters.
        constant_threshold: Dominance threshold for promotion (1.0 keeps
            the "every value matches its cluster pattern" invariant).
        strategies: Generalization strategies, applied in order, one
            refinement round each.  Defaults to the paper's three rounds.
        allow_empty: When False (default), profiling an empty dataset
            raises :class:`~repro.util.errors.ValidationError` rather
            than returning an empty hierarchy.
    """

    discover_constants: bool = True
    constant_threshold: float = 1.0
    strategies: Sequence[GeneralizationStrategy] = field(
        default_factory=lambda: GENERALIZATION_STRATEGIES
    )
    allow_empty: bool = False

    def profile(self, values: Iterable[str]) -> PatternHierarchy:
        """Profile ``values`` into a pattern cluster hierarchy.

        Args:
            values: Raw strings of one column.

        Returns:
            The hierarchy, with ``depth == 1 + len(strategies)`` layers
            whenever the input is non-empty.

        Raises:
            ValidationError: If the input is empty and ``allow_empty`` is
                False.
        """
        materialized = [str(value) for value in values]
        if not materialized and not self.allow_empty:
            raise ValidationError("cannot profile an empty dataset")

        clusters = initial_clusters(
            materialized,
            discover_constants=self.discover_constants,
            constant_threshold=self.constant_threshold,
        )
        leaf_layer: List[HierarchyNode] = [
            HierarchyNode(pattern=cluster.pattern, cluster=cluster, level=0)
            for cluster in clusters
        ]
        hierarchy = PatternHierarchy(layers=[leaf_layer])

        current = leaf_layer
        for round_index, strategy in enumerate(self.strategies, start=1):
            current = refine_layer(current, strategy, level=round_index)
            hierarchy.layers.append(current)
        return hierarchy


def profile(values: Iterable[str], **kwargs) -> PatternHierarchy:
    """Profile ``values`` with a default-configured :class:`PatternProfiler`.

    Keyword arguments are forwarded to the profiler constructor.
    """
    return PatternProfiler(**kwargs).profile(values)
