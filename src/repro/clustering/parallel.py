"""Parallel shard-merge profiling — Cluster on all cores.

:class:`~repro.clustering.incremental.IncrementalProfiler` made one core
profile arbitrarily large columns in bounded memory, and
:meth:`~repro.clustering.incremental.ColumnProfile.merge` made the
result associative.  This module supplies the missing piece: the shard
*sources*.  :class:`ParallelProfiler` splits the input, profiles every
shard in a separate process, and reduces with
:meth:`~repro.clustering.incremental.ColumnProfile.merge_all`, producing
the same leaf patterns and counts — and therefore the same lowered
:class:`~repro.clustering.hierarchy.PatternHierarchy` — as the serial
pass.

Three shard sources are supported:

* **iterables** (:meth:`ParallelProfiler.profile`) — chunks of values
  are fanned out through a bounded in-flight window, so a generator
  over a huge stream is pulled at the pace shard profiles come back;
* **CSV files on disk** (:meth:`ParallelProfiler.profile_file`) —
  the file is split into newline-aligned **byte ranges**, one per
  worker, and each worker parses its own range; the parent process
  never touches a single data row.  When a quoted field turns out to
  contain an embedded newline, the split is transparently redone on
  **record** boundaries (one cheap quote-parity scan in the parent —
  :func:`~repro.util.csvio.record_aligned_offsets`), so such files
  profile correctly at any worker count;
* **partitioned datasets** (:meth:`ParallelProfiler.profile_dataset`) —
  every part of a :class:`~repro.dataset.dataset.Dataset` becomes one
  or more shards (worker slots are allotted to parts by size), merged
  in stable part order.  Line-record parts (CSV/JSONL) shard on byte
  ranges; rowgroup parts (parquet/arrow) shard on row-group index
  ranges through their IO backend
  (:meth:`~repro.dataset.backends.base.Backend.plan_shards`), and
  remote parts stream through the opener seam — the shard worker never
  cares which it got.

With one worker every entry point degrades to the serial profiler in
process — no pool is spawned.  A worker process that dies mid-shard
raises :class:`~repro.util.errors.CLXError` in the parent instead of
hanging it.
"""

from __future__ import annotations

import csv
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from repro.clustering.hierarchy import PatternHierarchy
from repro.clustering.incremental import ColumnProfile, IncrementalProfiler
from repro.dataset.backends import backend_by_name, open_locator
from repro.dataset.dataset import Dataset
from repro.dataset.readers import jsonl_value, parse_jsonl_row, read_csv_header
from repro.util.csvio import record_aligned_offsets, record_open_after, resolve_column
from repro.util.errors import CLXError, ValidationError
from repro.util.pools import chunked, map_ordered
from repro.util.validate import validated_chunk_size, validated_workers

#: Default number of values per fan-out chunk for iterable inputs; large
#: enough to amortize pickling, small enough to keep every worker busy.
DEFAULT_CHUNK_ROWS = 16_384

# Worker global installed by the pool initializer (one pool profiles
# exactly one column, so a module global is safe).
_WORKER_PROFILER: Optional[IncrementalProfiler] = None


class MultilineRecordError(ValidationError):
    """A newline-aligned shard met a record spanning physical lines.

    Raised inside a worker and caught by the parent, which retries the
    file with record-aligned shard boundaries; it only escapes to
    callers feeding shards by hand.
    """


def _init_profiler_worker(profiler: IncrementalProfiler) -> None:
    global _WORKER_PROFILER
    _WORKER_PROFILER = profiler


def _profile_chunk(values: List[str]) -> ColumnProfile:
    """Profile one fan-out chunk of raw values in a worker."""
    assert _WORKER_PROFILER is not None, "worker used before initialization"
    return _WORKER_PROFILER.new_profile().observe_all(values)


def _shard_lines(
    path: str, start: int, end: int, encoding: str, skip_first: bool, exact: bool = False
) -> Iterator[str]:
    """Decoded physical lines of ``path`` owned by the shard [start, end).

    Two ownership rules, chosen by ``exact``:

    * ``exact=False`` — the classic byte-range rule: a shard that does
      not begin at the data start discards its first ``readline`` (that
      line — whole or partial — was read to completion by the previous
      shard) and then owns every line *beginning* at or before ``end``,
      reading the last one past ``end`` if it straddles the boundary.
      Contiguous shards therefore partition the file's lines exactly,
      no matter where the byte boundaries fall.
    * ``exact=True`` — ``start`` and ``end`` are known record
      boundaries (from a quote-parity scan): the shard owns exactly the
      lines beginning in ``[start, end)``, no skipping, no overshoot.

    Opens through the locator seam (local path or registered URL
    scheme).  An undecodable byte is rewrapped as a
    :class:`~repro.util.errors.CLXError` naming the file and the
    absolute byte offset of the offending byte, never a bare
    ``UnicodeDecodeError``.
    """
    with open_locator(path) as handle:
        handle.seek(start)
        if skip_first and not exact:
            handle.readline()
        while True:
            position = handle.tell()
            if position > end or (exact and position >= end):
                return
            raw = handle.readline()
            if not raw:
                return
            try:
                yield raw.decode(encoding)
            except UnicodeDecodeError as error:
                bad = raw[error.start] if error.start < len(raw) else 0
                raise CLXError(
                    f"{path}: invalid {encoding} byte 0x{bad:02x} at byte "
                    f"offset {position + error.start}; re-encode the file "
                    f"as {encoding} before profiling"
                ) from None


def _single_record_lines(lines: Iterable[str], delimiter: str, source: str) -> Iterator[str]:
    """Pass lines through, flagging records that span physical lines.

    Byte-range shards align on physical lines, so a quoted field with
    an embedded newline parses differently depending on where the shard
    boundaries fall — silent corruption.  The line that *opens* such a
    field is owned by exactly one shard, and (until the first
    multi-line record) every shard's scan starts at a true record
    boundary, so checking each owned line with the csv module's own
    quoting rules (:func:`~repro.util.csvio.record_open_after`; a stray
    ``"`` in an unquoted cell is data, not a delimiter) catches such
    files deterministically, whatever the boundaries.  The parent
    answers :class:`MultilineRecordError` by re-splitting the file on
    record boundaries and retrying.
    """
    for line in lines:
        if record_open_after(line, delimiter):
            raise MultilineRecordError(
                f"{source}: a quoted field contains an embedded newline; "
                "re-shard on record boundaries"
            )
        yield line


@dataclass(frozen=True)
class _FileShard:
    """One picklable unit of shard profiling work.

    Attributes:
        path: Locator the shard reads (path or URL).
        format: The part's IO backend name (``"csv"``, ``"jsonl"``,
            ``"parquet"``, ...).
        column: Column index (CSV) or key/column name to profile.
        delimiter: CSV delimiter (ignored elsewhere).
        encoding: Text encoding (line backends).
        start: First byte of the shard — or, for rowgroup backends,
            the first row-group index of the span.
        end: First byte (row-group index) past the shard.
        skip_first: Newline-aligned ownership rule (see
            :func:`_shard_lines`).
        exact: Both bounds are known record boundaries.
        check_multiline: Raise :class:`MultilineRecordError` when a
            record leaves a quoted field open across physical lines.
    """

    path: str
    format: str
    column: Union[str, int]
    delimiter: str
    encoding: str
    start: int
    end: int
    skip_first: bool
    exact: bool
    check_multiline: bool


def _profile_file_shard(shard: _FileShard) -> ColumnProfile:
    """Profile one shard in a worker, dispatching through the backend."""
    assert _WORKER_PROFILER is not None, "worker used before initialization"
    profile = _WORKER_PROFILER.new_profile()
    backend = backend_by_name(shard.format)
    if not backend.line_records:
        # Rowgroup shard: the backend streams one column of the row
        # groups [start, end) already stringified.
        return profile.observe_all(
            backend.iter_shard_values(shard.path, shard.start, shard.end, shard.column)
        )
    lines = _shard_lines(
        shard.path, shard.start, shard.end, shard.encoding, shard.skip_first, shard.exact
    )
    if backend.csv_quoting:
        if shard.check_multiline:
            lines = _single_record_lines(lines, shard.delimiter, shard.path)
        column_index = shard.column
        assert isinstance(column_index, int)
        for row in csv.reader(lines, delimiter=shard.delimiter):
            if not row:
                continue  # blank line, as csv.DictReader skips them
            profile.observe(row[column_index] if column_index < len(row) else "")
    else:
        for line in lines:
            if not line.strip():
                continue
            profile.observe(jsonl_value(parse_jsonl_row(line, shard.path), shard.column))
    return profile


def _resolve_column_index(header: List[str], column: Union[str, int]) -> int:
    """Resolve a column given by name or zero-based index against the header."""
    return header.index(resolve_column(header, column))


def _split_points(start: int, end: int, pieces: int) -> List[int]:
    """``pieces`` contiguous span starts covering [start, end), ascending."""
    span = max(1, (end - start + pieces - 1) // pieces)
    return list(range(start, end, span))


def _allot_spans(sizes: Sequence[int], workers: int) -> List[int]:
    """Split ``workers`` span slots across parts, proportional to size.

    Every part gets at least one span; leftover slots go to the largest
    parts by the largest-remainder method, deterministically.
    """
    counts = [1] * len(sizes)
    extra = workers - len(sizes)
    if extra <= 0:
        return counts
    total = sum(sizes)
    if total <= 0:
        return counts
    quotas = [extra * size / total for size in sizes]
    for index, quota in enumerate(quotas):
        counts[index] += int(quota)
    leftover = extra - sum(int(quota) for quota in quotas)
    by_remainder = sorted(
        range(len(sizes)), key=lambda i: (-(quotas[i] - int(quotas[i])), i)
    )
    for index in by_remainder[:leftover]:
        counts[index] += 1
    return counts


@dataclass
class ParallelProfiler:
    """Profile a column across worker processes, shard-then-merge.

    The per-shard work is an ordinary
    :class:`~repro.clustering.incremental.IncrementalProfiler` pass and
    the reduce is the associative
    :meth:`~repro.clustering.incremental.ColumnProfile.merge_all`, so
    the result has exactly the serial path's leaf patterns and counts
    (exemplar *selection* may differ once a reservoir fills — the same
    caveat shard-merge always had).

    Attributes:
        profiler: Configuration of the per-shard profiling pass.
        workers: Worker process count; ``None`` means ``os.cpu_count()``.
            With one worker everything runs in-process.
        chunk_size: Values per fan-out chunk for iterable inputs.
    """

    profiler: IncrementalProfiler = field(default_factory=IncrementalProfiler)
    workers: Optional[int] = None
    chunk_size: int = DEFAULT_CHUNK_ROWS

    def __post_init__(self) -> None:
        self.workers = validated_workers(self.workers)
        self.chunk_size = validated_chunk_size(self.chunk_size)
        if not isinstance(self.profiler, IncrementalProfiler):
            raise ValidationError(
                "ParallelProfiler requires an IncrementalProfiler, "
                f"got {type(self.profiler).__name__}"
            )

    # ------------------------------------------------------------------
    # Iterable fan-out
    # ------------------------------------------------------------------
    def profile(self, values: Iterable[str]) -> ColumnProfile:
        """Profile any iterable by fanning chunks across the workers.

        Chunks are submitted through a bounded in-flight window and the
        shard profiles are merged in input order, so the input is
        consumed lazily and exemplar reservoirs fill in stream order
        like the serial pass.

        Raises:
            ValidationError: If the iterable is empty and the underlying
                profiler does not ``allow_empty``.
        """
        if self.workers == 1:
            return self.profiler.profile(values)
        merged: Optional[ColumnProfile] = None
        with ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_profiler_worker,
            initargs=(self.profiler,),
        ) as pool:
            shards = map_ordered(
                pool, _profile_chunk, chunked(values, self.chunk_size), self.workers + 2
            )
            for shard in shards:
                merged = shard if merged is None else merged.merge(shard)
        if merged is None:
            merged = self.profiler.new_profile()
        return self._checked(merged)

    # ------------------------------------------------------------------
    # Byte-range file fan-out
    # ------------------------------------------------------------------
    def profile_file(
        self,
        path: Union[str, Path],
        column: Union[str, int],
        delimiter: str = ",",
        encoding: str = "utf-8",
    ) -> ColumnProfile:
        """Profile one column of a CSV file via byte-range shards.

        The parent reads only the header; the data region is split into
        ``workers`` newline-aligned byte ranges and each worker parses
        and profiles its own range, so CSV decoding itself runs on all
        cores.  Rows shorter than the header contribute ``""`` for a
        missing column and surplus cells are ignored, matching the
        streaming profile path of the CLI.

        Quoted fields containing embedded newlines are handled: a
        worker that meets one flags the file, and the parent re-splits
        it on **record** boundaries with one quote-parity scan
        (:func:`~repro.util.csvio.record_aligned_offsets`) and retries,
        so the result matches the serial pass at any worker count.

        Raises:
            ValidationError: If the header is missing, the column is
                unknown, or the file has no data rows (and the profiler
                does not ``allow_empty``).
        """
        source = Path(path)
        header, data_start = read_csv_header(source, delimiter, encoding)
        column_index = _resolve_column_index(header, column)
        size = source.stat().st_size

        if self.workers == 1 or size <= data_start:
            reader = csv.reader(
                _shard_lines(str(source), data_start, size, encoding, skip_first=False),
                delimiter=delimiter,
            )
            values = (
                row[column_index] if column_index < len(row) else ""
                for row in reader
                if row
            )
            profile = self.profiler.new_profile().observe_all(values)
            return self._checked(profile)

        shards = self._csv_shards(
            source, data_start, size, column_index, delimiter, encoding,
            spans=self.workers, record_aligned=False,
        )
        try:
            return self._checked(self._run_file_shards(shards))
        except MultilineRecordError:
            shards = self._csv_shards(
                source, data_start, size, column_index, delimiter, encoding,
                spans=self.workers, record_aligned=True,
            )
            return self._checked(self._run_file_shards(shards))

    # ------------------------------------------------------------------
    # Partitioned-dataset fan-out
    # ------------------------------------------------------------------
    def profile_dataset(
        self,
        dataset: Union[Dataset, str, Sequence[Union[str, Path]]],
        column: Union[str, int],
        delimiter: str = ",",
        encoding: str = "utf-8",
    ) -> ColumnProfile:
        """Profile one column across every part of a partitioned dataset.

        Each CSV/JSONL part contributes one or more byte-range shards
        (worker slots are allotted to parts proportional to size), all
        profiled through one pool and merged in stable part order — the
        result has the same leaf patterns and counts as profiling the
        concatenated column serially.  CSV parts get the same embedded-
        newline retry as :meth:`profile_file`; JSONL parts are immune
        (a JSON string cannot contain a literal newline).

        Args:
            dataset: A resolved :class:`~repro.dataset.dataset.Dataset`,
                or any spec(s) :meth:`Dataset.resolve` accepts (paths,
                globs, directories).
            column: Column name, or zero-based index (CSV parts only).
            delimiter: CSV delimiter.
            encoding: Text encoding.

        Raises:
            CLXError: If the specs resolve to no files.
            ValidationError: If some part cannot supply the column, or
                the dataset has no data rows (and the profiler does not
                ``allow_empty``).
        """
        if not isinstance(dataset, Dataset):
            dataset = Dataset.resolve(dataset)
        dataset.check_column(column, delimiter)

        if self.workers == 1:
            profile = self.profiler.new_profile().observe_all(
                dataset.iter_values(column, delimiter)
            )
            return self._checked(profile)

        shards = self._dataset_shards(dataset, column, delimiter, encoding)
        if not shards:
            return self._checked(self.profiler.new_profile())
        try:
            return self._checked(self._run_file_shards(shards))
        except MultilineRecordError:
            shards = self._dataset_shards(
                dataset, column, delimiter, encoding, record_aligned=True
            )
            return self._checked(self._run_file_shards(shards))

    # ------------------------------------------------------------------
    # Shard planning and execution
    # ------------------------------------------------------------------
    def _run_file_shards(self, shards: Sequence[_FileShard]) -> ColumnProfile:
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(shards)),
            initializer=_init_profiler_worker,
            initargs=(self.profiler,),
        ) as pool:
            profiles = list(map_ordered(pool, _profile_file_shard, shards, len(shards)))
        return ColumnProfile.merge_all(profiles)

    def _csv_shards(
        self,
        source: Union[str, Path],
        data_start: int,
        size: int,
        column_index: int,
        delimiter: str,
        encoding: str,
        spans: int,
        record_aligned: bool,
    ) -> List[_FileShard]:
        """Byte-range shards over one CSV file's data region."""
        if size <= data_start:
            return []
        locator = str(source)
        starts = _split_points(data_start, size, spans)
        if record_aligned:
            starts = [data_start] + record_aligned_offsets(
                locator, data_start, size, starts[1:], delimiter, encoding,
                opener=open_locator,
            )
        bounds = starts + [size]
        return [
            _FileShard(
                path=locator,
                format="csv",
                column=column_index,
                delimiter=delimiter,
                encoding=encoding,
                start=start,
                end=end,
                skip_first=not record_aligned and start != data_start,
                exact=record_aligned,
                check_multiline=not record_aligned,
            )
            for start, end in zip(bounds, bounds[1:])
            if start < end
        ]

    def _dataset_shards(
        self,
        dataset: Dataset,
        column: Union[str, int],
        delimiter: str,
        encoding: str,
        record_aligned: bool = False,
    ) -> List[_FileShard]:
        """One or more shards per dataset part, in stable part order.

        Line-record parts shard on byte ranges; rowgroup parts shard on
        row-group index ranges through
        :meth:`~repro.dataset.backends.base.Backend.plan_shards`, sized
        so each part still contributes roughly its allotted span count.
        """
        parts = dataset.parts
        counts = _allot_spans([part.size for part in parts], self.workers)
        shards: List[_FileShard] = []
        for part, spans in zip(parts, counts):
            backend = backend_by_name(part.format)
            backend.require()
            locator = part.locator
            if part.size <= 0:
                continue
            if not backend.line_records:
                target_bytes = max(1, -(-part.size // spans))
                shards.extend(
                    _FileShard(
                        path=locator,
                        format=part.format,
                        column=column,
                        delimiter=delimiter,
                        encoding=encoding,
                        start=start,
                        end=end,
                        skip_first=False,
                        exact=True,
                        check_multiline=False,
                    )
                    for start, end, _ in backend.plan_shards(locator, target_bytes)
                )
                continue
            if backend.has_header_row:
                header, data_start = read_csv_header(locator, delimiter, encoding)
                shards.extend(
                    self._csv_shards(
                        locator,
                        data_start,
                        part.size,
                        _resolve_column_index(header, column),
                        delimiter,
                        encoding,
                        spans=spans,
                        record_aligned=record_aligned,
                    )
                )
                continue
            starts = _split_points(0, part.size, spans)
            bounds = starts + [part.size]
            shards.extend(
                _FileShard(
                    path=locator,
                    format=part.format,
                    column=column,
                    delimiter=delimiter,
                    encoding=encoding,
                    start=start,
                    end=end,
                    skip_first=start != 0,
                    exact=False,
                    check_multiline=False,
                )
                for start, end in zip(bounds, bounds[1:])
                if start < end
            )
        return shards

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def hierarchy(self, values: Iterable[str]) -> PatternHierarchy:
        """Profile ``values`` in parallel and lower into a hierarchy."""
        return self.profile(values).to_hierarchy(allow_empty=self.profiler.allow_empty)

    def _checked(self, profile: ColumnProfile) -> ColumnProfile:
        if profile.row_count == 0 and not self.profiler.allow_empty:
            raise ValidationError("cannot profile an empty dataset")
        return profile
