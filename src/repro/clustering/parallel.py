"""Parallel shard-merge profiling — Cluster on all cores.

:class:`~repro.clustering.incremental.IncrementalProfiler` made one core
profile arbitrarily large columns in bounded memory, and
:meth:`~repro.clustering.incremental.ColumnProfile.merge` made the
result associative.  This module supplies the missing piece: the shard
*sources*.  :class:`ParallelProfiler` splits the input, profiles every
shard in a separate process, and reduces with
:meth:`~repro.clustering.incremental.ColumnProfile.merge_all`, producing
the same leaf patterns and counts — and therefore the same lowered
:class:`~repro.clustering.hierarchy.PatternHierarchy` — as the serial
pass.

Two shard sources are supported:

* **iterables** (:meth:`ParallelProfiler.profile`) — chunks of values
  are fanned out through a bounded in-flight window, so a generator
  over a huge stream is pulled at the pace shard profiles come back;
* **CSV files on disk** (:meth:`ParallelProfiler.profile_file`) —
  the file is split into newline-aligned **byte ranges**, one per
  worker, and each worker parses its own range; the parent process
  never touches a single data row.  (Alignment is by physical line, so
  quoted fields containing embedded newlines are detected and rejected
  in this mode — profile such files with one worker, or through
  :meth:`profile`, instead.)

With one worker both entry points degrade to the serial profiler in
process — no pool is spawned.  A worker process that dies mid-shard
raises :class:`~repro.util.errors.CLXError` in the parent instead of
hanging it.
"""

from __future__ import annotations

import csv
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.clustering.hierarchy import PatternHierarchy
from repro.clustering.incremental import ColumnProfile, IncrementalProfiler
from repro.util.csvio import record_open_after, resolve_column
from repro.util.errors import ValidationError
from repro.util.pools import chunked, map_ordered
from repro.util.validate import validated_chunk_size, validated_workers

#: Default number of values per fan-out chunk for iterable inputs; large
#: enough to amortize pickling, small enough to keep every worker busy.
DEFAULT_CHUNK_ROWS = 16_384

# Worker globals installed by the pool initializers (one pool profiles
# exactly one column, so module globals are safe).
_WORKER_PROFILER: Optional[IncrementalProfiler] = None
_WORKER_FILE: Optional[Tuple[str, int, str, str]] = None


def _init_chunk_worker(profiler: IncrementalProfiler) -> None:
    global _WORKER_PROFILER
    _WORKER_PROFILER = profiler


def _profile_chunk(values: List[str]) -> ColumnProfile:
    """Profile one fan-out chunk of raw values in a worker."""
    assert _WORKER_PROFILER is not None, "worker used before initialization"
    return _WORKER_PROFILER.new_profile().observe_all(values)


def _init_file_worker(
    profiler: IncrementalProfiler, path: str, column_index: int, delimiter: str, encoding: str
) -> None:
    global _WORKER_PROFILER, _WORKER_FILE
    _WORKER_PROFILER = profiler
    _WORKER_FILE = (path, column_index, delimiter, encoding)


def _shard_lines(
    path: str, start: int, end: int, encoding: str, skip_first: bool
) -> Iterator[str]:
    """Decoded physical lines of ``path`` owned by the shard [start, end).

    The ownership rule is the classic byte-range one: a shard that does
    not begin at the data start discards its first ``readline`` (that
    line — whole or partial — was read to completion by the previous
    shard) and then owns every line *beginning* at or before ``end``,
    reading the last one past ``end`` if it straddles the boundary.
    Contiguous shards therefore partition the file's lines exactly, no
    matter where the byte boundaries fall.
    """
    with open(path, "rb") as handle:
        handle.seek(start)
        if skip_first:
            handle.readline()
        while handle.tell() <= end:
            raw = handle.readline()
            if not raw:
                return
            yield raw.decode(encoding)


def _single_record_lines(lines: Iterable[str], delimiter: str) -> Iterator[str]:
    """Pass lines through, refusing records that span physical lines.

    Byte-range shards align on physical lines, so a quoted field with
    an embedded newline parses differently depending on where the shard
    boundaries fall — silent corruption.  The line that *opens* such a
    field is owned by exactly one shard, and (until the first
    multi-line record) every shard's scan starts at a true record
    boundary, so checking each owned line with the csv module's own
    quoting rules (:func:`~repro.util.csvio.record_open_after`; a stray
    ``"`` in an unquoted cell is data, not a delimiter) catches such
    files deterministically, whatever the boundaries.
    """
    for line in lines:
        if record_open_after(line, delimiter):
            raise ValidationError(
                "byte-range profiling aligns shards on physical lines and "
                "cannot parse quoted fields containing embedded newlines; "
                "profile this file with workers=1 (or stream its rows "
                "through ParallelProfiler.profile) instead"
            )
        yield line


def _profile_file_shard(span: Tuple[int, int, bool]) -> ColumnProfile:
    """Profile one byte-range shard of the worker's file."""
    assert _WORKER_PROFILER is not None and _WORKER_FILE is not None
    path, column_index, delimiter, encoding = _WORKER_FILE
    profile = _WORKER_PROFILER.new_profile()
    reader = csv.reader(
        _single_record_lines(
            _shard_lines(path, span[0], span[1], encoding, skip_first=span[2]),
            delimiter,
        ),
        delimiter=delimiter,
    )
    for row in reader:
        if not row:
            continue  # blank line, as csv.DictReader skips them
        profile.observe(row[column_index] if column_index < len(row) else "")
    return profile


def _read_header(path: Path, delimiter: str, encoding: str) -> Tuple[List[str], int]:
    """The CSV header row of ``path`` and the byte offset where data starts."""
    raw_header = b""
    record_open = False
    with path.open("rb") as handle:
        # Accumulate physical lines until the header record closes, so
        # a (rare) quoted header field containing a newline stays
        # intact — tracked with csv quoting semantics, since a stray
        # ``"`` in an unquoted header cell is data, not a delimiter.
        while True:
            line = handle.readline()
            if not line:
                break
            raw_header += line
            record_open = record_open_after(line.decode(encoding), delimiter, record_open)
            if not record_open:
                break
        data_start = handle.tell()
    text = raw_header.decode(encoding)
    if not text.strip():
        raise ValidationError(f"{path} has no header row")
    header = next(csv.reader([text], delimiter=delimiter))
    return header, data_start


def _resolve_column_index(header: List[str], column: Union[str, int]) -> int:
    """Resolve a column given by name or zero-based index against the header."""
    return header.index(resolve_column(header, column))


@dataclass
class ParallelProfiler:
    """Profile a column across worker processes, shard-then-merge.

    The per-shard work is an ordinary
    :class:`~repro.clustering.incremental.IncrementalProfiler` pass and
    the reduce is the associative
    :meth:`~repro.clustering.incremental.ColumnProfile.merge_all`, so
    the result has exactly the serial path's leaf patterns and counts
    (exemplar *selection* may differ once a reservoir fills — the same
    caveat shard-merge always had).

    Attributes:
        profiler: Configuration of the per-shard profiling pass.
        workers: Worker process count; ``None`` means ``os.cpu_count()``.
            With one worker everything runs in-process.
        chunk_size: Values per fan-out chunk for iterable inputs.
    """

    profiler: IncrementalProfiler = field(default_factory=IncrementalProfiler)
    workers: Optional[int] = None
    chunk_size: int = DEFAULT_CHUNK_ROWS

    def __post_init__(self) -> None:
        self.workers = validated_workers(self.workers)
        self.chunk_size = validated_chunk_size(self.chunk_size)
        if not isinstance(self.profiler, IncrementalProfiler):
            raise ValidationError(
                "ParallelProfiler requires an IncrementalProfiler, "
                f"got {type(self.profiler).__name__}"
            )

    # ------------------------------------------------------------------
    # Iterable fan-out
    # ------------------------------------------------------------------
    def profile(self, values: Iterable[str]) -> ColumnProfile:
        """Profile any iterable by fanning chunks across the workers.

        Chunks are submitted through a bounded in-flight window and the
        shard profiles are merged in input order, so the input is
        consumed lazily and exemplar reservoirs fill in stream order
        like the serial pass.

        Raises:
            ValidationError: If the iterable is empty and the underlying
                profiler does not ``allow_empty``.
        """
        if self.workers == 1:
            return self.profiler.profile(values)
        merged: Optional[ColumnProfile] = None
        with ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_chunk_worker,
            initargs=(self.profiler,),
        ) as pool:
            shards = map_ordered(
                pool, _profile_chunk, chunked(values, self.chunk_size), self.workers + 2
            )
            for shard in shards:
                merged = shard if merged is None else merged.merge(shard)
        if merged is None:
            merged = self.profiler.new_profile()
        return self._checked(merged)

    # ------------------------------------------------------------------
    # Byte-range file fan-out
    # ------------------------------------------------------------------
    def profile_file(
        self,
        path: Union[str, Path],
        column: Union[str, int],
        delimiter: str = ",",
        encoding: str = "utf-8",
    ) -> ColumnProfile:
        """Profile one column of a CSV file via byte-range shards.

        The parent reads only the header; the data region is split into
        ``workers`` newline-aligned byte ranges and each worker parses
        and profiles its own range, so CSV decoding itself runs on all
        cores.  Rows shorter than the header contribute ``""`` for a
        missing column and surplus cells are ignored, matching the
        streaming profile path of the CLI.

        Quoted fields with embedded newlines are **not** supported with
        multiple workers (shard boundaries align on physical lines);
        such files are detected and rejected — profile them with one
        worker, or via :meth:`profile` over a row iterator.

        Raises:
            ValidationError: If the header is missing, the column is
                unknown, the file has no data rows (and the profiler
                does not ``allow_empty``), or a multi-worker run meets
                a record spanning physical lines.
        """
        source = Path(path)
        header, data_start = _read_header(source, delimiter, encoding)
        column_index = _resolve_column_index(header, column)
        size = source.stat().st_size

        if self.workers == 1 or size <= data_start:
            reader = csv.reader(
                _shard_lines(str(source), data_start, size, encoding, skip_first=False),
                delimiter=delimiter,
            )
            values = (
                row[column_index] if column_index < len(row) else ""
                for row in reader
                if row
            )
            profile = self.profiler.new_profile().observe_all(values)
            return self._checked(profile)

        spans = self._file_spans(data_start, size)
        with ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_file_worker,
            initargs=(self.profiler, str(source), column_index, delimiter, encoding),
        ) as pool:
            shards = list(map_ordered(pool, _profile_file_shard, spans, len(spans)))
        return self._checked(ColumnProfile.merge_all(shards))

    def _file_spans(self, start: int, end: int) -> List[Tuple[int, int, bool]]:
        """Split [start, end) into up to ``workers`` contiguous byte ranges.

        Every range except the first carries ``skip_first=True`` — its
        opening line (whole or partial) is owned by the previous range.
        """
        span = max(1, (end - start + self.workers - 1) // self.workers)
        return [
            (offset, min(offset + span, end), offset != start)
            for offset in range(start, end, span)
        ]

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def hierarchy(self, values: Iterable[str]) -> PatternHierarchy:
        """Profile ``values`` in parallel and lower into a hierarchy."""
        return self.profile(values).to_hierarchy(allow_empty=self.profiler.allow_empty)

    def _checked(self, profile: ColumnProfile) -> ColumnProfile:
        if profile.row_count == 0 and not self.profiler.allow_empty:
            raise ValidationError("cannot profile an empty dataset")
        return profile
