"""The pattern cluster hierarchy (paper Section 4.2, Figure 6).

The hierarchy is a forest: leaf nodes are the clusters produced by
tokenization, and each refinement round adds one more layer of parent
patterns above the previous layer.  Every node keeps a pointer to its
children so Algorithm 2 can traverse top-down, and to the raw values it
covers so the transformer can apply per-pattern programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.clustering.cluster import PatternCluster
from repro.patterns.pattern import Pattern


@dataclass
class HierarchyNode:
    """One node of the pattern cluster hierarchy.

    Attributes:
        pattern: The (possibly generalized) pattern of this node.
        children: Child nodes from the previous (more specific) layer;
            empty for leaf nodes.
        cluster: The leaf cluster, present only on leaf nodes.
        level: 0 for leaves, incrementing by one per refinement round.
    """

    pattern: Pattern
    children: List["HierarchyNode"] = field(default_factory=list)
    cluster: Optional[PatternCluster] = None
    level: int = 0

    @property
    def is_leaf(self) -> bool:
        """True when the node is a leaf (has an attached cluster)."""
        return self.cluster is not None

    @property
    def size(self) -> int:
        """Total number of rows covered by this node's subtree."""
        if self.cluster is not None:
            return self.cluster.size
        return sum(child.size for child in self.children)

    def values(self) -> List[str]:
        """All raw values covered by this node, leaves left to right."""
        if self.cluster is not None:
            return list(self.cluster.values)
        collected: List[str] = []
        for child in self.children:
            collected.extend(child.values())
        return collected

    def leaves(self) -> List["HierarchyNode"]:
        """All leaf nodes under (and including) this node."""
        if self.is_leaf:
            return [self]
        result: List[HierarchyNode] = []
        for child in self.children:
            result.extend(child.leaves())
        return result

    def walk(self) -> Iterator["HierarchyNode"]:
        """Depth-first pre-order traversal of the subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else f"{len(self.children)} children"
        return f"HierarchyNode({self.pattern.notation()!r}, level={self.level}, {kind})"


@dataclass
class PatternHierarchy:
    """The full hierarchy: a list of layers from leaves to the most generic.

    Attributes:
        layers: ``layers[0]`` are the leaf nodes; each subsequent entry is
            the parent layer produced by one refinement round.
    """

    layers: List[List[HierarchyNode]] = field(default_factory=list)

    @property
    def leaf_nodes(self) -> List[HierarchyNode]:
        """The leaf layer (empty list if the hierarchy is empty)."""
        return self.layers[0] if self.layers else []

    @property
    def roots(self) -> List[HierarchyNode]:
        """Top layer of the hierarchy."""
        return self.layers[-1] if self.layers else []

    @property
    def depth(self) -> int:
        """Number of layers (leaf layer counts as 1)."""
        return len(self.layers)

    @property
    def total_rows(self) -> int:
        """Total number of rows covered by the hierarchy."""
        return sum(node.size for node in self.leaf_nodes)

    def leaf_patterns(self) -> List[Pattern]:
        """Patterns of the leaf layer, largest cluster first."""
        return [node.pattern for node in self.leaf_nodes]

    def all_patterns(self) -> List[Pattern]:
        """Every distinct pattern anywhere in the hierarchy."""
        seen: List[Pattern] = []
        seen_set = set()
        for layer in self.layers:
            for node in layer:
                if node.pattern not in seen_set:
                    seen_set.add(node.pattern)
                    seen.append(node.pattern)
        return seen

    def find_leaf(self, pattern: Pattern) -> Optional[HierarchyNode]:
        """Return the leaf node whose pattern equals ``pattern``, if any."""
        for node in self.leaf_nodes:
            if node.pattern == pattern:
                return node
        return None

    def walk(self) -> Iterator[HierarchyNode]:
        """Traverse every root's subtree depth-first."""
        for root in self.roots:
            yield from root.walk()

    def describe(self, max_samples: int = 2) -> str:
        """Multi-line description of the leaf clusters (largest first).

        This is the view the user sees first in the CLX interaction
        (Figure 3 of the paper): one line per pattern with its row count
        and sample values.
        """
        lines = []
        for node in sorted(self.leaf_nodes, key=lambda n: -n.size):
            samples = ", ".join(node.cluster.sample(max_samples)) if node.cluster else ""
            lines.append(f"{node.pattern.notation()}  ({node.size} rows)  e.g. {samples}")
        return "\n".join(lines)
