"""Agglomerative refinement — Algorithm 1 of the paper.

Given the nodes of one layer and a generalization strategy, the
refinement step computes the parent pattern of every node, counts how
many children each distinct parent covers, and then greedily keeps the
most-covering parents until every child is covered.  The result is the
next layer of the hierarchy.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence

from repro.clustering.hierarchy import HierarchyNode
from repro.patterns.generalize import GeneralizationStrategy
from repro.patterns.pattern import Pattern


def refine_layer(
    nodes: Sequence[HierarchyNode],
    strategy: GeneralizationStrategy,
    level: int,
) -> List[HierarchyNode]:
    """Build the parent layer of ``nodes`` using ``strategy`` (Algorithm 1).

    Args:
        nodes: Nodes of the current layer.
        strategy: Generalization function mapping a pattern to its parent
            pattern under this round's strategy.
        level: Level number to assign to the new parent nodes.

    Returns:
        The new layer.  Children whose parent pattern equals their own
        pattern are carried upward unchanged (re-wrapped at the new
        level) so that every layer still covers all of the data.
    """
    if not nodes:
        return []

    # Lines 3-6 of Algorithm 1: compute parents and count coverage.
    parent_of: Dict[int, Pattern] = {}
    counts: Counter = Counter()
    for index, node in enumerate(nodes):
        parent = strategy(node.pattern)
        parent_of[index] = parent
        counts[parent] += 1

    # Lines 7-10: greedily keep parents by descending coverage until all
    # children are claimed.  Ties are broken by notation for determinism.
    remaining = set(range(len(nodes)))
    new_layer: List[HierarchyNode] = []
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0].notation()))
    for parent_pattern, _count in ranked:
        claimed = [
            index
            for index in sorted(remaining)
            if parent_of[index] == parent_pattern
            or parent_pattern.subsumes(nodes[index].pattern)
        ]
        if not claimed:
            continue
        children = [nodes[index] for index in claimed]
        remaining.difference_update(claimed)
        new_layer.append(
            HierarchyNode(pattern=parent_pattern, children=children, level=level)
        )
        if not remaining:
            break

    # Defensive: anything left unclaimed (should not happen) is carried up.
    for index in sorted(remaining):
        node = nodes[index]
        new_layer.append(
            HierarchyNode(pattern=node.pattern, children=[node], level=level)
        )
    return new_layer
