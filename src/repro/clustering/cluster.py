"""Leaf pattern clusters produced by the tokenization phase (Section 4.1).

A :class:`PatternCluster` groups the raw strings that share the same leaf
pattern.  Constant-token discovery runs per cluster and may rewrite the
cluster's pattern so that positions holding one dominant value become
literal tokens (e.g. a ``Dr.`` prefix).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from repro.patterns.pattern import Pattern
from repro.tokens.constants import discover_constant_tokens, promote_constants
from repro.tokens.tokenizer import tokenize


@dataclass
class PatternCluster:
    """A set of raw strings sharing one pattern.

    Attributes:
        pattern: The cluster's pattern.  At the leaf level this is the
            exact tokenization (possibly with constants promoted); at
            higher levels of the hierarchy it is a generalized pattern.
        values: The raw strings assigned to the cluster, in first-seen
            order with duplicates preserved (cluster size mirrors row
            counts, as in Figure 3 of the paper).
    """

    pattern: Pattern
    values: List[str] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of rows (strings, duplicates included) in the cluster."""
        return len(self.values)

    def sample(self, count: int = 3) -> List[str]:
        """First ``count`` distinct values, for display in previews.

        ``count`` values of zero or less return no samples (the cap is
        checked before inserting, so ``count=0`` no longer leaks one).
        """
        if count <= 0:
            return []
        seen: "OrderedDict[str, None]" = OrderedDict()
        for value in self.values:
            if value not in seen:
                seen[value] = None
                if len(seen) >= count:
                    break
        return list(seen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PatternCluster({self.pattern.notation()!r}, size={self.size})"


def initial_clusters(
    values: Iterable[str],
    discover_constants: bool = True,
    constant_threshold: float = 1.0,
) -> List[PatternCluster]:
    """Build the leaf-level clusters for ``values`` (tokenization phase).

    Args:
        values: Raw strings (one column of data).
        discover_constants: Whether to run constant-token promotion on
            each cluster (the "Find Constant Tokens" step).
        constant_threshold: Dominance threshold for constant promotion.
            The default of 1.0 promotes a position only when *every*
            member of the cluster shares the value, which preserves the
            invariant that each value matches its cluster's pattern.

    Returns:
        Clusters ordered by size, largest first (ties broken by pattern
        notation for determinism), matching the presentation order of
        Figure 3.
    """
    by_pattern: Dict[Pattern, PatternCluster] = {}
    tokenizations: Dict[Pattern, List[List]] = {}
    for value in values:
        tokens = tokenize(value)
        pattern = Pattern(tokens)
        cluster = by_pattern.get(pattern)
        if cluster is None:
            cluster = PatternCluster(pattern=pattern)
            by_pattern[pattern] = cluster
            tokenizations[pattern] = []
        cluster.values.append(value)
        tokenizations[pattern].append(tokens)

    clusters = list(by_pattern.values())
    if discover_constants:
        clusters = [
            _promote_cluster_constants(cluster, tokenizations[cluster.pattern], constant_threshold)
            for cluster in clusters
        ]
        clusters = _remerge_equal_patterns(clusters)
    clusters.sort(key=lambda c: (-c.size, c.pattern.notation()))
    return clusters


def _promote_cluster_constants(
    cluster: PatternCluster,
    tokenizations: Sequence[Sequence],
    threshold: float,
) -> PatternCluster:
    """Return a cluster whose dominant constant positions are literal."""
    constants = discover_constant_tokens(cluster.values, tokenizations, threshold=threshold)
    if not constants:
        return cluster
    promoted = promote_constants(cluster.pattern.tokens, constants)
    return PatternCluster(pattern=Pattern(promoted), values=list(cluster.values))


def _remerge_equal_patterns(clusters: Sequence[PatternCluster]) -> List[PatternCluster]:
    """Merge clusters whose patterns became identical after promotion."""
    merged: Dict[Pattern, PatternCluster] = {}
    for cluster in clusters:
        existing = merged.get(cluster.pattern)
        if existing is None:
            merged[cluster.pattern] = cluster
        else:
            existing.values.extend(cluster.values)
    return list(merged.values())
