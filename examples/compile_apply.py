"""Compile-once / apply-anywhere: the engine split end to end.

Synthesizes a phone-normalization program interactively on a small
verified sample, serializes it to JSON, then rebuilds a stateless engine
from the artifact — as a separate process would — and streams a much
larger column through it.

Run with:  PYTHONPATH=src python examples/compile_apply.py
"""

from __future__ import annotations

from repro import CLXSession, TransformEngine
from repro.bench.phone import phone_dataset


def main() -> None:
    # --- interaction half: synthesize once, under user verification ----
    sample, _ = phone_dataset(count=50, format_count=4, seed=7)
    session = CLXSession(sample)
    session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")

    print("Verified Replace operations:")
    for operation in session.explain():
        print(f"  {operation}")

    artifact = session.compile(metadata={"column": "phone"}).dumps(indent=2)
    print(f"\nserialized artifact: {len(artifact)} bytes of JSON")

    # --- execution half: a different process, a different dataset ------
    engine = TransformEngine.loads(artifact)
    column, _ = phone_dataset(count=5000, format_count=4, seed=99)

    flagged = 0
    for outcome in engine.run_iter(iter(column), chunk_size=1024):
        if not outcome.matched:
            flagged += 1
    print(f"streamed {len(column)} rows through the revived program; {flagged} flagged")

    # Multi-column batch apply over table rows.
    rows = [{"id": str(index), "phone": value} for index, value in enumerate(column[:3])]
    for row in TransformEngine.transform_table(rows, {"phone": engine}):
        print(row)


if __name__ == "__main__":
    main()
