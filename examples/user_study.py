#!/usr/bin/env python3
"""Regenerate the paper's user-study curves (Figures 11 and 12).

The paper measures how the *overall completion time* and the
*verification time* of three systems grow as the phone-number column gets
bigger and messier (10 rows / 2 formats, 100/4, 300/6).  Humans are
replaced here by the cost model of ``repro.simulation.verification``; the
quantities driving it (rows scanned, failures remaining, patterns and
Replace operations read) are measured from the actual systems running on
the synthetic workload.

Run with::

    python examples/user_study.py
"""

from repro.simulation.userstudy import run_scalability_study
from repro.simulation.verification import UserCostModel
from repro.util.text import format_table

SYSTEMS = ("RegexReplace", "FlashFill", "CLX")
CASES = ("10(2)", "100(4)", "300(6)")


def main() -> None:
    study = run_scalability_study(model=UserCostModel())

    print("Figure 11a — overall completion time (seconds)")
    rows = [
        [case] + [f"{study[case][system].total_seconds:7.1f}" for system in SYSTEMS]
        for case in CASES
    ]
    print(format_table(["case", *SYSTEMS], rows))

    print("\nFigure 11b — rounds of interaction")
    rows = [
        [case] + [study[case][system].interactions for system in SYSTEMS]
        for case in CASES
    ]
    print(format_table(["case", *SYSTEMS], rows))

    print("\nFigure 12 — verification time (seconds)")
    rows = [
        [case] + [f"{study[case][system].verification_seconds:7.1f}" for system in SYSTEMS]
        for case in CASES
    ]
    print(format_table(["case", *SYSTEMS], rows))

    print("\nGrowth from 10(2) to 300(6):")
    for system in SYSTEMS:
        total_growth = study["300(6)"][system].total_seconds / study["10(2)"][system].total_seconds
        verification_growth = (
            study["300(6)"][system].verification_seconds
            / study["10(2)"][system].verification_seconds
        )
        print(
            f"  {system:13s} completion x{total_growth:4.1f}   verification x{verification_growth:4.1f}"
        )
    print(
        "\nPaper's headline: CLX verification grew 1.3x while FlashFill's grew 11.4x "
        "when the data grew 30x."
    )


if __name__ == "__main__":
    main()
