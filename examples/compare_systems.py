#!/usr/bin/env python3
"""Compare user effort across CLX, FlashFill and RegexReplace.

Runs the paper's three simulated "lazy users" (Section 7.4) on a few
benchmark tasks and prints the Step counts side by side — a miniature
version of the Table 7 / Figure 15 experiment that the full benchmark
harness (``benchmarks/test_table7_fig15_effort.py``) runs over all 47
tasks.

Run with::

    python examples/compare_systems.py
"""

from repro.bench.suite import benchmark_suite
from repro.simulation.lazy_user import simulate_all
from repro.util.text import format_table


def main() -> None:
    suite = {task.task_id: task for task in benchmark_suite()}
    selected = [
        "sygus-phone-2",
        "sygus-name-1",
        "flashfill-dates",
        "blinkfill-medical-codes",
        "prose-email-login",
    ]

    rows = []
    for task_id in selected:
        task = suite[task_id]
        runs = simulate_all(task)
        rows.append(
            (
                task_id,
                task.size,
                runs["CLX"].steps.total,
                runs["FlashFill"].steps.total,
                runs["RegexReplace"].steps.total,
                "yes" if runs["CLX"].perfect else "no",
            )
        )

    print(
        format_table(
            ["task", "rows", "CLX steps", "FlashFill steps", "RegexReplace steps", "CLX perfect"],
            rows,
        )
    )
    print(
        "\nSteps: CLX = selections + repairs, FlashFill = examples, "
        "RegexReplace = 2 × rules; plus one step per row left wrong."
    )


if __name__ == "__main__":
    main()
