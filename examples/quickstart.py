#!/usr/bin/env python3
"""Quickstart: normalize a messy phone-number column with CLX.

This walks through the paper's motivating example (Section 2): Bob has a
column of phone numbers in half a dozen formats and wants them all as
``XXX-XXX-XXXX``.  With CLX he

1. sees the column summarized as a handful of *pattern clusters* instead
   of thousands of rows,
2. labels the desired pattern,
3. reviews the suggested regexp Replace operations, and
4. applies them — verifying at the pattern level throughout.

Run with::

    python examples/quickstart.py
"""

from repro import CLXSession
from repro.bench.phone import phone_dataset
from repro.core.preview import preview_table, render_preview


def main() -> None:
    # A synthetic stand-in for the paper's 331-row NYC phone column:
    # 300 rows across six formats.
    raw, _expected = phone_dataset(count=300, format_count=6, seed=331)

    session = CLXSession(raw)

    print("=== Step 1: cluster — the column as pattern clusters ===")
    for summary in session.pattern_summary():
        print(f"  {summary.pattern.notation():<40} {summary.count:>4} rows   e.g. {summary.samples[0]}")

    print("\n=== Step 2: label — choose the desired pattern ===")
    target = session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
    print(f"  target: {target.notation()}")

    print("\n=== Step 3: transform — suggested Replace operations ===")
    for operation in session.explain():
        print(f"  {operation}")

    report = session.transform()
    print("\n=== Step 4: verify — post-transformation pattern clusters ===")
    for summary in session.transformed_summary():
        print(f"  {summary.pattern.notation():<40} {summary.count:>4} rows")

    print("\nPreview (a few rows per source pattern):")
    print(render_preview(preview_table(report, per_pattern=2)))

    print(f"\n{report.conforming_count}/{report.row_count} rows now match the target "
          f"({report.flagged_count} flagged for review).")


if __name__ == "__main__":
    main()
