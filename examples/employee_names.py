#!/usr/bin/env python3
"""Normalizing employee names with program repair (paper Example 6 / Table 4).

Name tasks are the classic case of *semantic ambiguity* (Section 6.4):
``Dr. Eran Yahav`` and ``Bill Gates, Sr.`` contain several capitalized
words that are all syntactically similar to the target's last-name slot,
so the MDL-minimal plan is sometimes the wrong one.  CLX's answer is
program repair: because token alignment is complete, the correct plan is
always among the ranked candidates, and the user only has to pick it.

This example shows the repair loop explicitly: inspect the default plan,
check it on the data, swap in a better candidate where needed.

Run with::

    python examples/employee_names.py
"""

from repro import CLXSession
from repro.dsl.interpreter import apply_plan
from repro.patterns.matching import match_pattern


RAW_NAMES = [
    "Dr. Eran Yahav",
    "Fisher, K.",
    "Bill Gates, Sr.",
    "Oege de Moor",
    "Yahav, E.",
    "Gulwani, S.",
]

#: What each raw name should become ("Last, F." format).
DESIRED = {
    "Dr. Eran Yahav": "Yahav, E.",
    "Fisher, K.": "Fisher, K.",
    "Bill Gates, Sr.": "Gates, B.",
    "Oege de Moor": "Moor, O.",
    "Yahav, E.": "Yahav, E.",
    "Gulwani, S.": "Gulwani, S.",
}


def main() -> None:
    session = CLXSession(RAW_NAMES)
    session.label_target_from_string("Fisher, K.", generalize=1)

    print("Default program:")
    print(session.program)

    # Verify each branch against the rows it matches and repair if wrong.
    repairs = 0
    for branch in list(session.program):
        rows = [raw for raw in RAW_NAMES if match_pattern(raw, branch.pattern) is not None]
        wrong = [
            raw for raw in rows
            if apply_plan(branch.plan, match_pattern(raw, branch.pattern)) != DESIRED[raw]
        ]
        if not wrong:
            continue
        print(f"\nDefault plan for {branch.pattern.notation()} is wrong on {wrong!r}; repairing…")
        candidates = session.repair_candidates(branch.pattern)
        for candidate in candidates.alternatives:
            if all(
                apply_plan(candidate, match_pattern(raw, branch.pattern)) == DESIRED[raw]
                for raw in rows
            ):
                session.apply_repair(branch.pattern, candidate)
                repairs += 1
                print(f"  repaired with: {candidate}")
                break

    print(f"\nRepairs performed: {repairs}")
    report = session.transform()
    print("\nRaw data                 Transformed data")
    for raw, out in report.pairs():
        marker = "" if out == DESIRED[raw] else "   <-- still wrong"
        print(f"{raw:<24} {out}{marker}")


if __name__ == "__main__":
    main()
