#!/usr/bin/env python3
"""Normalizing messy medical billing codes (paper Example 5 / Table 3).

The goal is to bring every CPT billing code into the form ``[CPT-XXXXX]``.
The raw data mixes four formats::

    CPT-00350      ->  [CPT-00350]
    [CPT-00340     ->  [CPT-00340]
    [CPT-11536]    ->  [CPT-11536]   (already correct)
    CPT115         ->  [CPT-115]

The target is labelled at the *generalized* level (``'['<U>+'-'<D>+']'``)
— the user clicks the parent pattern in the hierarchy — which is what
lets a single program cover codes of different widths, exactly as in the
paper's Example 5 UniFi program.

Run with::

    python examples/medical_codes.py
"""

from repro import CLXSession


RAW_CODES = [
    "CPT-00350",
    "[CPT-00340",
    "[CPT-11536]",
    "CPT115",
    "CPT-21210",
    "[CPT-00561",
    "CPT984",
    "[CPT-40012]",
]


def main() -> None:
    session = CLXSession(RAW_CODES)

    print("Pattern clusters discovered in the raw data:")
    for summary in session.pattern_summary():
        print(f"  {summary.pattern.notation():<28} {summary.count} rows   e.g. {summary.samples[0]}")

    # Label the generalized pattern of an already-correct value, i.e. the
    # parent cluster "'['<U>+'-'<D>+']'".
    target = session.label_target_from_string("[CPT-11536]", generalize=1)
    print(f"\nTarget pattern: {target.notation()}")

    print("\nSynthesized UniFi program:")
    print(session.program)

    print("\nExplained as Replace operations:")
    for operation in session.explain():
        print(f"  {operation}")

    report = session.transform()
    print("\nRaw data                 Transformed data")
    for raw, out in report.pairs():
        print(f"{raw:<24} {out}")

    assert report.is_perfect, "every code should now match [CPT-XXXXX]"
    print("\nAll codes normalized.")


if __name__ == "__main__":
    main()
