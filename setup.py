"""Setuptools shim.

The project metadata lives in pyproject.toml; this file exists so that
environments without the ``wheel`` package (where PEP 660 editable
installs fail) can still do ``python setup.py develop``.
"""
from setuptools import setup

setup()
