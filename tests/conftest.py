"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import random

import pytest

from repro.bench.phone import phone_dataset
from repro.patterns.parse import parse_pattern

#: Seed knob for the property/fuzz suites.  The default is fixed so CI
#: and local runs are reproducible; set ``CLX_PROPERTY_SEED=random`` for
#: a fresh seed per run (CI's allowed-to-fail leg), or to any integer to
#: replay a reported failure.
PROPERTY_SEED_ENV = "CLX_PROPERTY_SEED"
DEFAULT_PROPERTY_SEED = 1729


def resolve_property_seed() -> int:
    raw = os.environ.get(PROPERTY_SEED_ENV, str(DEFAULT_PROPERTY_SEED))
    if raw == "random":
        return random.SystemRandom().randrange(2**32)
    return int(raw)


@pytest.fixture
def property_rng(request):
    """A seeded RNG for randomized property/fuzz tests.

    The seed is always printed into the test's captured output (and
    carried on the RNG as ``.seed``), so any failure names the seed
    that reproduces it: ``CLX_PROPERTY_SEED=<seed> pytest <test>``.
    """
    seed = resolve_property_seed()
    print(f"[{request.node.nodeid}] CLX_PROPERTY_SEED={seed}")
    rng = random.Random(seed)
    rng.seed_value = seed
    return rng


@pytest.fixture
def phone_values():
    """The phone formats of the paper's Figure 1 plus an N/A noise row."""
    return [
        "(734) 645-8397",
        "(734)586-7252",
        "734-422-8073",
        "734.236.3466",
        "7342363466",
        "+1 724-285-5210",
        "N/A",
    ]


@pytest.fixture
def phone_target():
    """The user-study target pattern XXX-XXX-XXXX."""
    return parse_pattern("<D>3'-'<D>3'-'<D>4")


@pytest.fixture
def phone_paren_target():
    """The motivating-example target pattern (XXX) XXX-XXXX."""
    return parse_pattern("'('<D>3')'' '<D>3'-'<D>4")


@pytest.fixture
def medical_codes():
    """The rows of the paper's Table 3 (Example 5)."""
    return ["CPT-00350", "[CPT-00340", "[CPT-11536]", "CPT115"]


@pytest.fixture
def employee_names():
    """The rows of the paper's Table 4 (Example 6)."""
    return ["Dr. Eran Yahav", "Fisher, K.", "Bill Gates, Sr.", "Oege de Moor"]


@pytest.fixture
def small_phone_column():
    """A deterministic 30-row, 4-format synthetic phone column."""
    raw, expected = phone_dataset(count=30, format_count=4, seed=7)
    return raw, expected
