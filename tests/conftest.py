"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.bench.phone import phone_dataset
from repro.patterns.parse import parse_pattern


@pytest.fixture
def phone_values():
    """The phone formats of the paper's Figure 1 plus an N/A noise row."""
    return [
        "(734) 645-8397",
        "(734)586-7252",
        "734-422-8073",
        "734.236.3466",
        "7342363466",
        "+1 724-285-5210",
        "N/A",
    ]


@pytest.fixture
def phone_target():
    """The user-study target pattern XXX-XXX-XXXX."""
    return parse_pattern("<D>3'-'<D>3'-'<D>4")


@pytest.fixture
def phone_paren_target():
    """The motivating-example target pattern (XXX) XXX-XXXX."""
    return parse_pattern("'('<D>3')'' '<D>3'-'<D>4")


@pytest.fixture
def medical_codes():
    """The rows of the paper's Table 3 (Example 5)."""
    return ["CPT-00350", "[CPT-00340", "[CPT-11536]", "CPT115"]


@pytest.fixture
def employee_names():
    """The rows of the paper's Table 4 (Example 6)."""
    return ["Dr. Eran Yahav", "Fisher, K.", "Bill Gates, Sr.", "Oege de Moor"]


@pytest.fixture
def small_phone_column():
    """A deterministic 30-row, 4-format synthetic phone column."""
    raw, expected = phone_dataset(count=30, format_count=4, seed=7)
    return raw, expected
