"""Tests for the end-to-end pattern profiler."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.profiler import PatternProfiler, profile
from repro.patterns.generalize import generalize_quantifier
from repro.patterns.matching import matches
from repro.util.errors import ValidationError


class TestProfiler:
    def test_empty_input_raises(self):
        with pytest.raises(ValidationError):
            profile([])

    def test_allow_empty_returns_empty_hierarchy(self):
        hierarchy = PatternProfiler(allow_empty=True).profile([])
        assert hierarchy.leaf_nodes == []

    def test_leaf_patterns_match_figure_3(self, phone_values):
        hierarchy = profile(phone_values)
        notations = {p.notation() for p in hierarchy.leaf_patterns()}
        assert "'('<D>3')'' '<D>3'-'<D>4" in notations
        assert "<D>3'-'<D>3'-'<D>4" in notations
        assert "<D>3'.'<D>3'.'<D>4" in notations

    def test_row_counts_preserved(self, small_phone_column):
        raw, _expected = small_phone_column
        hierarchy = profile(raw)
        assert hierarchy.total_rows == len(raw)

    def test_custom_strategies(self, phone_values):
        hierarchy = profile(phone_values, strategies=[generalize_quantifier])
        assert hierarchy.depth == 2

    def test_values_are_coerced_to_str(self):
        hierarchy = profile([123, 456])
        assert hierarchy.leaf_patterns()[0].notation() == "<D>3"

    def test_leaf_count_never_exceeds_row_count(self, small_phone_column):
        raw, _expected = small_phone_column
        hierarchy = profile(raw)
        assert len(hierarchy.leaf_nodes) <= len(raw)

    def test_higher_layers_never_have_more_nodes(self, small_phone_column):
        raw, _expected = small_phone_column
        hierarchy = profile(raw)
        sizes = [len(layer) for layer in hierarchy.layers]
        assert all(later <= earlier for earlier, later in zip(sizes, sizes[1:]))


ascii_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), min_size=1, max_size=25
)


class TestProfilerProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(ascii_text, min_size=1, max_size=30))
    def test_every_value_is_covered_by_some_leaf(self, values):
        hierarchy = profile(values)
        for value in values:
            assert any(matches(value, node.pattern) for node in hierarchy.leaf_nodes)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(ascii_text, min_size=1, max_size=30))
    def test_total_rows_equals_input_size(self, values):
        assert profile(values).total_rows == len(values)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(ascii_text, min_size=1, max_size=30))
    def test_every_layer_covers_every_value(self, values):
        hierarchy = profile(values)
        for layer in hierarchy.layers:
            for value in values:
                assert any(matches(value, node.pattern) for node in layer)
