"""Tests for the FlashFill-style PBE baseline."""

from __future__ import annotations

import pytest

from repro.baselines.flashfill import FlashFillProgram, FlashFillSession, FlashFillSynthesizer
from repro.util.errors import ValidationError


class TestSynthesizer:
    def test_single_example_generalizes_over_widths(self):
        program = FlashFillSynthesizer().learn([("734.236.3466", "734-236-3466")])
        assert program.apply("999.111.2222") == "999-111-2222"

    def test_one_case_per_input_format(self):
        program = FlashFillSynthesizer().learn(
            [("734.236.3466", "734-236-3466"), ("(734) 645-8397", "734-645-8397")]
        )
        assert len(program) == 2
        assert program.apply("(111) 222-3333") == "111-222-3333"

    def test_second_example_disambiguates(self):
        """One name example is ambiguous; a second one pins the right plan."""
        synthesizer = FlashFillSynthesizer()
        one = synthesizer.learn([("Mary Miller", "Miller, M.")])
        two = synthesizer.learn(
            [("Mary Miller", "Miller, M."), ("James Gates", "Gates, J.")]
        )
        assert two.apply("Robert Smith") == "Smith, R."
        # With both examples the program is consistent on the data it saw.
        assert two.apply("Mary Miller") == "Miller, M."
        assert two.apply("James Gates") == "Gates, J."
        assert isinstance(one, FlashFillProgram)

    def test_unlearnable_group_contributes_no_case(self):
        # Two rows with the same pattern but contradictory outputs.
        program = FlashFillSynthesizer().learn(
            [("abc.picture.pdf", "picture"), ("xyz.invoice.pdf", "pdf")]
        )
        # The generalized group is inconsistent and the exact subgroups have
        # the same shape, so at most one of the two rows can be satisfied.
        outputs = {program.apply("abc.picture.pdf"), program.apply("xyz.invoice.pdf")}
        assert outputs != {"picture", "pdf"}

    def test_identity_examples_learn_identity(self):
        program = FlashFillSynthesizer().learn([("Fisher, K.", "Fisher, K.")])
        assert program.apply("Jones, P.") == "Jones, P."

    def test_empty_examples_learn_empty_program(self):
        program = FlashFillSynthesizer().learn([])
        assert len(program) == 0
        assert program.apply("anything") is None


class TestSession:
    def test_requires_data(self):
        with pytest.raises(ValidationError):
            FlashFillSession([])

    def test_add_example_updates_program_and_outputs(self):
        session = FlashFillSession(["734.236.3466", "999.111.2222", "(734) 645-8397"])
        session.add_example("734.236.3466", "734-236-3466")
        outputs = session.outputs()
        assert outputs[0] == "734-236-3466"
        assert outputs[1] == "999-111-2222"
        assert outputs[2] is None  # format not yet exemplified

    def test_outputs_or_input_passes_unhandled_rows_through(self):
        session = FlashFillSession(["734.236.3466", "(734) 645-8397"])
        session.add_example("734.236.3466", "734-236-3466")
        assert session.outputs_or_input()[1] == "(734) 645-8397"

    def test_failing_rows_against_expected(self):
        expected = {
            "734.236.3466": "734-236-3466",
            "(734) 645-8397": "734-645-8397",
        }
        session = FlashFillSession(list(expected))
        assert set(session.failing_rows(expected)) == set(expected)
        session.add_example("734.236.3466", "734-236-3466")
        assert session.failing_rows(expected) == ["(734) 645-8397"]
        session.add_example("(734) 645-8397", "734-645-8397")
        assert session.is_complete(expected)

    def test_failing_rows_against_pattern(self, phone_target):
        session = FlashFillSession(["734.236.3466", "N/A"])
        session.add_example("734.236.3466", "734-236-3466")
        failing = session.failing_rows_against_pattern(phone_target)
        assert failing == ["N/A"]

    def test_example_count_and_examples(self):
        session = FlashFillSession(["a1", "b2"])
        session.add_example("a1", "1")
        assert session.example_count == 1
        assert session.examples == [("a1", "1")]
