"""Fuzz tests for CSV record-boundary scanning at shard boundaries.

The byte-range fan-out stands on two primitives in :mod:`repro.util.csvio`:

* :func:`record_open_after` — the per-line quote-parity state machine
  (csv-module semantics: a quote is only special at field start, ``""``
  escapes, a stray inch-mark in an unquoted cell is data);
* :func:`record_aligned_offsets` — one sequential scan mapping byte
  targets to *record* boundaries, which is what lets shards split files
  whose quoted fields contain embedded newlines.

The fuzz corpus generates messy CSVs — quoted embedded newlines, ``""``
escapes, stray quotes in unquoted cells, empty fields, CRLF endings —
and asserts, at random shard boundaries:

1. the state machine agrees with the csv module's own parse about where
   records end;
2. aligned offsets always land on true record starts;
3. byte-range profiling equals whole-file profiling (the lifted
   embedded-newline caveat), at multiple worker counts.

Seeds print per test; replay with ``CLX_PROPERTY_SEED=<seed>``.
"""

from __future__ import annotations

import csv
import io

from repro.clustering.incremental import IncrementalProfiler
from repro.clustering.parallel import ParallelProfiler
from repro.util.csvio import record_aligned_offsets, record_open_after

#: Fuzz rounds per property.
ROUNDS = 25

#: Cell ingredients skewed toward quoting edge cases.
_CELL_POOLS = (
    "plain",
    "has\nnewline",
    "has\n\ntwo newlines",
    'quote " inside',
    '6" nail',
    'starts"with',
    "comma, inside",
    "",
    "ends with space ",
    '""',
    "'single'",
    "multi\nline, with comma",
)


def _random_cell(rng) -> str:
    base = rng.choice(_CELL_POOLS)
    if rng.random() < 0.3:
        base += str(rng.randrange(100))
    return base


def _random_row(rng, columns: int) -> list:
    row = [_random_cell(rng) for _ in range(columns)]
    if not any(row):
        # An all-empty row encodes as a blank line, which csv.reader
        # reports as [] — keep the corpus round-trippable instead.
        row[0] = "x"
    return row


def _random_csv(rng) -> tuple[str, list[list[str]]]:
    """A messy CSV (text, rows) written by the csv module itself."""
    columns = rng.randint(1, 4)
    rows = [_random_row(rng, columns) for _ in range(rng.randint(1, 60))]
    buffer = io.StringIO()
    writer = csv.writer(
        buffer, lineterminator="\r\n" if rng.random() < 0.3 else "\n"
    )
    writer.writerows(rows)
    return buffer.getvalue(), rows


class TestRecordOpenAfter:
    def test_agrees_with_the_csv_module_on_fuzzed_files(self, property_rng):
        rng = property_rng
        for round_index in range(ROUNDS):
            text, rows = _random_csv(rng)
            context = f"seed={rng.seed_value} round={round_index}"
            # Replaying the state machine over physical lines must close
            # exactly len(rows) records, in order, and end closed.
            open_state = False
            records = 0
            for line in text.splitlines(keepends=True):
                open_state = record_open_after(line, ",", open_state)
                if not open_state:
                    records += 1
            assert open_state is False, context
            assert records == len(rows), context
            # And the csv module parses the text back to the same rows,
            # so the fuzz corpus itself is well-formed.
            assert list(csv.reader(io.StringIO(text))) == rows, context


class TestRecordAlignedOffsets:
    def test_aligned_offsets_are_true_record_starts(self, property_rng, tmp_path):
        rng = property_rng
        for round_index in range(ROUNDS):
            text, rows = _random_csv(rng)
            raw = text.encode("utf-8")
            path = tmp_path / f"fuzz-{round_index}.csv"
            path.write_bytes(raw)
            context = f"seed={rng.seed_value} round={round_index}"

            # Ground truth: byte offsets where records begin, via a
            # sequential replay of the state machine.
            starts = []
            position = 0
            open_state = False
            with path.open("rb") as handle:
                while True:
                    if not open_state:
                        starts.append(position)
                    line = handle.readline()
                    if not line:
                        break
                    open_state = record_open_after(line.decode("utf-8"), ",", open_state)
                    position = handle.tell()
            true_starts = set(starts) | {len(raw)}

            targets = sorted(rng.randrange(len(raw) + 1) for _ in range(rng.randint(1, 6)))
            aligned = record_aligned_offsets(str(path), 0, len(raw), targets)
            assert len(aligned) == len(targets), context
            assert aligned == sorted(aligned), context
            for target, offset in zip(targets, aligned):
                assert offset >= target, context
                assert offset in true_starts, (context, target, offset)

    def test_splitting_at_aligned_offsets_partitions_the_records(
        self, property_rng, tmp_path
    ):
        rng = property_rng
        for round_index in range(ROUNDS):
            text, rows = _random_csv(rng)
            raw = text.encode("utf-8")
            path = tmp_path / f"fuzz-{round_index}.csv"
            path.write_bytes(raw)
            targets = sorted(rng.randrange(len(raw) + 1) for _ in range(rng.randint(1, 5)))
            bounds = (
                [0]
                + record_aligned_offsets(str(path), 0, len(raw), targets)
                + [len(raw)]
            )
            pieces = [
                raw[start:end].decode("utf-8")
                for start, end in zip(bounds, bounds[1:])
                if start < end
            ]
            reassembled = [
                row
                for piece in pieces
                for row in csv.reader(io.StringIO(piece))
            ]
            assert reassembled == rows, f"seed={rng.seed_value} round={round_index}"


class TestByteRangeEqualsWholeFile:
    def test_fuzzed_files_profile_identically_at_any_worker_count(
        self, property_rng, tmp_path
    ):
        # The lifted caveat, end to end: byte-range profiling of files
        # with quoted embedded newlines at shard boundaries must equal
        # the whole-file pass.
        rng = property_rng
        for round_index in range(min(ROUNDS, 8)):
            columns = rng.randint(1, 3)
            header = [f"c{i}" for i in range(columns)]
            rows = [_random_row(rng, columns) for _ in range(rng.randint(1, 80))]
            path = tmp_path / f"fuzz-{round_index}.csv"
            with path.open("w", newline="", encoding="utf-8") as handle:
                writer = csv.writer(handle)
                writer.writerow(header)
                writer.writerows(rows)
            column = rng.choice(header)
            expected_values = [row[header.index(column)] for row in rows]
            serial = IncrementalProfiler().profile(iter(expected_values))
            whole = ParallelProfiler(workers=1).profile_file(path, column)
            signature = lambda profile: sorted(
                (pattern.notation(), count)
                for pattern, count in profile.leaf_counts().items()
            )
            context = f"seed={rng.seed_value} round={round_index}"
            assert signature(whole) == signature(serial), context
            for workers in (2, 3, 5):
                sharded = ParallelProfiler(workers=workers).profile_file(path, column)
                assert sharded.row_count == len(rows), (context, workers)
                assert signature(sharded) == signature(serial), (context, workers)
