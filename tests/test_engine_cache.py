"""Tests for the content-addressed artifact cache."""

from __future__ import annotations

import pytest

from repro.bench.phone import phone_dataset
from repro.clustering.incremental import IncrementalProfiler
from repro.core.session import CLXSession
from repro.engine.cache import ArtifactCache, cache_key


@pytest.fixture(scope="module")
def compiled():
    raw, _ = phone_dataset(count=120, format_count=4, seed=13)
    session = CLXSession(raw)
    session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
    return session.compile(metadata={"column": "phone"})


class TestColumnFingerprint:
    def test_same_data_same_fingerprint_any_order(self):
        raw, _ = phone_dataset(count=200, format_count=4, seed=17)
        forward = IncrementalProfiler().profile(iter(raw))
        backward = IncrementalProfiler().profile(iter(reversed(raw)))
        assert forward.fingerprint() == backward.fingerprint()

    def test_different_data_different_fingerprint(self):
        raw, _ = phone_dataset(count=200, format_count=4, seed=17)
        full = IncrementalProfiler().profile(iter(raw))
        partial = IncrementalProfiler().profile(iter(raw[:150]))
        assert full.fingerprint() != partial.fingerprint()

    def test_configuration_is_part_of_the_fingerprint(self):
        raw, _ = phone_dataset(count=200, format_count=4, seed=17)
        with_constants = IncrementalProfiler().profile(iter(raw))
        without = IncrementalProfiler(discover_constants=False).profile(iter(raw))
        assert with_constants.fingerprint() != without.fingerprint()


class TestCacheKey:
    def test_stable_and_sensitive(self):
        key = cache_key("abc", "pattern:<D>3", {"generalize": 0})
        assert key == cache_key("abc", "pattern:<D>3", {"generalize": 0})
        assert key != cache_key("abd", "pattern:<D>3", {"generalize": 0})
        assert key != cache_key("abc", "pattern:<D>4", {"generalize": 0})
        assert key != cache_key("abc", "pattern:<D>3", {"generalize": 1})


class TestArtifactCache:
    def test_round_trips_a_compiled_program(self, tmp_path, compiled):
        cache = ArtifactCache(tmp_path / "cache")
        key = cache_key("fp", "pattern:<D>3'-'<D>3'-'<D>4")
        assert cache.load(key) is None
        assert key not in cache
        path = cache.store(key, compiled)
        assert path.is_file() and path.suffix == ".json"
        assert key in cache
        loaded = cache.load(key)
        assert loaded is not None
        assert loaded.dumps() == compiled.dumps()

    def test_creates_the_directory(self, tmp_path):
        nested = tmp_path / "a" / "b" / "cache"
        ArtifactCache(nested)
        assert nested.is_dir()

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path, compiled):
        cache = ArtifactCache(tmp_path)
        key = cache_key("fp", "target")
        cache.path(key).write_text("{not valid at all", encoding="utf-8")
        assert cache.load(key) is None
        # and a store overwrites it cleanly
        cache.store(key, compiled)
        assert cache.load(key) is not None

    def test_non_utf8_entry_is_a_miss_not_an_error(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache_key("fp", "target")
        cache.path(key).write_bytes(b"\xff\xfe\x00 garbage")
        assert cache.load(key) is None

    def test_store_leaves_no_scratch_files_behind(self, tmp_path, compiled):
        cache = ArtifactCache(tmp_path)
        cache.store(cache_key("fp", "target"), compiled)
        assert [p.suffix for p in tmp_path.iterdir()] == [".json"]
