"""Fault-injection harness for the resilient-apply stack.

Every test arms the :mod:`repro.util.faults` seam (crashes, hard
exits, hangs, injected exceptions at named points inside workers and
sinks) and then asserts the one invariant the tentpole promises: an
injected infrastructure fault yields either **byte-identical output**
(transient fault, absorbed by the retry budget) or a **clean failure**
(poison fault: an exact error naming the work, no partial sink files,
no orphaned worker processes).  A final randomized test rolls fault
point / kind / retry budget from ``property_rng`` so CI's randomized
leg explores combinations the fixed-seed tests do not.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.bench.phone import phone_dataset
from repro.core.session import CLXSession
from repro.dataset import Dataset
from repro.engine.parallel import ShardedTableExecutor, apply_dataset
from repro.engine.resilience import quarantine_file_name
from repro.util import faults
from repro.util.errors import CLXError
from repro.util.pools import FaultPolicy, PoolTaskFailure, ResilientPool


@pytest.fixture(scope="module")
def phone_engine():
    raw, _ = phone_dataset(count=90, format_count=4, seed=13)
    session = CLXSession(raw)
    session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
    return session.engine()


@pytest.fixture
def arm(monkeypatch, tmp_path_factory):
    """Arm fault clauses for this test; the cache is dropped at teardown.

    Sets ``CLX_FAULTS_DIR`` so ``once`` markers survive worker respawns
    (crashed workers are replaced by fresh processes, so a per-process
    "already fired" flag would re-fire forever).
    """

    def _arm(*clauses: str) -> None:
        markers = tmp_path_factory.mktemp("fault-markers")
        monkeypatch.setenv(faults.FAULTS_ENV, ";".join(clauses))
        monkeypatch.setenv(faults.FAULTS_DIR_ENV, str(markers))
        faults.reset()

    yield _arm
    faults.reset()


def _disarm(monkeypatch) -> None:
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.reset()


def _write_parts(tmp_path, values):
    """Two CSV partitions and one JSONL partition over (id, phone)."""
    third = len(values) // 3
    data = tmp_path / "data"
    data.mkdir()
    with (data / "part-0.csv").open("w", encoding="utf-8", newline="") as handle:
        handle.write("id,phone\n")
        for index, value in enumerate(values[:third]):
            handle.write(f"{index},{value}\n")
    with (data / "part-1.jsonl").open("w", encoding="utf-8") as handle:
        for index, value in enumerate(values[third : 2 * third]):
            handle.write(json.dumps({"id": index + third, "phone": value}) + "\n")
    with (data / "part-2.csv").open("w", encoding="utf-8", newline="") as handle:
        handle.write("id,phone\n")
        for index, value in enumerate(values[2 * third :]):
            handle.write(f"{index + 2 * third},{value}\n")
    return Dataset.resolve(str(data / "part-*"))


def _apply(
    engine,
    dataset,
    *,
    output=None,
    output_dir=None,
    workers=2,
    policy=None,
    on_error="abort",
    quarantine_dir=None,
    resume=False,
    shard_bytes=512,
):
    with ShardedTableExecutor(
        {"phone": engine},
        ["id", "phone"],
        workers=workers,
        out_format="jsonl",
        on_error=on_error,
        fault_policy=policy or FaultPolicy(),
    ) as executor:
        return apply_dataset(
            executor,
            dataset,
            output=output,
            output_dir=output_dir,
            shard_bytes=shard_bytes,
            quarantine_dir=quarantine_dir,
            resume=resume,
        )


def _visible_files(directory):
    return {
        path.name: path.read_bytes()
        for path in directory.iterdir()
        if not path.name.startswith(".")
    }


def _assert_no_temps(directory):
    strays = [path.name for path in directory.iterdir() if ".clx-tmp." in path.name]
    assert strays == []


def _join_children(deadline_seconds=10.0):
    deadline = time.monotonic() + deadline_seconds
    for child in multiprocessing.active_children():
        child.join(max(0.0, deadline - time.monotonic()))
    return [child for child in multiprocessing.active_children() if child.is_alive()]


@pytest.fixture
def baseline(phone_engine, tmp_path):
    """A clean (fault-free) output-dir run: the byte oracle."""
    values, _ = phone_dataset(count=45, format_count=4, seed=21)
    dataset = _write_parts(tmp_path, values)
    outdir = tmp_path / "clean"
    _apply(phone_engine, dataset, output_dir=outdir, workers=1)
    return dataset, _visible_files(outdir)


class TestTransientFaults:
    """Faults inside the retry budget are invisible in the output bytes."""

    def test_single_worker_crash_retries_to_identical_output(
        self, phone_engine, baseline, tmp_path, arm
    ):
        dataset, expected = baseline
        arm("worker.chunk:crash:*:once")
        outdir = tmp_path / "out-crash"
        result = _apply(
            phone_engine,
            dataset,
            output_dir=outdir,
            policy=FaultPolicy(max_retries=2, backoff_base=0.01),
        )
        assert _visible_files(outdir) == expected
        assert result.quarantined == 0
        _assert_no_temps(outdir)

    def test_single_worker_hard_exit_retries_to_identical_output(
        self, phone_engine, baseline, tmp_path, arm
    ):
        dataset, expected = baseline
        arm("worker.shard:exit:*:once")
        outdir = tmp_path / "out-exit"
        _apply(
            phone_engine,
            dataset,
            output_dir=outdir,
            policy=FaultPolicy(max_retries=2, backoff_base=0.01),
        )
        assert _visible_files(outdir) == expected

    def test_single_hang_with_shard_timeout_retries_to_identical_output(
        self, phone_engine, baseline, tmp_path, arm
    ):
        dataset, expected = baseline
        arm("worker.shard:hang:*:once")
        outdir = tmp_path / "out-hang"
        _apply(
            phone_engine,
            dataset,
            output_dir=outdir,
            policy=FaultPolicy(max_retries=2, shard_timeout=1.0, backoff_base=0.01),
        )
        assert _visible_files(outdir) == expected


class TestPoisonFaults:
    """Deterministic faults exhaust the budget and fail (or quarantine) cleanly."""

    def test_poison_crash_aborts_naming_file_and_byte_range(
        self, phone_engine, baseline, tmp_path, arm
    ):
        dataset, _ = baseline
        arm("worker.shard:crash:k=part-1")
        outdir = tmp_path / "out-poison"
        with pytest.raises(CLXError, match=r"part-1\.jsonl bytes \[\d+, \d+\)") as info:
            _apply(
                phone_engine,
                dataset,
                output_dir=outdir,
                policy=FaultPolicy(max_retries=1, backoff_base=0.01),
            )
        assert "poisoned" in str(info.value)
        # part-1's output never landed, and no temp file survived.
        assert "part-1.jsonl" not in _visible_files(outdir)
        _assert_no_temps(outdir)
        assert _join_children() == []

    def test_poison_hang_aborts_with_timeout_message(
        self, phone_engine, baseline, tmp_path, arm
    ):
        dataset, _ = baseline
        arm("worker.shard:hang:k=part-2")
        outdir = tmp_path / "out-hung"
        with pytest.raises(CLXError, match="shard timeout"):
            _apply(
                phone_engine,
                dataset,
                output_dir=outdir,
                policy=FaultPolicy(
                    max_retries=1, shard_timeout=0.5, backoff_base=0.01
                ),
            )
        _assert_no_temps(outdir)
        assert _join_children() == []

    def test_poison_shard_quarantined_whole_in_quarantine_mode(
        self, phone_engine, baseline, tmp_path, arm
    ):
        dataset, expected = baseline
        arm("worker.shard:crash:k=part-1")
        outdir = tmp_path / "out-qshard"
        qdir = tmp_path / "quarantine"
        result = _apply(
            phone_engine,
            dataset,
            output_dir=outdir,
            policy=FaultPolicy(max_retries=1, backoff_base=0.01),
            on_error="quarantine",
            quarantine_dir=qdir,
        )
        assert result.quarantined > 0
        produced = _visible_files(outdir)
        # The untouched partitions are byte-identical to the clean run.
        assert produced["part-0.jsonl"] == expected["part-0.jsonl"]
        assert produced["part-2.jsonl"] == expected["part-2.jsonl"]
        records = [
            json.loads(line)
            for line in (qdir / quarantine_file_name("part-1.jsonl"))
            .read_text(encoding="utf-8")
            .splitlines()
        ]
        assert len(records) == result.quarantined
        assert all("quarantined whole" in record["error"] for record in records)
        # Every quarantined record names its source and absolute line.
        assert all(record["source"].endswith("part-1.jsonl") for record in records)
        assert [record["line"] for record in records] == sorted(
            record["line"] for record in records
        )


def _bad_record_parts(tmp_path):
    """One JSONL partition with three malformed lines past the first shard.

    Rows are long enough that ``shard_bytes=256`` splits the file, so the
    bad lines land in a mid-file shard — the error (and the quarantine
    records) must still carry the *absolute* line numbers 31, 33, 35.
    """
    values, _ = phone_dataset(count=40, format_count=4, seed=3)
    data = tmp_path / "bad"
    data.mkdir()
    lines = [
        json.dumps({"id": f"row-{index:04d}-{'x' * 40}", "phone": value})
        for index, value in enumerate(values)
    ]
    lines[30] = "garbage record 001"
    lines[32] = "garbage record 002"
    lines[34] = "garbage record 003"
    path = data / "rows.jsonl"
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return Dataset.resolve(str(path)), path


class TestRecordQuarantine:
    def test_abort_mode_names_partition_and_absolute_line_in_mid_file_shard(
        self, phone_engine, tmp_path
    ):
        dataset, path = _bad_record_parts(tmp_path)
        with pytest.raises(CLXError, match=rf"{path} line 31\b"):
            _apply(
                phone_engine,
                dataset,
                output=tmp_path / "out.jsonl",
                shard_bytes=256,
            )

    def test_quarantine_is_deterministic_across_worker_counts(
        self, phone_engine, tmp_path
    ):
        dataset, path = _bad_record_parts(tmp_path)
        outputs, qfiles, counts = [], [], []
        for workers in (1, 3):
            outdir = tmp_path / f"out-w{workers}"
            qdir = tmp_path / f"q-w{workers}"
            result = _apply(
                phone_engine,
                dataset,
                output_dir=outdir,
                workers=workers,
                on_error="quarantine",
                quarantine_dir=qdir,
                shard_bytes=256,
            )
            counts.append(result.quarantined)
            outputs.append(_visible_files(outdir))
            qfiles.append(
                (qdir / quarantine_file_name("rows.jsonl")).read_bytes()
            )
        assert counts == [3, 3]
        assert outputs[0] == outputs[1]
        assert qfiles[0] == qfiles[1]
        records = [json.loads(line) for line in qfiles[0].decode().splitlines()]
        assert [record["line"] for record in records] == [31, 33, 35]
        assert all(record["source"] == str(path) for record in records)
        assert [record["record"] for record in records] == [
            "garbage record 001",
            "garbage record 002",
            "garbage record 003",
        ]

    def test_resynthesis_hint_when_quarantined_records_share_a_pattern(
        self, phone_engine, tmp_path
    ):
        dataset, _ = _bad_record_parts(tmp_path)
        result = _apply(
            phone_engine,
            dataset,
            output_dir=tmp_path / "out",
            on_error="quarantine",
            quarantine_dir=tmp_path / "q",
            shard_bytes=256,
        )
        assert result.hint is not None
        assert "3/3" in result.hint and "re-synthesizing" in result.hint


class TestCrashSafeSinks:
    def test_failed_spliced_output_leaves_no_file(
        self, phone_engine, baseline, tmp_path, arm
    ):
        dataset, _ = baseline
        arm("sink.write:raise:*")
        destination = tmp_path / "spliced" / "out.jsonl"
        destination.parent.mkdir()
        with pytest.raises(faults.FaultInjected):
            _apply(phone_engine, dataset, output=destination)
        assert not destination.exists()
        _assert_no_temps(destination.parent)

    def test_failed_spliced_output_preserves_previous_bytes(
        self, phone_engine, baseline, tmp_path, arm
    ):
        dataset, _ = baseline
        destination = tmp_path / "spliced" / "out.jsonl"
        destination.parent.mkdir()
        destination.write_text("previous run's bytes\n", encoding="utf-8")
        arm("sink.write:raise:k=part-2")
        with pytest.raises(faults.FaultInjected):
            _apply(phone_engine, dataset, output=destination)
        assert destination.read_text(encoding="utf-8") == "previous run's bytes\n"
        _assert_no_temps(destination.parent)

    def test_output_dir_failure_keeps_finished_parts_and_no_partials(
        self, phone_engine, baseline, tmp_path, arm
    ):
        dataset, expected = baseline
        arm("sink.write:raise:k=part-2")
        outdir = tmp_path / "out-partial"
        with pytest.raises(faults.FaultInjected):
            _apply(phone_engine, dataset, output_dir=outdir)
        produced = _visible_files(outdir)
        assert "part-2.jsonl" not in produced
        for name, data in produced.items():
            assert data == expected[name]
        _assert_no_temps(outdir)
        manifest = json.loads((outdir / ".clx-apply.json").read_text(encoding="utf-8"))
        assert set(manifest["parts"]) <= set(produced)

    def test_resume_skips_finished_partitions_and_matches_clean_bytes(
        self, phone_engine, baseline, tmp_path, arm, monkeypatch
    ):
        dataset, expected = baseline
        outdir = tmp_path / "out-resume"
        arm("sink.write:raise:k=part-2")
        with pytest.raises(faults.FaultInjected):
            _apply(phone_engine, dataset, output_dir=outdir)
        finished_before = set(_visible_files(outdir))
        _disarm(monkeypatch)
        result = _apply(phone_engine, dataset, output_dir=outdir, resume=True)
        assert result.skipped_parts == len(finished_before)
        assert _visible_files(outdir) == expected

    def test_resume_reprocesses_a_partition_whose_source_changed(
        self, phone_engine, baseline, tmp_path, arm, monkeypatch
    ):
        dataset, _ = baseline
        outdir = tmp_path / "out-stale"
        arm("sink.write:raise:k=part-2")
        with pytest.raises(faults.FaultInjected):
            _apply(phone_engine, dataset, output_dir=outdir)
        _disarm(monkeypatch)
        # Only part-0 was committed before the fault (a part's sink is
        # finalized when the next part's first chunk arrives, and the
        # fault fired on part-2's).  Grow part-0: its manifest entry's
        # recorded size no longer matches, so resume must redo it too.
        manifest = json.loads(
            (outdir / ".clx-apply.json").read_text(encoding="utf-8")
        )
        assert set(manifest["parts"]) == {"part-0.jsonl"}
        source = dataset.parts[0].path
        with source.open("a", encoding="utf-8", newline="") as handle:
            handle.write("900,906-555-0000\n")
        fresh = Dataset.resolve(str(source.parent / "part-*"))
        result = _apply(phone_engine, fresh, output_dir=outdir, resume=True)
        assert result.skipped_parts == 0
        assert '"906-555-0000"' in (outdir / "part-0.jsonl").read_text(
            encoding="utf-8"
        )


def _kill_self(task):
    """Pool task: ``marker=None`` always dies; a path dies on first claim."""
    marker, value = task
    if marker is None:
        os.kill(os.getpid(), signal.SIGKILL)
    if marker:
        try:
            os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            return value * 2
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 2


class TestPoolTeardown:
    def test_sigkilled_worker_raises_and_leaves_no_orphans(self):
        from concurrent.futures import ProcessPoolExecutor

        pool = ResilientPool(
            lambda: ProcessPoolExecutor(max_workers=2), FaultPolicy()
        )
        tasks = [(str(index), (None, index) if index == 3 else ("", index))
                 for index in range(6)]
        try:
            with pytest.raises(PoolTaskFailure, match="worker process died"):
                for _ in pool.map_ordered_keyed(_kill_self, iter(tasks), window=4):
                    pass
        finally:
            pool.close()
        assert _join_children() == []

    def test_worker_death_inside_retry_budget_completes_in_order(self, tmp_path):
        from concurrent.futures import ProcessPoolExecutor

        marker = str(tmp_path / "killed-once")
        pool = ResilientPool(
            lambda: ProcessPoolExecutor(max_workers=2),
            FaultPolicy(max_retries=2, backoff_base=0.01),
        )
        tasks = [
            (str(index), (marker if index == 2 else "", index))
            for index in range(5)
        ]
        try:
            results = [
                value
                for _, value in pool.map_ordered_keyed(
                    _kill_self, iter(tasks), window=3
                )
            ]
        finally:
            pool.close()
        assert results == [0, 2, 4, 6, 8]
        assert _join_children() == []

    def test_keyboard_interrupt_tears_down_workers_within_deadline(self, tmp_path):
        script = tmp_path / "interrupt_me.py"
        started = tmp_path / "worker-started"
        script.write_text(
            textwrap.dedent(
                f"""
                import multiprocessing, os, sys, time
                from concurrent.futures import ProcessPoolExecutor
                from repro.util.pools import FaultPolicy, ResilientPool

                STARTED = {str(started)!r}

                def sleepy(task):
                    with open(STARTED, "w") as handle:
                        handle.write(str(task))
                    time.sleep(600)
                    return task

                def main():
                    pool = ResilientPool(
                        lambda: ProcessPoolExecutor(max_workers=2), FaultPolicy()
                    )
                    print("READY", flush=True)
                    try:
                        for _ in pool.map_ordered_keyed(
                            sleepy, ((str(i), i) for i in range(4)), window=4
                        ):
                            pass
                    except KeyboardInterrupt:
                        deadline = time.monotonic() + 10
                        for child in multiprocessing.active_children():
                            child.join(max(0.0, deadline - time.monotonic()))
                        if any(
                            child.is_alive()
                            for child in multiprocessing.active_children()
                        ):
                            sys.exit(7)
                        sys.exit(42)
                    sys.exit(1)

                main()
                """
            ),
            encoding="utf-8",
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH", "")])
        )
        env.pop(faults.FAULTS_ENV, None)
        process = subprocess.Popen(
            [sys.executable, str(script)],
            cwd=os.getcwd(),
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert process.stdout is not None
            assert process.stdout.readline().strip() == "READY"
            deadline = time.monotonic() + 15
            while not started.exists():
                assert time.monotonic() < deadline, "worker never started"
                time.sleep(0.05)
            process.send_signal(signal.SIGINT)
            code = process.wait(timeout=30)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup on failure
                process.kill()
                process.wait()
        assert code == 42


class TestRandomizedFaults:
    def test_random_faults_yield_identical_bytes_or_clean_failure(
        self, phone_engine, baseline, tmp_path, arm, property_rng
    ):
        dataset, expected = baseline
        for round_index in range(4):
            point = property_rng.choice(
                ["worker.chunk", "worker.shard", "sink.write"]
            )
            kind = (
                "raise"
                if point == "sink.write"
                else property_rng.choice(["crash", "exit", "raise"])
            )
            once = property_rng.random() < 0.5
            retries = property_rng.randrange(3)
            clause = f"{point}:{kind}:*" + (":once" if once else "")
            arm(clause)
            outdir = tmp_path / f"out-{round_index}"
            try:
                _apply(
                    phone_engine,
                    dataset,
                    output_dir=outdir,
                    policy=FaultPolicy(max_retries=retries, backoff_base=0.01),
                )
            except Exception:
                # Clean failure: every partition output either landed
                # byte-identical or not at all; never a truncated file.
                produced = _visible_files(outdir)
                for name, data in produced.items():
                    assert data == expected[name], (clause, retries, name)
            else:
                assert _visible_files(outdir) == expected, (clause, retries)
            _assert_no_temps(outdir)
            assert _join_children() == [], (clause, retries)


class TestCLIQuarantine:
    @pytest.fixture
    def artifact(self, tmp_path):
        from repro.cli import main

        values, _ = phone_dataset(count=30, format_count=4, seed=9)
        source = tmp_path / "train.csv"
        with source.open("w", encoding="utf-8", newline="") as handle:
            handle.write("id,phone\n")
            for index, value in enumerate(values):
                handle.write(f"{index},{value}\n")
        path = tmp_path / "phone.clx.json"
        code = main(
            [
                "compile", str(source), "--column", "phone",
                "--target-pattern", "<D>3'-'<D>3'-'<D>4",
                "--output", str(path),
            ]
        )
        assert code == 0
        return path

    def test_quarantine_run_exits_3_and_summarizes(
        self, artifact, tmp_path, capsys
    ):
        from repro.cli import main

        _, source = _bad_record_parts(tmp_path)
        qdir = tmp_path / "quarantine"
        code = main(
            [
                "apply", str(artifact), str(source),
                "--output", str(tmp_path / "out.jsonl"),
                "--format", "jsonl",
                "--on-error", "quarantine",
                "--quarantine-dir", str(qdir),
            ]
        )
        assert code == 3
        err = capsys.readouterr().err
        assert "quarantined 3 record(s) across 1 partition(s)" in err
        assert (qdir / quarantine_file_name("rows.jsonl")).exists()

    def test_quarantine_mode_requires_quarantine_dir(self, artifact, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "apply", str(artifact), str(tmp_path / "train.csv"),
                "--output", str(tmp_path / "out.csv"),
                "--on-error", "quarantine",
            ]
        )
        assert code == 2
        assert "--quarantine-dir" in capsys.readouterr().err

    def test_resume_requires_output_dir(self, artifact, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "apply", str(artifact), str(tmp_path / "train.csv"),
                "--output", str(tmp_path / "out.csv"),
                "--resume",
            ]
        )
        assert code == 2
        assert "--output-dir" in capsys.readouterr().err
