"""Tests for the parallel shard-merge profiler.

The contract under test: :class:`ParallelProfiler` is an execution
detail, never a semantics change — the hierarchy it produces has the
same leaf patterns and counts as the serial
:class:`IncrementalProfiler` pass over the same data, for both shard
sources (iterable chunk fan-out and byte-range file splitting), at any
worker count, across the bench generators.
"""

from __future__ import annotations

import csv
import os

import pytest

from repro.bench.generators import (
    addresses,
    dates,
    human_names,
    medical_codes,
    phone_numbers,
)
from repro.clustering.incremental import IncrementalProfiler
from repro.clustering.parallel import ParallelProfiler
from repro.util.errors import CLXError, ValidationError


def _leaf_signature(profile):
    hierarchy = profile.to_hierarchy()
    return [(node.pattern.notation(), node.size) for node in hierarchy.leaf_nodes]


def _generator_columns():
    phones, _ = phone_numbers(400, ["paren_space", "dashes", "dots", "plain"], seed=21)
    names, _ = human_names(300, seed=22)
    days, _ = dates(300, seed=23)
    streets, _ = addresses(300, seed=24)
    codes, _ = medical_codes(300, seed=25)
    return {
        "phones": phones,
        "names": names,
        "dates": days,
        "addresses": streets,
        "codes": codes,
    }


class _Kamikaze(str):
    """A value whose unpickling kills the worker process receiving it."""

    def __reduce__(self):
        return (os._exit, (13,))


class TestIterableEquivalence:
    def test_matches_serial_profile_across_bench_generators(self):
        parallel = ParallelProfiler(workers=2, chunk_size=64)
        for name, column in _generator_columns().items():
            serial = IncrementalProfiler().profile(iter(column))
            sharded = parallel.profile(iter(column))
            assert sharded.row_count == serial.row_count, name
            assert _leaf_signature(sharded) == _leaf_signature(serial), name

    def test_chunk_boundaries_do_not_matter(self):
        column, _ = phone_numbers(500, ["paren_space", "dashes", "dots"], seed=31)
        expected = _leaf_signature(IncrementalProfiler().profile(iter(column)))
        for chunk_size in (1, 7, 499, 500, 5000):
            profile = ParallelProfiler(workers=2, chunk_size=chunk_size).profile(iter(column))
            assert _leaf_signature(profile) == expected, chunk_size

    def test_single_worker_degenerates_to_serial_in_process(self, monkeypatch):
        import concurrent.futures

        def boom(*args, **kwargs):  # pragma: no cover - must not be hit
            raise AssertionError("no pool should be spawned for workers=1")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", boom)
        monkeypatch.setattr(
            "repro.clustering.parallel.ProcessPoolExecutor", boom
        )
        column, _ = phone_numbers(60, ["dashes", "dots"], seed=33)
        profile = ParallelProfiler(workers=1).profile(iter(column))
        assert profile.row_count == 60

    def test_empty_iterable_raises_like_serial(self):
        with pytest.raises(ValidationError):
            ParallelProfiler(workers=2).profile(iter([]))

    def test_empty_iterable_allowed_when_profiler_allows_empty(self):
        profiler = IncrementalProfiler(allow_empty=True)
        profile = ParallelProfiler(profiler=profiler, workers=2).profile(iter([]))
        assert profile.row_count == 0


class TestFileEquivalence:
    @pytest.fixture
    def phone_csv(self, tmp_path):
        column, _ = phone_numbers(700, ["paren_space", "dashes", "dots", "spaces"], seed=41)
        path = tmp_path / "phones.csv"
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["id", "phone"])
            for index, value in enumerate(column):
                writer.writerow([index, value])
        return path, column

    def test_matches_serial_profile_at_any_worker_count(self, phone_csv):
        path, column = phone_csv
        expected = _leaf_signature(IncrementalProfiler().profile(iter(column)))
        for workers in (1, 2, 3, 5, 13):
            profile = ParallelProfiler(workers=workers).profile_file(path, "phone")
            assert profile.row_count == len(column), workers
            assert _leaf_signature(profile) == expected, workers

    def test_accepts_column_index(self, phone_csv):
        path, column = phone_csv
        by_name = ParallelProfiler(workers=2).profile_file(path, "phone")
        by_index = ParallelProfiler(workers=2).profile_file(path, 1)
        assert _leaf_signature(by_name) == _leaf_signature(by_index)

    def test_tolerates_ragged_and_short_rows(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text(
            "id,phone\n1,734-422-8073\n2\n3,906-555-1234,stray\n",
            encoding="utf-8",
        )
        profile = ParallelProfiler(workers=2).profile_file(path, "phone")
        # The short row contributes "" for the missing column, like the
        # CLI's streaming profile; the surplus cell is ignored.
        assert profile.row_count == 3

    def test_stray_quotes_in_unquoted_cells_profile_fine(self, tmp_path):
        # Inch-marks and lone quotes inside unquoted cells are data; the
        # embedded-newline guard must not reject them.
        path = tmp_path / "quirky.csv"
        path.write_text(
            "note,size\n"
            + "".join(f'{n}" nail,{n}\n' for n in range(40))
            + 'say "hi",99\n',
            encoding="utf-8",
        )
        serial = ParallelProfiler(workers=1).profile_file(path, "size")
        parallel = ParallelProfiler(workers=3).profile_file(path, "size")
        assert parallel.row_count == serial.row_count == 41
        assert _leaf_signature(parallel) == _leaf_signature(serial)

    def test_quoted_embedded_newlines_profile_correctly(self, tmp_path):
        # Byte-range shards align on physical lines; when a worker meets
        # a quoted field spanning lines, the parent re-splits the file
        # on record boundaries (one quote-parity scan) and retries, so
        # fan-out matches the serial pass instead of miscounting.
        path = tmp_path / "noted.csv"
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["note", "phone"])
            for index in range(60):
                writer.writerow([f"line one\nline two {index}", "734-422-8073"])
        serial = ParallelProfiler(workers=1).profile_file(path, "phone")
        assert serial.row_count == 60
        for workers in (2, 3, 5):
            parallel = ParallelProfiler(workers=workers).profile_file(path, "phone")
            assert parallel.row_count == 60, workers
            assert _leaf_signature(parallel) == _leaf_signature(serial), workers

    def test_multiline_records_in_the_profiled_column_itself(self, tmp_path):
        # The embedded newline can live in the very column being
        # profiled — the record-aligned retry must keep the value whole.
        path = tmp_path / "addresses.csv"
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["id", "address"])
            for index in range(40):
                writer.writerow([index, f"{index} Main St\nSuite {index}"])
        serial = ParallelProfiler(workers=1).profile_file(path, "address")
        parallel = ParallelProfiler(workers=4).profile_file(path, "address")
        assert parallel.row_count == serial.row_count == 40
        assert _leaf_signature(parallel) == _leaf_signature(serial)

    def test_unknown_column_is_an_error(self, phone_csv):
        path, _ = phone_csv
        with pytest.raises(ValidationError, match="not found"):
            ParallelProfiler(workers=2).profile_file(path, "nope")

    def test_header_with_stray_quote_is_parsed_not_swallowed(self, tmp_path):
        # A lone quote in an unquoted header cell is data; the header
        # scan must stop at the first record boundary instead of
        # reading the file hunting for quote parity.
        path = tmp_path / "inch.csv"
        path.write_text(
            'name,size"\n' + "".join(f"n{i},734-422-8073\n" for i in range(30)),
            encoding="utf-8",
        )
        serial = ParallelProfiler(workers=1).profile_file(path, 'size"')
        parallel = ParallelProfiler(workers=2).profile_file(path, 'size"')
        assert parallel.row_count == serial.row_count == 30
        assert _leaf_signature(parallel) == _leaf_signature(serial)

    def test_missing_header_is_an_error(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("", encoding="utf-8")
        with pytest.raises(ValidationError, match="header"):
            ParallelProfiler(workers=2).profile_file(empty, "phone")

    def test_header_only_file_raises_like_serial(self, tmp_path):
        path = tmp_path / "bare.csv"
        path.write_text("id,phone\n", encoding="utf-8")
        with pytest.raises(ValidationError, match="empty"):
            ParallelProfiler(workers=2).profile_file(path, "phone")


class TestValidationAndCrash:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValidationError):
            ParallelProfiler(workers=0)
        with pytest.raises(ValidationError):
            ParallelProfiler(workers=-2)
        with pytest.raises(ValidationError):
            ParallelProfiler(chunk_size=0)
        with pytest.raises(ValidationError):
            ParallelProfiler(profiler="not a profiler")

    def test_dead_worker_raises_clx_error_instead_of_hanging(self):
        column = ["734-422-8073"] * 40 + [_Kamikaze("906-555-1234")]
        profiler = ParallelProfiler(workers=2, chunk_size=8)
        with pytest.raises(CLXError, match="worker process died"):
            profiler.profile(iter(column))
