"""Tests for TransformEngine — batch, streaming, and table apply."""

from __future__ import annotations

import pytest

from repro.core.session import CLXSession
from repro.engine.executor import TransformEngine
from repro.util.errors import ValidationError


@pytest.fixture
def phone_engine(phone_values, phone_target):
    session = CLXSession(phone_values)
    session.label_target(phone_target)
    return TransformEngine(session.compile())


class TestConstruction:
    def test_requires_a_compiled_program(self):
        with pytest.raises(ValidationError):
            TransformEngine("not a program")

    def test_from_program(self, phone_values, phone_target):
        session = CLXSession(phone_values)
        session.label_target(phone_target)
        engine = TransformEngine.from_program(session.program, session.target)
        assert engine.target == phone_target

    def test_loads_dumps_round_trip(self, phone_engine, phone_values):
        revived = TransformEngine.loads(phone_engine.dumps())
        assert revived.compiled == phone_engine.compiled
        assert revived.run(phone_values).outputs == phone_engine.run(phone_values).outputs


class TestBatchAndStreaming:
    def test_run_matches_session(self, phone_engine, phone_values, phone_target):
        session = CLXSession(phone_values)
        session.label_target(phone_target)
        assert phone_engine.run(phone_values).outputs == session.transform().outputs

    def test_run_one(self, phone_engine):
        assert phone_engine.run_one("734.236.3466").output == "734-236-3466"

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 1000])
    def test_run_iter_matches_run_for_any_chunking(self, phone_engine, phone_values, chunk_size):
        streamed = [o.output for o in phone_engine.run_iter(phone_values, chunk_size=chunk_size)]
        assert streamed == phone_engine.run(phone_values).outputs

    def test_run_iter_consumes_lazily(self, phone_engine):
        """With chunk_size=1, values are pulled one at a time."""
        pulled = []

        def source():
            for value in ["734.236.3466", "(734) 645-8397", "734.111.2222"]:
                pulled.append(value)
                yield value

        iterator = phone_engine.run_iter(source(), chunk_size=1)
        first = next(iterator)
        assert first.output == "734-236-3466"
        assert len(pulled) == 1

    def test_run_iter_empty_input(self, phone_engine):
        assert list(phone_engine.run_iter([])) == []

    def test_run_iter_rejects_bad_chunk_size(self, phone_engine):
        with pytest.raises(ValidationError):
            list(phone_engine.run_iter(["x"], chunk_size=0))


class TestTransformTable:
    def test_single_column(self, phone_engine):
        rows = [
            {"name": "A", "phone": "(734) 645-8397"},
            {"name": "B", "phone": "734.236.3466"},
        ]
        out = TransformEngine.transform_table(rows, {"phone": phone_engine})
        assert [row["phone"] for row in out] == ["734-645-8397", "734-236-3466"]
        assert [row["name"] for row in out] == ["A", "B"]

    def test_input_rows_not_mutated(self, phone_engine):
        rows = [{"phone": "734.236.3466"}]
        TransformEngine.transform_table(rows, {"phone": phone_engine})
        assert rows[0]["phone"] == "734.236.3466"

    def test_accepts_compiled_program_values(self, phone_engine):
        rows = [{"phone": "734.236.3466"}]
        out = TransformEngine.transform_table(rows, {"phone": phone_engine.compiled})
        assert out[0]["phone"] == "734-236-3466"

    def test_multi_column(self, phone_engine, employee_names):
        name_session = CLXSession(employee_names)
        name_session.label_target_from_string("Fisher, K.", generalize=2)
        name_engine = TransformEngine(name_session.compile())
        rows = [
            {"name": employee_names[0], "phone": "734.236.3466"},
            {"name": employee_names[1], "phone": "(734) 645-8397"},
        ]
        out = TransformEngine.transform_table(
            rows, {"phone": phone_engine, "name": name_engine}
        )
        assert [row["phone"] for row in out] == ["734-236-3466", "734-645-8397"]
        expected_names = name_engine.run([row["name"] for row in rows]).outputs
        assert [row["name"] for row in out] == expected_names

    def test_none_cells_treated_as_empty(self, phone_engine):
        out = TransformEngine.transform_table([{"phone": None}], {"phone": phone_engine})
        assert out[0]["phone"] == ""

    def test_missing_column_rejected(self, phone_engine):
        with pytest.raises(ValidationError):
            TransformEngine.transform_table([{"name": "A"}], {"phone": phone_engine})

    def test_bad_program_type_rejected(self):
        with pytest.raises(ValidationError):
            TransformEngine.transform_table([{"phone": "1"}], {"phone": "nope"})
