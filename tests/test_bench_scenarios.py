"""Tests for the individual benchmark scenario families."""

from __future__ import annotations

import pytest

from repro.bench import scenarios
from repro.patterns.matching import matches, pattern_of_string


class TestScenarioFamilies:
    @pytest.mark.parametrize(
        "builder, expected_count, source",
        [
            (scenarios.sygus_tasks, 27, "SyGuS"),
            (scenarios.flashfill_tasks, 10, "FlashFill"),
            (scenarios.blinkfill_tasks, 4, "BlinkFill"),
            (scenarios.predprog_tasks, 3, "PredProg"),
            (scenarios.prose_tasks, 3, "PROSE"),
        ],
    )
    def test_family_counts_and_sources(self, builder, expected_count, source):
        tasks = builder()
        assert len(tasks) == expected_count
        assert all(task.source == source for task in tasks)

    def test_sygus_tasks_are_large(self):
        # Most SyGuS-style tasks carry ~63 rows; the filtered university
        # scenarios are smaller but still well above the 10-row families.
        sizes = [task.size for task in scenarios.sygus_tasks()]
        assert min(sizes) >= 12
        assert sum(sizes) / len(sizes) >= 50

    def test_small_families_are_small(self):
        for builder in (scenarios.flashfill_tasks, scenarios.blinkfill_tasks, scenarios.predprog_tasks):
            for task in builder():
                assert task.size <= 15

    def test_every_task_has_some_row_needing_transformation(self):
        for builder in (
            scenarios.sygus_tasks,
            scenarios.flashfill_tasks,
            scenarios.blinkfill_tasks,
            scenarios.predprog_tasks,
            scenarios.prose_tasks,
        ):
            for task in builder():
                assert any(not task.already_correct(value) for value in task.inputs), task.task_id

    def test_most_tasks_have_a_reachable_target_pattern(self):
        """For the single-target tasks, some expected output matches the target."""
        hard = {
            "flashfill-conditional",
            "prose-popl13-affiliations",
            "sygus-addr-4",
            "sygus-addr-5",
            "sygus-univ-4",
            "predprog-address",
        }
        for task in scenarios.sygus_tasks() + scenarios.flashfill_tasks():
            if task.task_id in hard:
                continue
            target = task.target_pattern()
            assert any(
                matches(desired, target) for desired in task.expected.values()
            ), task.task_id

    def test_conditional_task_shares_patterns_across_outcomes(self):
        """The Example-13 analogue needs a content conditional by construction."""
        task = next(
            t for t in scenarios.flashfill_tasks() if t.task_id == "flashfill-conditional"
        )
        by_pattern = {}
        for value in task.inputs:
            by_pattern.setdefault(pattern_of_string(value), set()).add(
                task.desired_output(value)
            )
        assert any(len(outputs) > 1 for outputs in by_pattern.values())

    def test_popl13_outputs_span_multiple_patterns(self):
        task = next(
            t for t in scenarios.prose_tasks() if t.task_id == "prose-popl13-affiliations"
        )
        output_patterns = {pattern_of_string(v) for v in task.expected.values()}
        assert len(output_patterns) > 1
